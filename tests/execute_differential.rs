//! Differential pinning of the deprecated `Server` method zoo against the
//! request-lifetime [`Server::execute`] entry point.
//!
//! Each legacy method (`query`, `query_expr`, `query_norm`, `run_batch`,
//! `query_expr_traced`, `explain`) is now a thin shim over `execute`. These
//! tests drive two identically built servers — one through the shims, one
//! through `execute` — and require *byte-identical* observable behavior:
//! the same documents, the same counter increments, the same cache
//! statistics, the same rendered plans, the same trace span inventory.
//! Any divergence means the shims are no longer faithful and a caller
//! migrating off them would see a behavior change.

#![allow(deprecated)]

use fast_set_intersection::core::HashContext;
use fast_set_intersection::index::{Corpus, CorpusConfig, SearchEngine};
use fast_set_intersection::query::{compile, ExplainMode};
use fast_set_intersection::serve::{Request, ServeConfig, Server};

fn engine() -> SearchEngine {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 15_000,
        num_terms: 32,
        ..CorpusConfig::default()
    });
    SearchEngine::from_corpus(HashContext::new(0x0404), corpus)
}

fn server_pair(config: ServeConfig) -> (Server, Server) {
    let engine = engine();
    (
        Server::new(&engine, config.clone()),
        Server::new(&engine, config),
    )
}

/// Counter-for-counter equality of everything a caller can observe about
/// two servers' accounting (latency distributions excluded: wall-clock is
/// not deterministic, but counts are).
fn assert_stats_match(legacy: &Server, modern: &Server, ctx: &str) {
    let (a, b) = (legacy.stats(), modern.stats());
    assert_eq!(a.queries_served, b.queries_served, "{ctx}: queries_served");
    assert_eq!(
        a.expr_queries_served, b.expr_queries_served,
        "{ctx}: expr_queries_served"
    );
    assert_eq!(a.queries_shed, b.queries_shed, "{ctx}: queries_shed");
    assert_eq!(a.latency.count, b.latency.count, "{ctx}: latency samples");
    assert_eq!(a.cache.hits, b.cache.hits, "{ctx}: cache hits");
    assert_eq!(a.cache.misses, b.cache.misses, "{ctx}: cache misses");
    assert_eq!(a.cache.lookups, b.cache.lookups, "{ctx}: cache lookups");
    assert_eq!(
        a.cache.insertions, b.cache.insertions,
        "{ctx}: cache insertions"
    );
    assert_eq!(
        a.cache.evictions, b.cache.evictions,
        "{ctx}: cache evictions"
    );
    assert_eq!(a.cache.len, b.cache.len, "{ctx}: cache len");
    assert_eq!(
        a.cache.value_bytes, b.cache.value_bytes,
        "{ctx}: cache value bytes"
    );
}

fn flat_queries() -> Vec<Vec<usize>> {
    vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 10, 20, 31],
        vec![7],
        vec![],         // empty conjunction
        vec![4, 4, 12], // duplicate term
        vec![0, 1],     // repeat: cache hit on both sides
    ]
}

#[test]
fn query_shim_matches_execute_terms() {
    let (legacy, modern) = server_pair(ServeConfig {
        num_shards: 2,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    for q in &flat_queries() {
        let old = legacy.query(q);
        let new = modern.execute(&Request::terms(q.clone())).expect("valid");
        assert_eq!(old, new.docs, "{q:?}");
        assert!(new.is_served());
    }
    assert_stats_match(&legacy, &modern, "flat queries");
}

#[test]
fn query_expr_shim_matches_execute_text() {
    let (legacy, modern) = server_pair(ServeConfig {
        num_shards: 3,
        cache_capacity: 128,
        ..ServeConfig::default()
    });
    let exprs = [
        "0 AND 1",
        "(0 OR 1) AND 5 AND NOT 7",
        "3 4 5",
        "0 AND 1", // repeat
        "NOT 7 AND 4 AND 1",
        "1 AND 4 AND NOT 7", // canonical twin of the previous query
    ];
    for q in exprs {
        let old = legacy.query_expr(q).expect("valid");
        let new = modern.execute(&Request::expr(q)).expect("valid");
        assert_eq!(old, new.docs, "{q}");
    }
    // Both faces reject the same invalid inputs with the same rendering.
    for bad in ["0 AND", "NOT 3", "0 AND 99999"] {
        let old = legacy.query_expr(bad).expect_err("invalid");
        let new = modern.execute(&Request::expr(bad)).expect_err("invalid");
        assert_eq!(old.to_string(), new.to_string(), "{bad}");
    }
    assert_stats_match(&legacy, &modern, "expression queries");
}

#[test]
fn query_norm_shim_matches_execute_norm() {
    let (legacy, modern) = server_pair(ServeConfig {
        num_shards: 2,
        cache_capacity: 32,
        ..ServeConfig::default()
    });
    for q in ["0 AND 1", "(2 OR 3) AND 4", "5 AND 6 AND NOT 7", "0 AND 1"] {
        let norm = compile(q).expect("compiles");
        let old = legacy.query_norm(&norm);
        let new = modern.execute(&Request::norm(norm.clone())).expect("valid");
        assert_eq!(old, new.docs, "{q}");
    }
    assert_stats_match(&legacy, &modern, "norm queries");
}

#[test]
fn run_batch_shim_matches_execute_batch() {
    // One worker: with several workers, duplicate keys inside a batch hit
    // the cache's benign get→compute→insert stampede, and the two servers
    // would race it differently. Sequential execution pins the accounting;
    // the multi-worker results path is covered below.
    let (legacy, modern) = server_pair(ServeConfig {
        num_shards: 2,
        num_workers: 1,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    let batch: Vec<Vec<usize>> = (0..120).map(|i| vec![i % 5, 5 + i % 7]).collect();
    let requests: Vec<Request> = batch.iter().cloned().map(Request::terms).collect();
    for round in 0..2 {
        let old = legacy.run_batch(&batch);
        let new = modern.execute_batch(&requests);
        assert_eq!(old.results.len(), new.responses.len());
        for (i, (o, n)) in old.results.iter().zip(&new.responses).enumerate() {
            let n = n.as_ref().expect("valid");
            assert_eq!(o, &n.docs, "round {round} query {i}");
        }
        assert_eq!(
            (old.cache_hits, old.cache_misses),
            {
                let hits = new
                    .responses
                    .iter()
                    .filter(|r| {
                        matches!(
                            r.as_ref().map(|resp| resp.cache),
                            Ok(fast_set_intersection::serve::CacheOutcome::Hit)
                        )
                    })
                    .count() as u64;
                (hits, batch.len() as u64 - hits)
            },
            "round {round} cache accounting"
        );
        assert_eq!(old.latency.count, new.latency.count);
        assert_eq!(old.queue_depths.len(), new.queue_depths.len());
    }
    assert_stats_match(&legacy, &modern, "batch");
}

#[test]
fn run_batch_shim_matches_execute_batch_across_workers() {
    // Multi-worker: results stay positionally identical even though cache
    // stampedes make hit counts nondeterministic.
    let (legacy, modern) = server_pair(ServeConfig {
        num_shards: 3,
        num_workers: 4,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    let batch: Vec<Vec<usize>> = (0..160).map(|i| vec![i % 6, 6 + i % 11]).collect();
    let requests: Vec<Request> = batch.iter().cloned().map(Request::terms).collect();
    let old = legacy.run_batch(&batch);
    let new = modern.execute_batch(&requests);
    for (i, (o, n)) in old.results.iter().zip(&new.responses).enumerate() {
        assert_eq!(o, &n.as_ref().expect("valid").docs, "query {i}");
    }
    assert_eq!(legacy.stats().queries_served, modern.stats().queries_served);
}

#[test]
fn traced_shim_matches_execute_traced() {
    let (legacy, modern) = server_pair(ServeConfig {
        num_shards: 2,
        cache_capacity: 0, // every run executes: traces cover the exec path
        ..ServeConfig::default()
    });
    let q = "(0 OR 1) AND 5 AND NOT 7";
    let (old_docs, old_trace) = legacy.query_expr_traced(q).expect("valid");
    let new = modern.execute(&Request::expr(q).traced()).expect("valid");
    let new_trace = new.trace.expect("trace recorded");
    assert_eq!(old_docs, new.docs);
    let old_spans: Vec<&str> = old_trace.spans.iter().map(|s| s.name.as_str()).collect();
    let new_spans: Vec<&str> = new_trace.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(old_spans, new_spans, "span inventory");
    assert_stats_match(&legacy, &modern, "traced");
}

#[test]
fn explain_shim_matches_execute_explain() {
    let (legacy, modern) = server_pair(ServeConfig {
        num_shards: 2,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    // Bare queries take the option's mode; EXPLAIN-prefixed queries carry
    // their own. Plans must render identically through both faces.
    for (q, mode) in [
        ("0 AND 1 AND NOT 5", ExplainMode::Plan),
        ("EXPLAIN (0 OR 1) AND 5", ExplainMode::Plan),
    ] {
        let old = legacy.explain(q, mode).expect("valid");
        let new = modern
            .execute(&Request::expr(q).explain(mode))
            .expect("valid")
            .explain
            .expect("plan rendered");
        assert_eq!(old, new, "{q}");
    }
    // EXPLAIN counts neither queries_served nor cache traffic, through
    // either face.
    assert_eq!(legacy.stats().queries_served, 0);
    assert_stats_match(&legacy, &modern, "explain");
}
