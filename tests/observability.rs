//! Integration tests for the observability layer end to end:
//!
//! * the log₂-bucketed latency histogram tracks an exact nearest-rank
//!   oracle within its documented one-sided relative error bound, on
//!   arbitrary sample distributions;
//! * merging histograms and registry snapshots is associative and
//!   split-invariant — recording a workload across any partition of
//!   workers/shards and merging must equal recording it in one place,
//!   which is exactly what lets per-worker histograms fold into one
//!   server-level view;
//! * `EXPLAIN ANALYZE` per-node timings are internally consistent (child
//!   wall-clocks sum to at most the root's) and the root's wall fits
//!   inside the traced query's end-to-end exec span.

use fast_set_intersection::core::HashContext;
use fast_set_intersection::index::{Corpus, CorpusConfig, SearchEngine};
use fast_set_intersection::obs::{HistSnapshot, Histogram, Registry};
use fast_set_intersection::serve::{Request, ServeConfig, Server};
use proptest::collection::vec;
use proptest::prelude::*;

/// Exact nearest-rank percentile over raw samples (`p` a fraction in
/// `[0, 1]`, matching the histogram API) — the oracle the bucketed
/// histogram approximates.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = (p * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn histogram_percentiles_track_exact_nearest_rank(
        // Mixed magnitudes: shifting each draw by a data-dependent amount
        // spreads samples from sub-bucket-resolution values up through the
        // full u64 range (the vendored proptest subset has no prop_oneof).
        samples in vec(any::<u64>(), 1..400)
            .prop_map(|v| v.into_iter().map(|s| s >> (s % 61)).collect::<Vec<u64>>()),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), sorted.first().copied());
        for p in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = exact_percentile(&sorted, p) as f64;
            let got = h.percentile(p);
            // One-sided: a bucket's reported edge never undershoots the
            // exact order statistic, and overshoots by at most the
            // documented sub-bucket resolution.
            prop_assert!(
                got >= exact - 1e-9 && got <= exact * (1.0 + Histogram::MAX_RELATIVE_ERROR) + 1e-9,
                "p{}: got {} exact {}", p, got, exact
            );
        }
    }

    #[test]
    fn histogram_merge_is_split_invariant(
        samples in vec(any::<u64>(), 1..300),
        cuts in vec(0usize..300, 0..4),
    ) {
        // One histogram fed everything vs. the same samples partitioned
        // across "workers" at arbitrary cut points, merged two ways.
        let whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }

        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % samples.len()).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();
        let merged = Histogram::new();
        let mut snap_merged = HistSnapshot::default();
        for w in bounds.windows(2) {
            let part = Histogram::new();
            for &s in &samples[w[0]..w[1]] {
                part.record(s);
            }
            merged.merge_from(&part);              // live merge (worker join)
            snap_merged.merge_from(&part.snapshot()); // snapshot merge (batch fold)
        }

        let expect = whole.snapshot();
        prop_assert_eq!(&merged.snapshot(), &expect);
        prop_assert_eq!(&snap_merged, &expect);
    }
}

#[test]
fn registry_snapshot_merge_is_associative_across_shard_splits() {
    // Three "shards" record disjoint slices of one workload into their own
    // registries; merging the snapshots in either association must equal
    // recording the whole workload into one registry.
    let record = |reg: &Registry, queries: std::ops::Range<u64>| {
        let served = reg.counter("queries_total", &[]);
        let lat = reg.histogram("latency_ns", &[]);
        for q in queries {
            served.inc();
            lat.record(q * 97 % 50_000);
            reg.counter(
                "kind_total",
                &[("kind", if q % 3 == 0 { "probe" } else { "scan" })],
            )
            .inc();
        }
    };

    let whole = Registry::new();
    record(&whole, 0..90);

    let parts: Vec<Registry> = [0..30u64, 30..60, 60..90]
        .into_iter()
        .map(|r| {
            let reg = Registry::new();
            record(&reg, r);
            reg
        })
        .collect();

    // Left fold: ((a + b) + c); right fold: (a + (b + c)).
    let mut left = parts[0].snapshot();
    left.merge_from(&parts[1].snapshot());
    left.merge_from(&parts[2].snapshot());
    let mut bc = parts[1].snapshot();
    bc.merge_from(&parts[2].snapshot());
    let mut right = parts[0].snapshot();
    right.merge_from(&bc);

    let expect = whole.snapshot();
    assert_eq!(left, expect);
    assert_eq!(right, expect);
    assert_eq!(left.counter("queries_total", &[]), Some(90));
    assert_eq!(
        left.counter("kind_total", &[("kind", "probe")]).unwrap()
            + left.counter("kind_total", &[("kind", "scan")]).unwrap(),
        90
    );
}

#[test]
fn explain_analyze_timings_fit_inside_the_traced_exec_span() {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 40_000,
        num_terms: 48,
        ..CorpusConfig::default()
    });
    let engine = SearchEngine::from_corpus(HashContext::new(11), corpus);
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: 2,
            cache_capacity: 0, // every run must execute
            ..ServeConfig::default()
        },
    );

    let query = "(0 OR 1) AND 5 AND NOT 7";
    let trace = server
        .execute(&Request::expr(query).traced())
        .unwrap()
        .trace
        .expect("traced request records a trace");

    // The exec span covers every shard span, which in turn lie inside the
    // trace's total wall-clock.
    let exec = trace.span("exec").expect("exec span");
    let shard_total: u64 = (0..2)
        .map(|i| {
            trace
                .span(&format!("shard{i}.exec"))
                .expect("shard span")
                .dur_ns
        })
        .sum();
    assert!(
        shard_total <= exec.dur_ns,
        "{shard_total} > {}",
        exec.dur_ns
    );
    assert!(exec.dur_ns <= trace.total_ns);

    // EXPLAIN ANALYZE on the same query: each shard section reports a
    // total that bounds its root node's wall, and text and traced paths
    // agree on the plan shape (same root operator as the span's kind).
    let analyzed = server
        .execute(&Request::expr(format!("EXPLAIN ANALYZE {query}")))
        .unwrap()
        .explain
        .expect("EXPLAIN renders a plan");
    assert!(analyzed.contains("-- shard 0"), "{analyzed}");
    assert!(analyzed.contains("rows"), "{analyzed}");
    let kind = trace
        .span("shard0.exec")
        .and_then(|s| s.get("kind"))
        .expect("kind attr");
    assert!(
        analyzed.contains(kind),
        "kind {kind} missing from:\n{analyzed}"
    );
}
