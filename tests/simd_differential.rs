//! Differential correctness of the SIMD layer: every vectorized path must
//! be byte-identical to its scalar twin — across remainder-hostile lengths
//! (0, 1, lane−1, lane, lane+1, 127..=130), unaligned slice offsets,
//! dense/sparse/Zipf value streams, and the full `Strategy` lineup plus
//! the planned executor.
//!
//! Every comparison pins both sides explicitly: the scalar result under
//! `with_level(Scalar)` (or a `*_at(Scalar, ..)` call), the SIMD result
//! under each level `available_levels()` reports. On hardware without
//! SSE4.1/AVX2, or under the `force-scalar` feature, the available list
//! degenerates to `[Scalar]` and the suite still passes — scalar versus
//! itself — so the same test runs on every CI matrix leg.

use fast_set_intersection::index::{Corpus, CorpusConfig, SearchEngine, Strategy};
use fast_set_intersection::{reference_intersection, HashContext, SortedSet};
use fsi_index::Planner;
use fsi_kernels::simd::{self, SimdLevel};
use fsi_kernels::{BitmapSet, GallopProbe, HeapMerge, MultiwayAuto, MultiwayKernel, SigFilterSet};
use fsi_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The SIMD tiers to pin against scalar (just `[Scalar]` where no SIMD is
/// available — the suite then checks scalar against itself and passes).
fn simd_levels() -> Vec<SimdLevel> {
    simd::available_levels()
}

/// Remainder-hostile lengths for a given lane count: the empty and
/// singleton sets, lane−1/lane/lane+1 (and the same around 2·lanes), plus
/// the issue's 127..=130 band straddling both 4- and 8-lane multiples.
fn hostile_lengths(lanes: usize) -> Vec<usize> {
    let mut v = vec![0, 1];
    for base in [lanes, 2 * lanes] {
        v.extend([base - 1, base, base + 1]);
    }
    v.extend(127..=130);
    v.sort_unstable();
    v.dedup();
    v
}

/// Draws a sorted, duplicate-free set of (at most) `n` values in one of
/// three density profiles.
fn draw(rng: &mut StdRng, n: usize, profile: usize) -> SortedSet {
    match profile {
        // Dense: values packed into ~2n slots — long runs of matches.
        0 => {
            let u = (2 * n).max(4) as u32;
            (0..n).map(|_| rng.gen_range(0..u)).collect()
        }
        // Sparse: ~2% density — most blocks have no match at all.
        1 => {
            let u = (50 * n + 10) as u32;
            (0..n).map(|_| rng.gen_range(0..u)).collect()
        }
        // Zipf-clustered: dense head, sparse tail.
        _ => {
            let z = Zipf::new((8 * n + 8).max(16), 1.0);
            (0..n).map(|_| z.sample(rng) as u32).collect()
        }
    }
}

#[test]
fn merge_matches_scalar_on_remainder_hostile_lengths() {
    let mut rng = StdRng::seed_from_u64(0x51D1);
    for level in simd_levels() {
        let lengths = hostile_lengths(level.lanes32().max(4));
        for profile in 0..3 {
            for &na in &lengths {
                for &nb in &lengths {
                    let a = draw(&mut rng, na, profile);
                    let b = draw(&mut rng, nb, profile);
                    let mut scalar = Vec::new();
                    simd::merge_into_at(SimdLevel::Scalar, a.as_slice(), b.as_slice(), &mut scalar);
                    let mut vec = Vec::new();
                    simd::merge_into_at(level, a.as_slice(), b.as_slice(), &mut vec);
                    assert_eq!(
                        vec,
                        scalar,
                        "{} merge na={na} nb={nb} profile={profile}",
                        level.name()
                    );
                    assert_eq!(
                        scalar,
                        reference_intersection(&[a.as_slice(), b.as_slice()]),
                        "scalar twin diverged from reference na={na} nb={nb}"
                    );
                }
            }
        }
    }
}

#[test]
fn merge_matches_scalar_on_unaligned_offsets() {
    // Identical logical inputs presented at every combination of slice
    // offsets 0..4: loads must not depend on pointer alignment.
    let mut rng = StdRng::seed_from_u64(0x51D2);
    let a: SortedSet = (0..500).map(|_| rng.gen_range(0..4000u32)).collect();
    let b: SortedSet = (0..500).map(|_| rng.gen_range(0..4000u32)).collect();
    for level in simd_levels() {
        for off_a in 0..4usize.min(a.len()) {
            for off_b in 0..4usize.min(b.len()) {
                let (sa, sb) = (&a.as_slice()[off_a..], &b.as_slice()[off_b..]);
                let mut scalar = Vec::new();
                simd::merge_into_at(SimdLevel::Scalar, sa, sb, &mut scalar);
                let mut vec = Vec::new();
                simd::merge_into_at(level, sa, sb, &mut vec);
                assert_eq!(vec, scalar, "{} off_a={off_a} off_b={off_b}", level.name());
            }
        }
    }
}

#[test]
fn merge_preserves_existing_output_prefix() {
    // The vectorized store writes into spare capacity beyond len: content
    // already in the buffer must survive, at every level.
    let a: SortedSet = (0..200u32).collect();
    let b: SortedSet = (100..300u32).collect();
    for level in simd_levels() {
        let mut out = vec![7u32, 8, 9];
        simd::merge_into_at(level, a.as_slice(), b.as_slice(), &mut out);
        assert_eq!(&out[..3], &[7, 8, 9], "{}", level.name());
        let expect: Vec<u32> = (100..200).collect();
        assert_eq!(&out[3..], expect.as_slice(), "{}", level.name());
    }
}

#[test]
fn word_and_primitives_match_scalar_on_hostile_word_counts() {
    let mut rng = StdRng::seed_from_u64(0x51D3);
    for level in simd_levels() {
        let lengths = hostile_lengths(level.lanes64().max(2));
        for &n in &lengths {
            let a: Vec<u64> = (0..n)
                .map(|_| rng.gen::<u64>() & rng.gen::<u64>())
                .collect();
            let b: Vec<u64> = (0..n)
                .map(|_| rng.gen::<u64>() & rng.gen::<u64>())
                .collect();
            // and_extract
            let mut scalar = Vec::new();
            simd::and_extract_at(SimdLevel::Scalar, 1 << 20, &a, &b, &mut scalar);
            let mut vec = Vec::new();
            simd::and_extract_at(level, 1 << 20, &a, &b, &mut vec);
            assert_eq!(vec, scalar, "{} and_extract n={n}", level.name());
            // and_in_place
            let mut acc_s = a.clone();
            let zero_s = simd::and_in_place_at(SimdLevel::Scalar, &mut acc_s, &b);
            let mut acc_v = a.clone();
            let zero_v = simd::and_in_place_at(level, &mut acc_v, &b);
            assert_eq!(acc_v, acc_s, "{} and_in_place n={n}", level.name());
            assert_eq!(zero_v, zero_s, "{} all-zero flag n={n}", level.name());
            // or_in_place (the union sweep's word primitive)
            let mut or_s = a.clone();
            simd::or_in_place_at(SimdLevel::Scalar, &mut or_s, &b);
            let mut or_v = a.clone();
            simd::or_in_place_at(level, &mut or_v, &b);
            assert_eq!(or_v, or_s, "{} or_in_place n={n}", level.name());
            // sig_scan at every bucket-count ratio the nesting can produce
            for dt in 0..3u32 {
                // Every fine index z must have a coarse bucket z >> dt.
                let coarse_len = n.div_ceil(1 << dt);
                let coarse = &b[..coarse_len];
                let mut hits_s = Vec::new();
                simd::sig_scan_at(SimdLevel::Scalar, &a, coarse, dt, &mut |z| hits_s.push(z));
                let mut hits_v = Vec::new();
                simd::sig_scan_at(level, &a, coarse, dt, &mut |z| hits_v.push(z));
                assert_eq!(hits_v, hits_s, "{} sig_scan n={n} dt={dt}", level.name());
            }
        }
    }
}

/// Sorted pair intersection of two prepared sets under a pinned dispatch
/// level.
fn pair_at<T: fast_set_intersection::PairIntersect>(level: SimdLevel, a: &T, b: &T) -> Vec<u32> {
    simd::with_level(level, || {
        let mut out = Vec::new();
        a.intersect_pair_into(b, &mut out);
        out.sort_unstable();
        out
    })
}

#[test]
fn prepared_kernels_match_scalar_twins_across_profiles() {
    let ctx = HashContext::new(0x51D4);
    let mut rng = StdRng::seed_from_u64(0x51D5);
    for profile in 0..3 {
        for (na, nb) in [(0, 900), (1, 900), (700, 900), (3000, 3100), (129, 4000)] {
            let a = draw(&mut rng, na, profile);
            let b = draw(&mut rng, nb, profile);
            let (bm_a, bm_b) = (BitmapSet::build(&a), BitmapSet::build(&b));
            let (sf_a, sf_b) = (SigFilterSet::build(&ctx, &a), SigFilterSet::build(&ctx, &b));
            let bm_scalar = pair_at(SimdLevel::Scalar, &bm_a, &bm_b);
            let sf_scalar = pair_at(SimdLevel::Scalar, &sf_a, &sf_b);
            assert_eq!(
                bm_scalar,
                reference_intersection(&[a.as_slice(), b.as_slice()]),
                "scalar bitmap vs reference na={na} nb={nb}"
            );
            for level in simd_levels() {
                assert_eq!(
                    pair_at(level, &bm_a, &bm_b),
                    bm_scalar,
                    "{} BitmapSet na={na} nb={nb} profile={profile}",
                    level.name()
                );
                assert_eq!(
                    pair_at(level, &sf_a, &sf_b),
                    sf_scalar,
                    "{} SigFilterSet na={na} nb={nb} profile={profile}",
                    level.name()
                );
            }
        }
    }
}

#[test]
fn multiway_kernels_match_scalar_twins() {
    let mut rng = StdRng::seed_from_u64(0x51D6);
    let kernels: Vec<Box<dyn MultiwayKernel>> = vec![
        Box::new(GallopProbe),
        Box::new(HeapMerge),
        Box::new(fsi_kernels::BitmapAnd),
        Box::new(MultiwayAuto::default()),
    ];
    for profile in 0..3 {
        for k in [2usize, 3, 5] {
            let sets: Vec<SortedSet> = (0..k)
                .map(|i| draw(&mut rng, 400 * (i + 1) + 129, profile))
                .collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            for kernel in &kernels {
                let scalar = simd::with_level(SimdLevel::Scalar, || {
                    let mut out = Vec::new();
                    kernel.intersect(&slices, &mut out);
                    out
                });
                assert_eq!(scalar, reference_intersection(&slices));
                for level in simd_levels() {
                    let vec = simd::with_level(level, || {
                        let mut out = Vec::new();
                        kernel.intersect(&slices, &mut out);
                        out
                    });
                    assert_eq!(
                        vec,
                        scalar,
                        "{} {} k={k} profile={profile}",
                        level.name(),
                        kernel.name()
                    );
                }
            }
        }
    }
}

#[test]
fn every_strategy_matches_its_scalar_dispatch() {
    // The whole index stack: every Strategy's prepared structures are
    // level-independent at build time, so the same executor queried under
    // a scalar clamp and under each SIMD tier must answer identically.
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 9_000,
        num_terms: 32,
        ..CorpusConfig::default()
    });
    let engine = SearchEngine::from_corpus(HashContext::new(0x51D7), corpus);
    let queries: Vec<Vec<usize>> = vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 10, 20, 31],
        vec![29, 30, 31],
        vec![7],
        vec![],
        vec![4, 4, 12], // duplicate term
    ];
    for strategy in Strategy::full_lineup() {
        let exec = engine.executor(strategy);
        for q in &queries {
            let scalar = simd::with_level(SimdLevel::Scalar, || exec.query(q));
            for level in simd_levels() {
                let vec = simd::with_level(level, || exec.query(q));
                assert_eq!(
                    vec,
                    scalar,
                    "{} strategy {} q {q:?}",
                    level.name(),
                    strategy.name()
                );
            }
        }
    }
    // The planned executor too — including the SIMD-tuned cost constants:
    // whatever plan each tier's planner picks, answers must agree.
    for planner in [Planner::default(), Planner::auto()] {
        let planned = engine.planned_executor(planner);
        for q in &queries {
            let scalar = simd::with_level(SimdLevel::Scalar, || planned.query(q));
            for level in simd_levels() {
                let vec = simd::with_level(level, || planned.query(q));
                assert_eq!(vec, scalar, "{} planned q {q:?}", level.name());
            }
        }
    }
}
