//! Differential correctness of the `fsi-kernels` layer: every kernel —
//! slice-level and as a `Strategy` — must be byte-identical to the scalar
//! `Executor` on synthetic and Zipf workloads, across shard counts 1/2/7.

use fast_set_intersection::index::{Corpus, CorpusConfig, SearchEngine, Strategy};
use fast_set_intersection::serve::{ExecMode, ShardedEngine};
use fast_set_intersection::{reference_intersection, HashContext, SortedSet};
use fsi_kernels::{
    AutoKernel, BitmapKernel, BranchlessMerge, Galloping, Kernel, ScalarMerge, SigFilterKernel,
};
use fsi_workloads::{generate_stream, QueryStreamConfig, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KERNEL_STRATEGIES: [Strategy; 3] =
    [Strategy::Bitmap, Strategy::Galloping, Strategy::SigFilter];

fn slice_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(ScalarMerge),
        Box::new(BranchlessMerge),
        Box::new(Galloping),
        Box::new(BitmapKernel),
        Box::new(SigFilterKernel::default()),
        Box::new(AutoKernel::default()),
    ]
}

/// A Zipf-clustered set: dense head, sparse tail — the document-frequency
/// shape real posting lists have.
fn zipf_set(rng: &mut StdRng, z: &Zipf, n: usize) -> SortedSet {
    (0..n).map(|_| z.sample(rng) as u32).collect()
}

#[test]
fn slice_kernels_match_reference_on_uniform_and_zipf_sets() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let zipf = Zipf::new(50_000, 1.0);
    for trial in 0..12 {
        for k in 2..=4usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|i| {
                    let n = rng.gen_range(0..1500 * (i + 1));
                    if trial % 2 == 0 {
                        let u = rng.gen_range(1..60_000u32);
                        (0..n).map(|_| rng.gen_range(0..u)).collect()
                    } else {
                        zipf_set(&mut rng, &zipf, n)
                    }
                })
                .collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            let expect = reference_intersection(&slices);
            for kernel in slice_kernels() {
                let mut out = Vec::new();
                kernel.intersect_k(&slices, &mut out);
                assert_eq!(out, expect, "kernel {} trial {trial} k={k}", kernel.name());
            }
        }
    }
}

#[test]
fn kernel_strategies_match_scalar_executor_across_shard_counts() {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 12_000,
        num_terms: 40,
        ..CorpusConfig::default()
    });
    let engine = SearchEngine::from_corpus(HashContext::new(2026), corpus);
    let queries: Vec<Vec<usize>> = vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 10, 20, 39],
        vec![35, 38],
        vec![7],
        vec![],
        vec![4, 4, 12], // duplicate term
    ];
    for strategy in KERNEL_STRATEGIES {
        let reference = engine.executor(Strategy::Merge);
        let fixed = engine.executor(strategy);
        for q in &queries {
            assert_eq!(
                fixed.query(q),
                reference.query(q),
                "unsharded {} q {q:?}",
                strategy.name()
            );
        }
        for shards in [1usize, 2, 7] {
            let sharded = ShardedEngine::build(&engine, shards, ExecMode::Fixed(strategy));
            for q in &queries {
                assert_eq!(
                    sharded.query(q),
                    reference.query(q),
                    "strategy {} shards {shards} q {q:?}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn kernel_strategies_match_executor_on_zipf_query_stream() {
    // A Zipf-skewed *query stream* over a Zipf corpus: the serving-shaped
    // workload, replayed against each kernel strategy at several shard
    // counts.
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 9_000,
        num_terms: 64,
        ..CorpusConfig::default()
    });
    let engine = SearchEngine::from_corpus(HashContext::new(404), corpus);
    let stream = generate_stream(&QueryStreamConfig {
        num_queries: 120,
        num_terms: 64,
        ..QueryStreamConfig::default()
    });
    let reference = engine.executor(Strategy::Merge);
    for strategy in KERNEL_STRATEGIES {
        for shards in [1usize, 2, 7] {
            let sharded = ShardedEngine::build(&engine, shards, ExecMode::Fixed(strategy));
            for q in &stream {
                assert_eq!(
                    sharded.query(q),
                    reference.query(q),
                    "strategy {} shards {shards} q {q:?}",
                    strategy.name()
                );
            }
        }
    }
}
