//! Integration: every algorithm variant in the repository must compute the
//! same intersections — the paper's algorithms, the nine baselines, and the
//! compressed structures, across k = 1..5 and all size regimes.

use fast_set_intersection::index::{intersect_sorted, PreparedList, Strategy};
use fast_set_intersection::workloads::{k_sets_with_intersection, pair_with_intersection};
use fast_set_intersection::{reference_intersection, HashContext, SortedSet};
use fsi_compress::GroupCoding;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn every_strategy() -> Vec<Strategy> {
    let mut v = Strategy::full_lineup();
    v.push(Strategy::RanGroupScan { m: 8 });
    v
}

fn check_all(ctx: &HashContext, sets: &[SortedSet], label: &str) {
    let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
    let expect = reference_intersection(&slices);
    for strat in every_strategy() {
        let prepared: Vec<PreparedList> = sets.iter().map(|s| strat.prepare(ctx, s)).collect();
        let refs: Vec<&PreparedList> = prepared.iter().collect();
        assert_eq!(
            intersect_sorted(&refs),
            expect,
            "{} disagrees on {label}",
            strat.name()
        );
    }
}

#[test]
fn random_pairs_all_strategies() {
    let ctx = HashContext::with_family_size(11, 8);
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..6 {
        let n1 = rng.gen_range(0..1200);
        let n2 = rng.gen_range(0..1200);
        let u = rng.gen_range(1..5000u32);
        let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
        let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
        check_all(&ctx, &[a, b], &format!("random pair #{trial}"));
    }
}

#[test]
fn skewed_pairs_all_strategies() {
    let ctx = HashContext::with_family_size(12, 8);
    let mut rng = StdRng::seed_from_u64(2);
    let (a, b) = pair_with_intersection(&mut rng, 25, 5000, 7, 1 << 24);
    check_all(&ctx, &[a, b], "skew 1:200");
    let (a, b) = pair_with_intersection(&mut rng, 1, 3000, 1, 1 << 24);
    check_all(&ctx, &[a, b], "singleton vs large");
}

#[test]
fn k_way_all_strategies() {
    let ctx = HashContext::with_family_size(13, 8);
    let mut rng = StdRng::seed_from_u64(3);
    for k in 3..=5usize {
        let sizes: Vec<usize> = (0..k).map(|i| 200 * (i + 1)).collect();
        let sets = k_sets_with_intersection(&mut rng, &sizes, 31, 1 << 24);
        check_all(&ctx, &sets, &format!("k={k} exact-r"));
    }
}

#[test]
fn boundary_sets_all_strategies() {
    let ctx = HashContext::with_family_size(14, 8);
    let cases: Vec<(&str, Vec<SortedSet>)> = vec![
        ("both empty", vec![SortedSet::new(), SortedSet::new()]),
        ("one empty", vec![SortedSet::new(), (0..100u32).collect()]),
        (
            "identical",
            vec![(0..500u32).collect(), (0..500u32).collect()],
        ),
        (
            "disjoint ranges",
            vec![(0..300u32).collect(), (1000..1300u32).collect()],
        ),
        (
            "universe extremes",
            vec![
                SortedSet::from_unsorted(vec![0, 1, u32::MAX - 1, u32::MAX]),
                SortedSet::from_unsorted(vec![0, u32::MAX]),
            ],
        ),
        (
            "adjacent interleave",
            vec![
                (0..1000u32).filter(|x| x % 2 == 0).collect(),
                (0..1000u32).filter(|x| x % 2 == 1).collect(),
            ],
        ),
    ];
    for (label, sets) in cases {
        check_all(&ctx, &sets, label);
    }
}

#[test]
fn different_contexts_give_same_results() {
    // The result must not depend on the hash seed — only the speed may.
    let mut rng = StdRng::seed_from_u64(4);
    let (a, b) = pair_with_intersection(&mut rng, 800, 900, 120, 1 << 22);
    let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
    for seed in [0u64, 1, 0xffff_ffff, u64::MAX] {
        let ctx = HashContext::with_family_size(seed, 8);
        for strat in [
            Strategy::RanGroup,
            Strategy::RanGroupScan { m: 2 },
            Strategy::HashBin,
            Strategy::Auto,
            Strategy::RgsCompressed(GroupCoding::Lowbits),
        ] {
            let pa = strat.prepare(&ctx, &a);
            let pb = strat.prepare(&ctx, &b);
            assert_eq!(
                intersect_sorted(&[&pa, &pb]),
                expect,
                "{} seed {seed}",
                strat.name()
            );
        }
    }
}
