//! Statistical validation of the paper's probabilistic claims (Appendix A):
//! group-size concentration (Proposition A.2) and filtering probability
//! (Lemmas A.1/A.3). These are claims about distributions, so the tests
//! check empirical frequencies against the stated bounds with slack.

use fast_set_intersection::{
    filtering_stats, HashContext, RanGroupScanIndex, SortedSet, SQRT_WORD_BITS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// δ(w) for w = 64 (Proposition A.2 (iii)): 1 + sqrt(6·ln(4√w)/√w) ≈ 2.61.
fn delta_w() -> f64 {
    let sw = (64f64).sqrt();
    1.0 + (6.0 * (4.0 * sw).ln() / sw).sqrt()
}

fn group_sizes(idx: &RanGroupScanIndex) -> Vec<usize> {
    (0..idx.num_groups())
        .map(|z| idx.group_elems(z).len())
        .collect()
}

#[test]
fn proposition_a2_mean_group_size() {
    // (i): √w/2 ≤ E[|L^z|] ≤ √w.
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..5 {
        let n = rng.gen_range(50_000..200_000usize);
        let set: SortedSet = (0..n).map(|_| rng.gen::<u32>()).collect();
        let ctx = HashContext::new(trial);
        let idx = RanGroupScanIndex::build(&ctx, &set);
        let sizes = group_sizes(&idx);
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            mean >= SQRT_WORD_BITS as f64 / 2.0 - 0.01 && mean <= SQRT_WORD_BITS as f64 + 0.01,
            "trial {trial}: mean group size {mean} outside [√w/2, √w]"
        );
    }
}

#[test]
fn proposition_a2_tail_bound() {
    // (iii): Pr[|L^z| > δ(w)·√w] ≤ 1/(4√w) = 1/32. Check the empirical
    // frequency with 2x slack (it is typically far below the bound).
    let mut rng = StdRng::seed_from_u64(2);
    let n = 400_000usize;
    let set: SortedSet = (0..n).map(|_| rng.gen::<u32>()).collect();
    let ctx = HashContext::new(7);
    let idx = RanGroupScanIndex::build(&ctx, &set);
    let threshold = delta_w() * SQRT_WORD_BITS as f64;
    let sizes = group_sizes(&idx);
    let over = sizes.iter().filter(|&&s| s as f64 > threshold).count();
    let frac = over as f64 / sizes.len() as f64;
    assert!(
        frac <= 2.0 / 32.0,
        "tail fraction {frac} exceeds twice the Proposition A.2 bound"
    );
}

#[test]
fn lemma_a1_filtering_lower_bound() {
    // Pr[h(L1^z) ∩ h(L2^z) = ∅ | true intersection empty] ≥ (1−1/√w)^√w
    // ≈ 0.3436 for w = 64 (groups near √w). Measured, with 15% slack for
    // group-size variation.
    let bound = (1.0 - 1.0 / 8.0f64).powi(8);
    for trial in 0..3 {
        let ctx = HashContext::with_family_size(100 + trial, 1);
        let n = 120_000usize;
        // Disjoint sets: every non-trivial tuple is empty.
        let a: SortedSet = (0..n as u32).map(|x| 2 * x).collect();
        let b: SortedSet = (0..n as u32).map(|x| 2 * x + 1).collect();
        let ia = RanGroupScanIndex::with_m(&ctx, &a, 1);
        let ib = RanGroupScanIndex::with_m(&ctx, &b, 1);
        let stats = filtering_stats(&[&ia, &ib], 1);
        let p = stats.probability(1);
        assert!(
            p >= bound * 0.85,
            "trial {trial}: measured {p} below Lemma A.1 bound {bound}"
        );
    }
}

#[test]
fn lemma_a3_k_way_filtering_is_constant() {
    // The k-set filtering probability must stay bounded away from zero as k
    // grows (Lemma A.3's β(w) is independent of k and the set sizes).
    let ctx = HashContext::with_family_size(11, 1);
    for k in 2..=5usize {
        let sets: Vec<SortedSet> = (0..k)
            .map(|i| {
                (0..40_000u32)
                    .map(|x| x * k as u32 + i as u32) // pairwise disjoint
                    .collect()
            })
            .collect();
        let idx: Vec<RanGroupScanIndex> = sets
            .iter()
            .map(|s| RanGroupScanIndex::with_m(&ctx, s, 1))
            .collect();
        let refs: Vec<&RanGroupScanIndex> = idx.iter().collect();
        let stats = filtering_stats(&refs, 1);
        let p = stats.probability(1);
        assert!(p > 0.25, "k={k}: filtering probability {p} collapsed");
    }
}

#[test]
fn more_images_filter_monotonically() {
    // 1 − (1−β)^m grows in m; the measured curve must be monotone too
    // (Appendix A.5.2 / Figure 9).
    let ctx = HashContext::with_family_size(12, 8);
    let a: SortedSet = (0..60_000u32).map(|x| 3 * x).collect();
    let b: SortedSet = (0..60_000u32).map(|x| 3 * x + 1).collect();
    let ia = RanGroupScanIndex::with_m(&ctx, &a, 8);
    let ib = RanGroupScanIndex::with_m(&ctx, &b, 8);
    let stats = filtering_stats(&[&ia, &ib], 8);
    for m in 1..8 {
        assert!(stats.probability(m + 1) >= stats.probability(m), "m={m}");
    }
    assert!(stats.probability(8) > 0.9, "m=8 should filter almost all");
}
