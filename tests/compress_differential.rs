//! Differential correctness of compressed-domain execution: skip-augmented
//! block postings must round-trip exactly (including hostile block
//! boundaries and maximum-gap deltas), and every compressed-domain
//! intersection route — the pair/k-way kernels, the `Strategy` dispatch,
//! the cost-model planner under memory pressure, and the sharded serving
//! stack — must be byte-identical to the flat reference.

use fast_set_intersection::index::{PlannedList, Planner, SearchEngine, Strategy};
use fast_set_intersection::serve::{ExecMode, PlannerProfile, ShardedEngine};
use fast_set_intersection::{reference_intersection, HashContext, SortedSet};
use fsi_compress::{BlockCodec, BlockPostings, BLOCK_LEN};
use fsi_core::{KIntersect, PairIntersect, SetIndex};
use fsi_workloads::Zipf;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizes straddling every block-boundary edge: empty, one element, one
/// short block, exactly one block, one block plus one straggler, and the
/// same around two blocks.
const HOSTILE_SIZES: [usize; 8] = [
    0,
    1,
    BLOCK_LEN - 1,
    BLOCK_LEN,
    BLOCK_LEN + 1,
    2 * BLOCK_LEN - 1,
    2 * BLOCK_LEN,
    2 * BLOCK_LEN + 1,
];

/// Exactly `n` distinct sorted values — the sizes above are block-boundary
/// cases, so an accidental duplicate must not silently shift them.
fn exact_set(rng: &mut StdRng, n: usize, universe: u32) -> SortedSet {
    let mut vals: Vec<u32> = Vec::new();
    while vals.len() < n {
        vals.extend((0..n + 16).map(|_| rng.gen_range(0..universe)));
        vals.sort_unstable();
        vals.dedup();
    }
    vals.truncate(n);
    SortedSet::from_sorted_unchecked(vals)
}

#[test]
fn round_trip_on_hostile_block_boundaries() {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for n in HOSTILE_SIZES {
        for trial in 0..4 {
            let set = exact_set(&mut rng, n, 40_000_000);
            for codec in BlockCodec::ALL {
                let post = BlockPostings::from_slice(codec, set.as_slice());
                assert_eq!(
                    post.decode_all(),
                    set.as_slice(),
                    "codec {} n={n} trial {trial}",
                    codec.label()
                );
            }
        }
    }
}

#[test]
fn round_trip_on_extreme_deltas() {
    // The widest possible gap (0 → u32::MAX needs a 32-bit field), dense
    // runs (gap 1 packs to width 0), and a block-crossing arithmetic
    // sequence wide enough to overflow the AVX2 gather-width cutoff.
    let extremes: Vec<Vec<u32>> = vec![
        vec![0, u32::MAX],
        vec![u32::MAX],
        vec![u32::MAX - 1, u32::MAX],
        (0..=(2 * BLOCK_LEN) as u32).collect(),
        (0..(BLOCK_LEN as u32 + 1))
            .map(|i| i * 33_000_000)
            .collect(),
    ];
    for vals in extremes {
        let set = SortedSet::from_sorted_unchecked(vals);
        for codec in BlockCodec::ALL {
            let post = BlockPostings::from_slice(codec, set.as_slice());
            assert_eq!(post.decode_all(), set.as_slice(), "codec {}", codec.label());
            assert_eq!(
                post.size_in_bytes(),
                BlockPostings::measure(codec, set.as_slice()),
                "measure disagrees with build for {}",
                codec.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 24 }))]

    #[test]
    fn round_trip_is_exact_for_every_codec(
        raw in pvec(0u32..2_000_000, 0..400),
        tail_gap in 0u32..u32::MAX,
    ) {
        // A random body plus a controlled final gap, so shrinking explores
        // both block structure and field width.
        let mut set = SortedSet::from_unsorted(raw.clone());
        if let Some(&max) = set.as_slice().last() {
            if u32::MAX - max > tail_gap && tail_gap > 0 {
                let mut v = set.as_slice().to_vec();
                v.push(max + tail_gap);
                set = SortedSet::from_sorted_unchecked(v);
            }
        }
        for codec in BlockCodec::ALL {
            let post = BlockPostings::from_slice(codec, set.as_slice());
            prop_assert_eq!(post.decode_all(), set.as_slice());
            prop_assert_eq!(post.n(), set.len());
        }
    }

    #[test]
    fn compressed_pair_and_kway_match_flat_reference(
        sets_raw in pvec(pvec(0u32..50_000, 0..600), 2..6),
    ) {
        let sets: Vec<SortedSet> = sets_raw.iter().cloned().map(SortedSet::from_unsorted).collect();
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let expect = reference_intersection(&slices);
        for codec in BlockCodec::ALL {
            let posts: Vec<BlockPostings> = sets
                .iter()
                .map(|s| BlockPostings::from_slice(codec, s.as_slice()))
                .collect();
            let refs: Vec<&BlockPostings> = posts.iter().collect();
            prop_assert_eq!(&BlockPostings::intersect_k_sorted(&refs), &expect);
            if let [a, b] = refs.as_slice() {
                prop_assert_eq!(&a.intersect_pair_sorted(b), &expect);
            }
        }
    }
}

/// Zipf-clustered draw (dense head, sparse tail) — the compressible shape.
fn zipf_set(rng: &mut StdRng, n: usize, universe: usize) -> SortedSet {
    let z = Zipf::new(universe, 1.0);
    let mut vals: Vec<u32> = (0..4 * n).map(|_| z.sample(rng) as u32).collect();
    vals.sort_unstable();
    vals.dedup();
    vals.truncate(n);
    SortedSet::from_sorted_unchecked(vals)
}

#[test]
fn compressed_strategies_match_merge_on_zipf_streams() {
    let ctx = HashContext::new(0xC0DE);
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let trials = if cfg!(miri) { 2 } else { 8 };
    let n = if cfg!(miri) { 300 } else { 2_000 };
    for trial in 0..trials {
        let k = 2 + trial % 3;
        let sets: Vec<SortedSet> = (0..k).map(|_| zipf_set(&mut rng, n, 40_000)).collect();
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let expect = reference_intersection(&slices);
        for codec in BlockCodec::ALL {
            let strat = Strategy::CompressedGallop(codec);
            let prepared: Vec<_> = sets.iter().map(|s| strat.prepare(&ctx, s)).collect();
            let refs: Vec<_> = prepared.iter().collect();
            assert_eq!(
                fast_set_intersection::index::intersect_sorted(&refs),
                expect,
                "{} trial {trial} k={k}",
                strat.name()
            );
        }
    }
}

#[test]
fn memory_pressured_planner_matches_flat_plans() {
    let ctx = HashContext::new(0x9E55);
    let mut rng = StdRng::seed_from_u64(0x9E55);
    let trials = if cfg!(miri) { 2 } else { 10 };
    let n = if cfg!(miri) { 200 } else { 1_500 };
    let pressured = Planner {
        bytes_unit: 100.0,
        ..Planner::default()
    };
    let calm = Planner::default();
    for trial in 0..trials {
        let k = 2 + trial % 4;
        let sets: Vec<SortedSet> = (0..k).map(|_| zipf_set(&mut rng, n, 30_000)).collect();
        let lists: Vec<PlannedList> = sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
        let refs: Vec<&PlannedList> = lists.iter().collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        pressured.intersect(&refs, &mut a);
        calm.intersect(&refs, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "trial {trial} k={k}");
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        assert_eq!(a, reference_intersection(&slices), "trial {trial} k={k}");
    }
}

#[test]
fn compressed_serving_is_shard_count_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let num_terms = if cfg!(miri) { 6 } else { 16 };
    let n = if cfg!(miri) { 150 } else { 1_200 };
    let postings: Vec<SortedSet> = (0..num_terms)
        .map(|_| zipf_set(&mut rng, n, 20_000))
        .collect();
    let engine = SearchEngine::from_postings(HashContext::new(7), postings);
    let reference = ShardedEngine::build(&engine, 1, ExecMode::Fixed(Strategy::Merge));
    let queries: Vec<Vec<usize>> = (0..if cfg!(miri) { 4 } else { 12 })
        .map(|_| {
            let k = rng.gen_range(1..4usize);
            (0..k).map(|_| rng.gen_range(0..num_terms)).collect()
        })
        .collect();
    for shards in [1usize, 2, 7] {
        for mode in [
            ExecMode::Fixed(Strategy::CompressedGallop(BlockCodec::Packed)),
            ExecMode::Fixed(Strategy::CompressedGallop(BlockCodec::Delta)),
            PlannerProfile::auto().memory_pressured(100.0).mode(),
        ] {
            let sharded = ShardedEngine::build(&engine, shards, mode.clone());
            for q in &queries {
                assert_eq!(
                    sharded.query(q),
                    reference.query(q),
                    "shards={shards} mode={} q={q:?}",
                    mode.label()
                );
            }
        }
    }
}
