//! Integration: the workload generators drive the actual algorithms and hit
//! the statistics the paper reports (cross-crate check: workloads → core).

use fast_set_intersection::index::{intersect_sorted, Strategy};
use fast_set_intersection::workloads::{
    generate_query_log, measure_workload, plan_query_log, QueryLogConfig, WorkloadProfile,
};
use fast_set_intersection::{reference_intersection, HashContext};

fn cfg(profile: WorkloadProfile, n: usize) -> QueryLogConfig {
    QueryLogConfig {
        num_queries: n,
        scale: 512,
        universe: 1 << 26,
        seed: 2024,
        profile,
    }
}

#[test]
fn query_log_queries_run_through_algorithms() {
    let ctx = HashContext::new(1);
    let log = generate_query_log(&cfg(WorkloadProfile::WebSearch, 12));
    for (qi, q) in log.iter().enumerate() {
        let slices: Vec<&[u32]> = q.sets.iter().map(|s| s.as_slice()).collect();
        let expect = reference_intersection(&slices);
        assert_eq!(expect.len(), q.r, "planned r holds for query {qi}");
        for strategy in [
            Strategy::RanGroupScan { m: 4 },
            Strategy::RanGroup,
            Strategy::HashBin,
            Strategy::Merge,
        ] {
            let prepared: Vec<_> = q.sets.iter().map(|s| strategy.prepare(&ctx, s)).collect();
            let refs: Vec<_> = prepared.iter().collect();
            assert_eq!(
                intersect_sorted(&refs),
                expect,
                "{} on query {qi}",
                strategy.name()
            );
        }
    }
}

#[test]
fn websearch_profile_statistics() {
    let plans = plan_query_log(&cfg(WorkloadProfile::WebSearch, 5000));
    let stats = measure_workload(&plans);
    // Keyword mixture 68/23/6 (±4pp) and r/n1 ≈ 0.19 (±0.05).
    let frac2 = *stats.by_k.get(&2).unwrap_or(&0) as f64 / plans.len() as f64;
    assert!((frac2 - 0.68).abs() < 0.04, "k=2 fraction {frac2}");
    assert!((stats.mean_r_over_n1 - 0.19).abs() < 0.05);
}

#[test]
fn shopping_profile_statistics() {
    let plans = plan_query_log(&cfg(WorkloadProfile::Shopping, 5000));
    let stats = measure_workload(&plans);
    assert!((stats.frac_r_le_tenth - 0.94).abs() < 0.04);
    assert!((stats.frac_r_le_hundredth - 0.76).abs() < 0.05);
}

#[test]
fn sets_in_queries_are_size_ordered_and_valid() {
    let log = generate_query_log(&cfg(WorkloadProfile::WebSearch, 8));
    for q in &log {
        assert!(q.sets.windows(2).all(|w| w[0].len() <= w[1].len()));
        for s in &q.sets {
            assert!(s.as_slice().windows(2).all(|w| w[0] < w[1]));
        }
        assert!(q.r <= q.n1());
    }
}
