//! Differential suite for the boolean expression engine: the whole stack
//! — parser, rewrites, expression planner, kernels, sharding, cache-keyed
//! serving — pinned byte-identical to a naive `BTreeSet` set-semantics
//! evaluator, across random ASTs, shard counts 1/2/7, and both planner
//! calibrations, plus proptests that the rewrites preserve semantics and
//! that canonical hashes collide exactly for equivalent expressions.

use fsi_core::{Elem, HashContext, SortedSet};
use fsi_index::{Planner, SearchEngine, Strategy};
use fsi_query::naive::{naive_eval, naive_eval_universe};
use fsi_query::{compile, encode, fingerprint, normalize, parse, Expr, NormExpr, RewriteError};
use fsi_serve::{ExecMode, Request, ServeConfig, Server, ShardedEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_TERMS: usize = 12;
const UNIVERSE: u32 = 20_000;

fn test_engine(seed: u64) -> SearchEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let postings: Vec<SortedSet> = (0..NUM_TERMS)
        .map(|i| {
            // Mix sparse, mid, and dense lists so the expression planner
            // exercises gallop/hash/bitmap/heap paths across queries.
            let n = match i % 3 {
                0 => rng.gen_range(10..200),
                1 => rng.gen_range(500..2_000),
                _ => rng.gen_range(4_000..9_000),
            };
            (0..n).map(|_| rng.gen_range(0..UNIVERSE)).collect()
        })
        .collect();
    SearchEngine::from_postings(HashContext::new(77), postings)
}

fn posting_slices(engine: &SearchEngine) -> Vec<&[Elem]> {
    (0..engine.num_terms())
        .map(|t| engine.posting(t).as_slice())
        .collect()
}

/// A random expression over `0..num_terms`, depth-bounded.
fn random_expr(rng: &mut StdRng, num_terms: usize, depth: usize) -> Expr {
    if depth == 0 || rng.gen_range(0..10) < 3 {
        return Expr::Term(rng.gen_range(0..num_terms));
    }
    match rng.gen_range(0..10) {
        0..=3 => {
            let k = rng.gen_range(2..=4);
            Expr::And(
                (0..k)
                    .map(|_| random_expr(rng, num_terms, depth - 1))
                    .collect(),
            )
        }
        4..=7 => {
            let k = rng.gen_range(2..=4);
            Expr::Or(
                (0..k)
                    .map(|_| random_expr(rng, num_terms, depth - 1))
                    .collect(),
            )
        }
        _ => Expr::Not(Box::new(random_expr(rng, num_terms, depth - 1))),
    }
}

/// A random *bounded* expression: resampled (and, in the limit, anchored
/// by a conjoined positive term) until `normalize` accepts it.
fn random_bounded_expr(rng: &mut StdRng, num_terms: usize, depth: usize) -> (Expr, NormExpr) {
    for _ in 0..64 {
        let e = random_expr(rng, num_terms, depth);
        if let Ok(n) = normalize(&e) {
            return (e, n);
        }
        // Anchoring an unbounded draw under a positive term always bounds
        // it — keeps the NOT-heavy shapes in the sample instead of
        // discarding them.
        let anchored = Expr::And(vec![Expr::Term(rng.gen_range(0..num_terms)), e]);
        if let Ok(n) = normalize(&anchored) {
            return (anchored, n);
        }
    }
    unreachable!("anchored expressions are always bounded");
}

/// A random semantics-preserving syntactic scramble: permutations,
/// duplicate children, double negation, explicit De Morgan spellings, and
/// associativity splits. `normalize` must erase all of it.
fn scramble(rng: &mut StdRng, expr: &Expr) -> Expr {
    let recurse = |rng: &mut StdRng, children: &[Expr]| -> Vec<Expr> {
        let mut out: Vec<Expr> = children.iter().map(|c| scramble(rng, c)).collect();
        // Permute.
        for i in (1..out.len()).rev() {
            out.swap(i, rng.gen_range(0..=i));
        }
        // Duplicate a child (idempotence).
        if rng.gen_range(0..4) == 0 {
            let dup = out[rng.gen_range(0..out.len())].clone();
            out.push(dup);
        }
        out
    };
    let scrambled = match expr {
        Expr::Term(t) => Expr::Term(*t),
        Expr::Not(inner) => Expr::Not(Box::new(scramble(rng, inner))),
        Expr::And(children) => {
            let mut kids = recurse(rng, children);
            if kids.len() > 2 && rng.gen_range(0..3) == 0 {
                // Associativity: fold a random suffix into a nested And.
                let tail = kids.split_off(kids.len() - 2);
                kids.push(Expr::And(tail));
            }
            if rng.gen_range(0..4) == 0 {
                // De Morgan spelling: ∧ = ¬(∨¬).
                Expr::Not(Box::new(Expr::Or(
                    kids.into_iter().map(|c| Expr::Not(Box::new(c))).collect(),
                )))
            } else {
                Expr::And(kids)
            }
        }
        Expr::Or(children) => {
            let mut kids = recurse(rng, children);
            if kids.len() > 2 && rng.gen_range(0..3) == 0 {
                let tail = kids.split_off(kids.len() - 2);
                kids.push(Expr::Or(tail));
            }
            if rng.gen_range(0..4) == 0 {
                Expr::Not(Box::new(Expr::And(
                    kids.into_iter().map(|c| Expr::Not(Box::new(c))).collect(),
                )))
            } else {
                Expr::Or(kids)
            }
        }
    };
    if rng.gen_range(0..5) == 0 {
        Expr::Not(Box::new(Expr::Not(Box::new(scrambled))))
    } else {
        scrambled
    }
}

// ---------------------------------------------------------------------------
// Engine differential: every mode, every shard count, vs naive semantics
// ---------------------------------------------------------------------------

#[test]
fn expression_engine_matches_naive_semantics_across_shards_and_planners() {
    let engine = test_engine(1);
    let slices = posting_slices(&engine);
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let exprs: Vec<NormExpr> = (0..40)
        .map(|_| random_bounded_expr(&mut rng, NUM_TERMS, 3).1)
        .collect();
    // "Both planners": the scalar-calibrated default and the SIMD-tier
    // auto calibration (identical answers, possibly different plans),
    // plus two fixed strategies through the structural evaluator.
    let modes: Vec<(String, ExecMode)> = vec![
        (
            "planned-default".into(),
            ExecMode::Planned(Planner::default()),
        ),
        ("planned-auto".into(), ExecMode::Planned(Planner::auto())),
        ("fixed-merge".into(), ExecMode::Fixed(Strategy::Merge)),
        (
            "fixed-rgs".into(),
            ExecMode::Fixed(Strategy::RanGroupScan { m: 2 }),
        ),
    ];
    for (label, mode) in &modes {
        for shards in [1usize, 2, 7] {
            let sharded = ShardedEngine::build(&engine, shards, mode.clone());
            for expr in &exprs {
                let expect: Vec<Elem> = naive_eval(&slices, expr).into_iter().collect();
                assert_eq!(
                    sharded.query_expr(expr),
                    expect,
                    "{label} shards={shards} expr={expr}"
                );
            }
        }
    }
}

#[test]
fn generated_boolean_streams_run_end_to_end() {
    // The shared traffic model, through the full server: every query the
    // generator emits must compile, validate, and answer identically to
    // the naive evaluator.
    let engine = test_engine(2);
    let slices = posting_slices(&engine);
    let stream = fsi_workloads::stream::generate_boolean_stream(
        &fsi_workloads::stream::BooleanStreamConfig {
            num_queries: 300,
            num_terms: NUM_TERMS,
            or_probability: 0.5,
            not_probability: 0.5,
            seed: 0xFEED,
            ..Default::default()
        },
    );
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: 3,
            cache_capacity: 256,
            mode: ExecMode::Planned(Planner::default()),
            ..ServeConfig::default()
        },
    );
    for q in &stream {
        let norm = compile(q).expect("generated queries compile");
        let expect: Vec<Elem> = naive_eval(&slices, &norm).into_iter().collect();
        let got = server
            .execute(&Request::expr(q.as_str()))
            .expect("valid query");
        assert_eq!(got.docs.as_slice(), expect.as_slice(), "{q}");
    }
    // Zipf repeats must have produced canonical-key cache hits.
    assert!(
        server.stats().cache.hits > 0,
        "stream produced no cache hits"
    );
}

#[test]
fn reordered_duplicate_queries_hit_one_cache_entry() {
    let engine = test_engine(3);
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: 2,
            cache_capacity: 64,
            ..ServeConfig::default()
        },
    );
    // Six spellings of one query: 1 miss + 5 hits, one cached entry.
    let spellings = [
        "1 AND 4 AND NOT 7",
        "4 AND 1 AND NOT 7",
        "4 1 AND NOT 7",
        "1 4 1 AND NOT 7",
        "4 AND NOT 7 AND 1",
        "NOT 7 AND 4 AND 1",
    ];
    let mut results = Vec::new();
    for q in spellings {
        results.push(server.execute(&Request::expr(q)).expect("valid").docs);
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
    let stats = server.stats();
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, spellings.len() as u64 - 1);
    assert_eq!(stats.cache.len, 1);
}

// ---------------------------------------------------------------------------
// Proptests: rewrite soundness and canonical-hash equivalence
// ---------------------------------------------------------------------------

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(96))]

    /// `normalize` preserves semantics: naive universe-complement
    /// evaluation of the raw AST equals naive set-semantics evaluation of
    /// the canonical form, on random postings.
    #[test]
    fn rewrites_preserve_semantics(seed in proptest::any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_terms = rng.gen_range(1..8usize);
        let universe = rng.gen_range(1..300u32);
        let postings: Vec<Vec<Elem>> = (0..num_terms)
            .map(|_| {
                let n = rng.gen_range(0..80usize);
                let mut v: Vec<Elem> = (0..n).map(|_| rng.gen_range(0..universe)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let slices: Vec<&[Elem]> = postings.iter().map(Vec::as_slice).collect();
        let (raw, norm) = random_bounded_expr(&mut rng, num_terms, 3);
        let via_raw = naive_eval_universe(&slices, universe, &raw);
        let via_norm = naive_eval(&slices, &norm);
        proptest::prop_assert!(
            via_raw == via_norm,
            "expr {} -> {}: raw {:?} vs norm {:?}", raw, norm, via_raw, via_norm
        );
    }

    /// Unbounded expressions are exactly the ones whose universe-based
    /// value keeps growing with the universe — `normalize`'s accept/reject
    /// decision is semantically right in both directions.
    #[test]
    fn unbounded_rejection_is_sound(seed in proptest::any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let num_terms = rng.gen_range(1..6usize);
        let postings: Vec<Vec<Elem>> = (0..num_terms)
            .map(|_| {
                let n = rng.gen_range(0..30usize);
                let mut v: Vec<Elem> = (0..n).map(|_| rng.gen_range(0..100u32)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let slices: Vec<&[Elem]> = postings.iter().map(Vec::as_slice).collect();
        let expr = random_expr(&mut rng, num_terms, 3);
        // All postings live below 100; anything the query emits above is
        // complement mass, which only unbounded queries can produce.
        let big = naive_eval_universe(&slices, 10_000, &expr);
        let complement_mass = big.iter().filter(|&&x| x >= 100).count();
        match normalize(&expr) {
            Ok(_) => proptest::prop_assert!(
                complement_mass == 0,
                "bounded expr {} leaked {} complement values",
                expr,
                complement_mass
            ),
            Err(RewriteError::UnboundedNot) => proptest::prop_assert!(
                complement_mass > 0,
                "rejected expr {} is actually bounded",
                expr
            ),
        }
    }

    /// Canonical hashes collide for equivalent expressions: any
    /// semantics-preserving syntactic scramble (commutativity,
    /// associativity, idempotence, double negation, De Morgan spellings)
    /// produces the identical canonical form, encoding, and fingerprint —
    /// and survives a parse round trip.
    #[test]
    fn canonical_hashes_collide_for_equivalent_expressions(seed in proptest::any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (raw, norm) = random_bounded_expr(&mut rng, 8, 3);
        for _ in 0..3 {
            let variant = scramble(&mut rng, &raw);
            let via_variant = normalize(&variant);
            proptest::prop_assert!(
                via_variant.as_ref() == Ok(&norm),
                "scramble {} of {} changed the canonical form to {:?}",
                variant, raw, via_variant
            );
            let variant_norm = via_variant.expect("checked");
            proptest::prop_assert_eq!(encode(&variant_norm), encode(&norm));
            proptest::prop_assert_eq!(fingerprint(&variant_norm), fingerprint(&norm));
            // Surface-syntax round trip through the parser.
            let reparsed = parse(&variant.to_string()).expect("display reparses");
            proptest::prop_assert_eq!(normalize(&reparsed), Ok(norm.clone()));
        }
    }

    /// …and only for equivalent expressions: independently drawn pairs
    /// whose fingerprints collide must be semantically equal on random
    /// postings (with a 64-bit FNV over injective encodings, a false
    /// collision in this test would be a canonicalization bug, not luck).
    #[test]
    fn canonical_hashes_separate_inequivalent_expressions(seed in proptest::any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, a) = random_bounded_expr(&mut rng, 6, 3);
        let (_, b) = random_bounded_expr(&mut rng, 6, 3);
        let universe = 400u32;
        let postings: Vec<Vec<Elem>> = (0..6)
            .map(|_| {
                let n = rng.gen_range(0..120usize);
                let mut v: Vec<Elem> = (0..n).map(|_| rng.gen_range(0..universe)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let slices: Vec<&[Elem]> = postings.iter().map(Vec::as_slice).collect();
        if fingerprint(&a) == fingerprint(&b) {
            proptest::prop_assert!(
                encode(&a) == encode(&b),
                "64-bit fingerprint collision between distinct forms: {} vs {}", a, b
            );
            proptest::prop_assert_eq!(naive_eval(&slices, &a), naive_eval(&slices, &b));
        } else {
            proptest::prop_assert_ne!(encode(&a), encode(&b));
        }
    }
}
