//! Property tests for the k-way paths: on random k ∈ 2..=8 operand lists —
//! including duplicated terms, an empty list, and one list equal to the
//! whole universe — every multiway route (slice kernels, the cost-model
//! planner under arbitrary unit constants, and every fixed `Strategy`'s
//! k-way dispatch) must equal the scalar pairwise fold.

use fast_set_intersection::index::{
    intersect_sorted, PlannedList, Planner, PreparedList, Strategy as QueryStrategy,
};
use fast_set_intersection::{HashContext, SortedSet};
use fsi_kernels::{
    pairwise_fold_into, BitmapAnd, GallopProbe, HeapMerge, MultiwayAuto, MultiwayKernel,
    ScalarMerge,
};
use proptest::collection::vec;
use proptest::prelude::*;

const UNIVERSE: u32 = 3_000;

/// `k ∈ 2..=8` random sets over a small universe (so intersections are
/// non-trivial).
fn operand_lists() -> impl Strategy<Value = Vec<SortedSet>> {
    vec(
        vec(0u32..UNIVERSE, 0..800).prop_map(SortedSet::from_unsorted),
        2..9,
    )
}

/// Injects the adversarial specials, driven by the bits of `special`:
/// duplicate one list into another slot (the "duplicate term" case — ⋂ is
/// idempotent, so the expected result is unchanged by construction),
/// replace one list by the empty set, and/or replace one list by the whole
/// universe (the ⋂-identity).
fn with_specials(mut sets: Vec<SortedSet>, special: u64) -> Vec<SortedSet> {
    let k = sets.len();
    if special & 1 != 0 {
        let from = ((special >> 8) as u8) as usize % k;
        let to = ((special >> 16) as u8) as usize % k;
        sets[to] = sets[from].clone();
    }
    if special & 2 != 0 {
        let at = ((special >> 24) as u8) as usize % k;
        sets[at] = SortedSet::new();
    }
    if special & 4 != 0 {
        let at = ((special >> 32) as u8) as usize % k;
        sets[at] = (0..UNIVERSE).collect();
    }
    sets
}

/// The baseline: sort by length, fold pairwise with the scalar merge.
fn fold_reference(sets: &[SortedSet]) -> Vec<u32> {
    let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
    let mut out = Vec::new();
    pairwise_fold_into(&ScalarMerge, &slices, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multiway_kernels_equal_pairwise_fold(
        raw in operand_lists(),
        special in any::<u64>(),
    ) {
        let sets = with_specials(raw.clone(), special);
        let expect = fold_reference(&sets);
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let kernels: Vec<Box<dyn MultiwayKernel>> = vec![
            Box::new(GallopProbe),
            Box::new(HeapMerge),
            Box::new(BitmapAnd),
            Box::new(MultiwayAuto::default()),
        ];
        for kernel in kernels {
            let mut out = Vec::new();
            kernel.intersect(&slices, &mut out);
            prop_assert_eq!(&out, &expect);
        }
    }

    #[test]
    fn planner_equals_pairwise_fold_under_arbitrary_units(
        raw in operand_lists(),
        special in any::<u64>(),
        seed in any::<u64>(),
        gallop_unit in 0.01f64..100.0,
        hash_unit in 0.01f64..100.0,
        bitmap_word_unit in 0.01f64..100.0,
        rgs_unit in 0.01f64..100.0,
        heap_unit in 0.01f64..100.0,
        decode_unit in 0.01f64..100.0,
        bytes_unit in 0.0f64..10.0,
    ) {
        let sets = with_specials(raw.clone(), special);
        let ctx = HashContext::new(seed);
        let planner = Planner {
            gallop_unit,
            hash_unit,
            bitmap_word_unit,
            rgs_unit,
            heap_unit,
            decode_unit,
            bytes_unit,
        };
        let expect = fold_reference(&sets);
        let lists: Vec<PlannedList> =
            sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
        let refs: Vec<&PlannedList> = lists.iter().collect();
        let mut out = Vec::new();
        let _plan = planner.intersect(&refs, &mut out);
        out.sort_unstable();
        prop_assert_eq!(&out, &expect);
    }

    #[test]
    fn every_strategy_k_way_equals_pairwise_fold(
        raw in operand_lists(),
        special in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let sets = with_specials(raw.clone(), special);
        let ctx = HashContext::new(seed);
        let expect = fold_reference(&sets);
        for strat in QueryStrategy::full_lineup() {
            let prepared: Vec<PreparedList> =
                sets.iter().map(|s| strat.prepare(&ctx, s)).collect();
            let refs: Vec<&PreparedList> = prepared.iter().collect();
            prop_assert_eq!(&intersect_sorted(&refs), &expect);
        }
    }
}
