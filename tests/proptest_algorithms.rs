//! Property-based tests over the core invariants:
//! * every algorithm equals the reference intersection on arbitrary inputs;
//! * the permutation `g` is a bijection;
//! * codecs round-trip;
//! * k-set intersection equals folded 2-set intersection.

use fast_set_intersection::{
    reference_intersection, HashBinIndex, HashContext, IntGroupIndex, KIntersect, MultiResIndex,
    PairIntersect, Permutation, RanGroupIndex, RanGroupScanIndex, SortedSet,
};
use fsi_compress::{
    BitWriter, CompressedLookup, CompressedPostings, CompressedRgsIndex, EliasCode, GroupCoding,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn sorted_set(max_len: usize) -> impl Strategy<Value = SortedSet> {
    vec(any::<u32>(), 0..max_len).prop_map(SortedSet::from_unsorted)
}

/// Values confined to a small universe so intersections are non-trivial.
fn dense_set(max_len: usize) -> impl Strategy<Value = SortedSet> {
    vec(0u32..2000, 0..max_len).prop_map(SortedSet::from_unsorted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permutation_is_bijective(seed in any::<u64>(), xs in vec(any::<u32>(), 0..200)) {
        let ctx = HashContext::new(seed);
        let g: &Permutation = ctx.g();
        for &x in &xs {
            prop_assert_eq!(g.invert(g.apply(x)), x);
        }
    }

    #[test]
    fn pair_algorithms_match_reference(a in dense_set(400), b in dense_set(400), seed in any::<u64>()) {
        let ctx = HashContext::with_family_size(seed, 4);
        let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);

        let ia = IntGroupIndex::build(&ctx, &a);
        let ib = IntGroupIndex::build(&ctx, &b);
        prop_assert_eq!(ia.intersect_pair_sorted(&ib), expect.clone());

        let ra = RanGroupIndex::build(&ctx, &a);
        let rb = RanGroupIndex::build(&ctx, &b);
        prop_assert_eq!(ra.intersect_pair_sorted(&rb), expect.clone());

        let sa = RanGroupScanIndex::with_m(&ctx, &a, 2);
        let sb = RanGroupScanIndex::with_m(&ctx, &b, 2);
        prop_assert_eq!(sa.intersect_pair_sorted(&sb), expect.clone());

        let ha = HashBinIndex::build(&ctx, &a);
        let hb = HashBinIndex::build(&ctx, &b);
        prop_assert_eq!(ha.intersect_pair_sorted(&hb), expect.clone());

        let ma = MultiResIndex::build(&ctx, &a);
        let mb = MultiResIndex::build(&ctx, &b);
        let mut out = Vec::new();
        fsi_core::multires::intersect_pair_opt(&ma, &mb, &mut out);
        out.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn sparse_universe_pairs_match(a in sorted_set(200), b in sorted_set(200), seed in any::<u64>()) {
        let ctx = HashContext::with_family_size(seed, 4);
        let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
        let sa = RanGroupScanIndex::build(&ctx, &a);
        let sb = RanGroupScanIndex::build(&ctx, &b);
        prop_assert_eq!(sa.intersect_pair_sorted(&sb), expect.clone());
        let ra = RanGroupIndex::build(&ctx, &a);
        let rb = RanGroupIndex::build(&ctx, &b);
        prop_assert_eq!(ra.intersect_pair_sorted(&rb), expect);
    }

    #[test]
    fn k_way_equals_pairwise_fold(sets in vec(dense_set(250), 1..5), seed in any::<u64>()) {
        let ctx = HashContext::with_family_size(seed, 4);
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let expect = reference_intersection(&slices);
        let idx: Vec<RanGroupScanIndex> =
            sets.iter().map(|s| RanGroupScanIndex::build(&ctx, s)).collect();
        let refs: Vec<&RanGroupScanIndex> = idx.iter().collect();
        prop_assert_eq!(RanGroupScanIndex::intersect_k_sorted(&refs), expect.clone());
        let idx: Vec<RanGroupIndex> =
            sets.iter().map(|s| RanGroupIndex::build(&ctx, s)).collect();
        let refs: Vec<&RanGroupIndex> = idx.iter().collect();
        prop_assert_eq!(RanGroupIndex::intersect_k_sorted(&refs), expect);
    }

    #[test]
    fn elias_codes_round_trip(values in vec(1u64..=u32::MAX as u64, 0..300)) {
        for code in [EliasCode::Gamma, EliasCode::Delta] {
            let mut w = BitWriter::new();
            for &v in &values {
                code.encode(&mut w, v);
            }
            let buf = w.finish();
            let mut r = buf.reader();
            for &v in &values {
                prop_assert_eq!(code.decode(&mut r), v);
            }
        }
    }

    #[test]
    fn compressed_postings_round_trip(s in sorted_set(400)) {
        for code in [EliasCode::Gamma, EliasCode::Delta] {
            let c = CompressedPostings::build(code, &s);
            prop_assert_eq!(c.decode_all(), s.as_slice());
        }
    }

    #[test]
    fn compressed_structures_match_reference(a in dense_set(300), b in dense_set(300), seed in any::<u64>()) {
        let ctx = HashContext::with_family_size(seed, 4);
        let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
        for code in [EliasCode::Gamma, EliasCode::Delta] {
            let ca = CompressedPostings::build(code, &a);
            let cb = CompressedPostings::build(code, &b);
            prop_assert_eq!(ca.intersect_pair_sorted(&cb), expect.clone());
            let la = CompressedLookup::build(code, &a);
            let lb = CompressedLookup::build(code, &b);
            prop_assert_eq!(la.intersect_pair_sorted(&lb), expect.clone());
        }
        for coding in [
            GroupCoding::Lowbits,
            GroupCoding::Elias(EliasCode::Gamma),
            GroupCoding::Elias(EliasCode::Delta),
        ] {
            let ca = CompressedRgsIndex::build(&ctx, &a, coding);
            let cb = CompressedRgsIndex::build(&ctx, &b, coding);
            prop_assert_eq!(ca.intersect_pair_sorted(&cb), expect.clone());
        }
    }

    #[test]
    fn membership_probes_agree(s in dense_set(400), probes in vec(0u32..2500, 0..100), seed in any::<u64>()) {
        let ctx = HashContext::with_family_size(seed, 4);
        let ig = IntGroupIndex::build(&ctx, &s);
        let rg = RanGroupIndex::build(&ctx, &s);
        let rs = RanGroupScanIndex::build(&ctx, &s);
        for &x in &probes {
            let want = s.contains(x);
            prop_assert_eq!(ig.contains(x), want);
            prop_assert_eq!(rg.contains(x), want);
            prop_assert_eq!(rs.contains(x), want);
        }
    }
}
