//! Differential correctness of the true k-way layer: every multiway path —
//! slice kernels, the cost-model planner, and the planner-mode serving
//! stack — must be byte-identical to the scalar pairwise fold, across
//! shard counts 1/2/7.

use fast_set_intersection::index::{
    Corpus, CorpusConfig, MultiwayPlan, PlanKind, PlannedList, Planner, SearchEngine, Strategy,
};
use fast_set_intersection::serve::{ExecMode, ShardedEngine};
use fast_set_intersection::{reference_intersection, HashContext, SortedSet};
use fsi_kernels::{
    pairwise_fold_into, BitmapAnd, GallopProbe, HeapMerge, MultiwayAuto, MultiwayKernel,
    ScalarMerge,
};
use fsi_workloads::{generate_stream, QueryStreamConfig, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn multiway_kernels() -> Vec<Box<dyn MultiwayKernel>> {
    vec![
        Box::new(GallopProbe),
        Box::new(HeapMerge),
        Box::new(BitmapAnd),
        Box::new(MultiwayAuto::default()),
    ]
}

/// The baseline every multiway path must match: sort by length, fold
/// pairwise with the scalar merge, materializing every intermediate.
fn fold_reference(slices: &[&[u32]]) -> Vec<u32> {
    let mut out = Vec::new();
    pairwise_fold_into(&ScalarMerge, slices, &mut out);
    out
}

#[test]
fn multiway_kernels_match_pairwise_fold_on_uniform_and_zipf_sets() {
    let mut rng = StdRng::seed_from_u64(0x14A7);
    let zipf = Zipf::new(50_000, 1.0);
    for trial in 0..10 {
        for k in 2..=8usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|i| {
                    let n = rng.gen_range(0..1000 * (i + 1));
                    if trial % 2 == 0 {
                        let u = rng.gen_range(1..60_000u32);
                        (0..n).map(|_| rng.gen_range(0..u)).collect()
                    } else {
                        (0..n).map(|_| zipf.sample(&mut rng) as u32).collect()
                    }
                })
                .collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            let expect = fold_reference(&slices);
            assert_eq!(expect, reference_intersection(&slices), "fold vs reference");
            for kernel in multiway_kernels() {
                let mut out = Vec::new();
                kernel.intersect(&slices, &mut out);
                assert_eq!(out, expect, "kernel {} trial {trial} k={k}", kernel.name());
            }
        }
    }
}

#[test]
fn planner_matches_pairwise_fold_for_every_forced_kind() {
    let ctx = HashContext::new(0x714);
    let mut rng = StdRng::seed_from_u64(0x715);
    let planner = Planner::default();
    for k in 2..=8usize {
        let sets: Vec<SortedSet> = (0..k)
            .map(|_| {
                let n = rng.gen_range(1..2500);
                (0..n).map(|_| rng.gen_range(0..30_000u32)).collect()
            })
            .collect();
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let expect = fold_reference(&slices);
        let lists: Vec<PlannedList> = sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
        let refs: Vec<&PlannedList> = lists.iter().collect();
        let chosen = planner.plan_for_lists(&refs);
        for kind in [
            PlanKind::RanGroupScan,
            PlanKind::HashProbe,
            PlanKind::GallopProbe,
            PlanKind::HeapMerge,
        ] {
            let plan = MultiwayPlan {
                kind,
                ..chosen.clone()
            };
            let mut out = Vec::new();
            planner.execute(&plan, &refs, &mut out);
            out.sort_unstable();
            assert_eq!(out, expect, "forced {kind:?} k={k}");
        }
    }
}

#[test]
fn planned_mode_matches_scalar_executor_across_shard_counts() {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 12_000,
        num_terms: 40,
        ..CorpusConfig::default()
    });
    let engine = SearchEngine::from_corpus(HashContext::new(2027), corpus);
    let reference = engine.executor(Strategy::Merge);
    let queries: Vec<Vec<usize>> = vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 10, 20, 39],
        vec![0, 5, 10, 15, 20, 25, 30, 35], // k = 8
        vec![35, 38],
        vec![7],
        vec![],
        vec![4, 4, 12], // duplicate term
    ];
    // Unsharded planned executor first.
    let exec = engine.planned_executor(Planner::default());
    for q in &queries {
        assert_eq!(exec.query(q), reference.query(q), "unsharded planned {q:?}");
    }
    for shards in [1usize, 2, 7] {
        let sharded = ShardedEngine::build(&engine, shards, ExecMode::Planned(Planner::default()));
        for q in &queries {
            assert_eq!(
                sharded.query(q),
                reference.query(q),
                "planned shards {shards} q {q:?}"
            );
            assert_eq!(
                sharded.query_parallel(q),
                reference.query(q),
                "planned parallel shards {shards} q {q:?}"
            );
        }
    }
}

#[test]
fn planned_mode_matches_executor_on_zipf_query_stream() {
    // A Zipf-skewed *query stream* over a Zipf corpus: the serving-shaped
    // workload, replayed against the planner across several shard counts.
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 9_000,
        num_terms: 64,
        ..CorpusConfig::default()
    });
    let engine = SearchEngine::from_corpus(HashContext::new(405), corpus);
    let stream = generate_stream(&QueryStreamConfig {
        num_queries: 120,
        num_terms: 64,
        ..QueryStreamConfig::default()
    });
    let reference = engine.executor(Strategy::Merge);
    for shards in [1usize, 2, 7] {
        let sharded = ShardedEngine::build(&engine, shards, ExecMode::Planned(Planner::default()));
        for q in &stream {
            assert_eq!(
                sharded.query(q),
                reference.query(q),
                "planned shards {shards} q {q:?}"
            );
        }
    }
}
