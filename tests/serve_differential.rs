//! Differential correctness of the serving layer against the
//! single-threaded `Executor`:
//!
//! * for **every** strategy and shard counts 1/2/7, `ShardedEngine` returns
//!   byte-identical results;
//! * the cache hit path returns exactly what the miss path computed;
//! * concurrent batches over one shared server agree with serial queries.

use fast_set_intersection::index::{Corpus, CorpusConfig, SearchEngine, Strategy};
use fast_set_intersection::serve::{ExecMode, Request, ServeConfig, Server, ShardedEngine};
use fast_set_intersection::HashContext;
use fsi_index::Planner;

fn engine() -> SearchEngine {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 12_000,
        num_terms: 40,
        ..CorpusConfig::default()
    });
    SearchEngine::from_corpus(HashContext::new(2011), corpus)
}

fn queries() -> Vec<Vec<usize>> {
    vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 10, 20, 39],
        vec![35, 38],   // sparse tail terms
        vec![0, 39],    // most vs least frequent
        vec![7],        // single term
        vec![],         // empty query
        vec![4, 4, 12], // duplicate term
    ]
}

#[test]
fn every_strategy_and_shard_count_matches_executor() {
    let engine = engine();
    let queries = queries();
    for strategy in Strategy::full_lineup() {
        let reference = engine.executor(strategy);
        for shards in [1usize, 2, 7] {
            let sharded = ShardedEngine::build(&engine, shards, ExecMode::Fixed(strategy));
            for q in &queries {
                assert_eq!(
                    sharded.query(q),
                    reference.query(q),
                    "strategy {} shards {shards} q {q:?}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn planned_mode_matches_executor_across_shard_counts() {
    let engine = engine();
    let reference = engine.executor(Strategy::Merge);
    for shards in [1usize, 2, 7] {
        let sharded = ShardedEngine::build(&engine, shards, ExecMode::Planned(Planner::default()));
        for q in &queries() {
            assert_eq!(
                sharded.query(q),
                reference.query(q),
                "shards {shards} q {q:?}"
            );
        }
    }
}

#[test]
fn cache_hit_path_equals_miss_path() {
    let engine = engine();
    let reference = engine.executor(Strategy::RanGroupScan { m: 2 });
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: 3,
            num_workers: 2,
            cache_capacity: 64,
            mode: ExecMode::Fixed(Strategy::RanGroupScan { m: 2 }),
            ..ServeConfig::default()
        },
    );
    for q in &queries() {
        // Computed by the shards, then served by the cache.
        let miss = server.execute(&Request::terms(q.clone())).expect("valid");
        let hit = server.execute(&Request::terms(q.clone())).expect("valid");
        assert_eq!(miss.docs, hit.docs, "{q:?}");
        assert_eq!(hit.docs.as_slice(), reference.query(q), "{q:?}");
    }
    let stats = server.stats();
    assert_eq!(stats.cache.hits, queries().len() as u64);
}

#[test]
fn sharded_and_cached_batches_match_executor() {
    let engine = engine();
    let reference = engine.executor(Strategy::Lookup);
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: 7,
            num_workers: 4,
            cache_capacity: 32, // small: forces evictions mid-batch
            cache_segments: 2,
            mode: ExecMode::Fixed(Strategy::Lookup),
        },
    );
    let batch: Vec<Request> = (0..200)
        .map(|i| Request::terms(vec![i % 5, 5 + i % 7, 12 + i % 28]))
        .collect();
    let terms: Vec<Vec<usize>> = (0..200)
        .map(|i| vec![i % 5, 5 + i % 7, 12 + i % 28])
        .collect();
    for _round in 0..3 {
        let outcome = server.execute_batch(&batch);
        for (q, r) in terms.iter().zip(&outcome.responses) {
            let resp = r.as_ref().expect("valid");
            assert_eq!(resp.docs.as_slice(), reference.query(q), "{q:?}");
        }
    }
}

#[test]
fn concurrent_clients_smoke() {
    let engine = engine();
    let reference = engine.executor(Strategy::RanGroupScan { m: 2 });
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: 2,
            num_workers: 2,
            cache_capacity: 128,
            mode: ExecMode::Fixed(Strategy::RanGroupScan { m: 2 }),
            ..ServeConfig::default()
        },
    );
    let expected: Vec<Vec<u32>> = (0..8)
        .map(|t| reference.query(&[t, 8 + t, 16 + t]))
        .collect();
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let server = &server;
            let expected = &expected;
            scope.spawn(move || {
                for i in 0..100usize {
                    let t = (client + i) % 8;
                    let got = server
                        .execute(&Request::terms(vec![t, 8 + t, 16 + t]))
                        .expect("valid");
                    assert_eq!(got.docs.as_slice(), expected[t], "client {client} t {t}");
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.queries_served, 400);
    assert_eq!(stats.cache.hits + stats.cache.misses, 400);
    // 8 distinct keys, but the get→compute→insert path is a benign
    // stampede: each of the 4 clients may independently miss a key the
    // first time it sees it, so up to 8 × 4 misses are legitimate.
    assert!(
        stats.cache.misses <= 8 * 4,
        "misses {} exceed the stampede bound",
        stats.cache.misses
    );
}
