//! Failure injection: adversarial and degenerate inputs must stay *correct*
//! (slow is acceptable). The paper's guarantees are expectations over the
//! hash draw; these tests pin the worst cases the structures can encounter.

use fast_set_intersection::{
    reference_intersection, HashContext, KIntersect, PairIntersect, RanGroupIndex,
    RanGroupScanIndex, SortedSet,
};

/// Everything lands in one group: partition level forced to 0.
#[test]
fn single_group_degenerate_partition() {
    let ctx = HashContext::new(1);
    let a: SortedSet = (0..5000u32).map(|x| x * 2).collect();
    let b: SortedSet = (0..5000u32).map(|x| x * 3).collect();
    let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);

    let ra = RanGroupIndex::with_level(&ctx, &a, 0);
    let rb = RanGroupIndex::with_level(&ctx, &b, 0);
    assert_eq!(ra.intersect_pair_sorted(&rb), expect);

    let sa = RanGroupScanIndex::with_m_and_level(&ctx, &a, 2, 0);
    let sb = RanGroupScanIndex::with_m_and_level(&ctx, &b, 2, 0);
    assert_eq!(sa.intersect_pair_sorted(&sb), expect);
}

/// Maximal fragmentation: more groups than elements.
#[test]
fn over_partitioned_sets() {
    let ctx = HashContext::new(2);
    let a: SortedSet = (0..300u32).collect();
    let b: SortedSet = (150..450u32).collect();
    let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
    for t in [12u32, 16] {
        let ra = RanGroupIndex::with_level(&ctx, &a, t);
        let rb = RanGroupIndex::with_level(&ctx, &b, t);
        assert_eq!(ra.intersect_pair_sorted(&rb), expect, "t={t}");
        let sa = RanGroupScanIndex::with_m_and_level(&ctx, &a, 1, t);
        let sb = RanGroupScanIndex::with_m_and_level(&ctx, &b, 1, t);
        assert_eq!(sa.intersect_pair_sorted(&sb), expect, "t={t}");
    }
}

/// Mixed extreme levels across the k sets.
#[test]
fn mixed_partition_levels_k_way() {
    let ctx = HashContext::new(3);
    let sets: Vec<SortedSet> = vec![
        (0..400u32).filter(|x| x % 2 == 0).collect(),
        (0..400u32).filter(|x| x % 3 == 0).collect(),
        (0..400u32).filter(|x| x % 5 == 0).collect(),
    ];
    let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
    let expect = reference_intersection(&slices);
    let levels = [0u32, 7, 14];
    let idx: Vec<RanGroupIndex> = sets
        .iter()
        .zip(levels)
        .map(|(s, t)| RanGroupIndex::with_level(&ctx, s, t))
        .collect();
    let refs: Vec<&RanGroupIndex> = idx.iter().collect();
    assert_eq!(RanGroupIndex::intersect_k_sorted(&refs), expect);

    let idx: Vec<RanGroupScanIndex> = sets
        .iter()
        .zip(levels)
        .map(|(s, t)| RanGroupScanIndex::with_m_and_level(&ctx, s, 3, t))
        .collect();
    let refs: Vec<&RanGroupScanIndex> = idx.iter().collect();
    assert_eq!(RanGroupScanIndex::intersect_k_sorted(&refs), expect);
}

/// Clustered values (consecutive runs) stress the permutation's mixing.
#[test]
fn clustered_and_periodic_values() {
    for seed in [0u64, 1, 2, 3] {
        let ctx = HashContext::new(seed);
        let cases: Vec<(SortedSet, SortedSet)> = vec![
            // Dense runs.
            ((0..3000u32).collect(), (1500..4500u32).collect()),
            // Strided patterns aligned with powers of two (worst case for a
            // weak multiplicative hash).
            (
                (0..2000u32).map(|x| x << 8).collect(),
                (0..2000u32).map(|x| (x << 8) | 1).collect(),
            ),
            // High-bit-only differences.
            (
                (0..64u32).map(|x| x << 26).collect(),
                (0..64u32).map(|x| x << 26).collect(),
            ),
        ];
        for (a, b) in cases {
            let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
            let sa = RanGroupScanIndex::build(&ctx, &a);
            let sb = RanGroupScanIndex::build(&ctx, &b);
            assert_eq!(sa.intersect_pair_sorted(&sb), expect, "seed {seed}");
        }
    }
}

/// Many sets, some empty, some tiny.
#[test]
fn ragged_k_way() {
    let ctx = HashContext::new(4);
    let sets: Vec<SortedSet> = vec![
        (0..100u32).collect(),
        SortedSet::from_unsorted(vec![50]),
        (0..100u32).collect(),
        SortedSet::new(),
        (40..60u32).collect(),
    ];
    let idx: Vec<RanGroupScanIndex> = sets
        .iter()
        .map(|s| RanGroupScanIndex::build(&ctx, s))
        .collect();
    let refs: Vec<&RanGroupScanIndex> = idx.iter().collect();
    assert_eq!(
        RanGroupScanIndex::intersect_k_sorted(&refs),
        Vec::<u32>::new()
    );
    // Drop the empty set: the singleton 50 must survive.
    let refs: Vec<&RanGroupScanIndex> = idx[..3].iter().collect();
    assert_eq!(RanGroupScanIndex::intersect_k_sorted(&refs), vec![50]);
}
