//! Integration: the search-engine substrate end to end — corpus generation,
//! index build, conjunctive queries under every strategy, bag semantics.

use fast_set_intersection::index::{BagIndex, Corpus, CorpusConfig, SearchEngine, Strategy};
use fast_set_intersection::{reference_intersection, HashContext};

fn engine() -> SearchEngine {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 30_000,
        num_terms: 100,
        seed: 99,
        ..CorpusConfig::default()
    });
    SearchEngine::from_corpus(HashContext::new(77), corpus)
}

#[test]
fn conjunctive_queries_agree_across_strategies() {
    let engine = engine();
    let queries: Vec<Vec<usize>> = vec![
        vec![0, 1],
        vec![0, 50, 99],
        vec![10, 20, 30, 40],
        vec![99, 98],
        vec![7],
    ];
    let reference = engine.executor(Strategy::Merge);
    for strategy in [
        Strategy::SkipList,
        Strategy::Hash,
        Strategy::Bpp,
        Strategy::Lookup,
        Strategy::Svs,
        Strategy::Adaptive,
        Strategy::BaezaYates,
        Strategy::SmallAdaptive,
        Strategy::IntGroup,
        Strategy::RanGroup,
        Strategy::RanGroupScan { m: 2 },
        Strategy::HashBin,
        Strategy::Auto,
    ] {
        let exec = engine.executor(strategy);
        for q in &queries {
            assert_eq!(
                exec.query(q),
                reference.query(q),
                "{} {q:?}",
                strategy.name()
            );
        }
    }
}

#[test]
fn engine_queries_match_raw_posting_intersection() {
    let engine = engine();
    let exec = engine.executor(Strategy::RanGroupScan { m: 4 });
    for terms in [vec![0usize, 3], vec![5, 6, 7], vec![0, 99]] {
        let slices: Vec<&[u32]> = terms
            .iter()
            .map(|&t| engine.posting(t).as_slice())
            .collect();
        assert_eq!(exec.query(&terms), reference_intersection(&slices));
    }
}

#[test]
fn empty_and_unit_queries() {
    let engine = engine();
    let exec = engine.executor(Strategy::Auto);
    assert!(exec.query(&[]).is_empty());
    assert_eq!(exec.query(&[42]), engine.posting(42).as_slice());
}

#[test]
fn zipf_head_terms_have_longer_postings() {
    let engine = engine();
    assert!(engine.posting(0).len() > engine.posting(50).len());
    assert!(engine.posting(0).len() > engine.posting(99).len());
}

#[test]
fn bag_semantics_over_engine_context() {
    let ctx = HashContext::new(5);
    let a = BagIndex::from_items(&ctx, &[1, 1, 2, 3, 3, 3]);
    let b = BagIndex::from_items(&ctx, &[1, 3, 3, 4]);
    assert_eq!(a.intersect_bag(&b), vec![(1, 1), (3, 2)]);
}

#[test]
fn executor_sizes_rank_as_documented() {
    let engine = engine();
    let merge = engine.executor(Strategy::Merge).size_in_bytes();
    let rgs2 = engine
        .executor(Strategy::RanGroupScan { m: 2 })
        .size_in_bytes();
    let rgs4 = engine
        .executor(Strategy::RanGroupScan { m: 4 })
        .size_in_bytes();
    // The space/speed trade-off of Section 4: more hash images, more space.
    assert!(merge < rgs2);
    assert!(rgs2 < rgs4);
}
