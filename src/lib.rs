//! # fast-set-intersection
//!
//! A from-scratch Rust reproduction of **“Fast Set Intersection in Memory”**
//! (Bolin Ding, Arnd Christian König, PVLDB 4(4), 2011): worst-case-efficient
//! in-memory set intersection via small hashed groups represented as machine
//! words.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`core`] — the paper's algorithms: IntGroup (§3.1), RanGroup
//!   (§3.2), RanGroupScan (§3.3), HashBin (§3.4), the multi-resolution
//!   structure (§3.2.1) and the online algorithm selector (§3.4).
//! * [`baselines`] — the nine competitors of §4 (Merge, SkipList, Hash, BPP,
//!   Lookup, SvS, Adaptive, BaezaYates, SmallAdaptive).
//! * [`compress`] — γ/δ posting-list compression and the Lowbits codec
//!   (§4.1, Appendix B).
//! * [`kernels`] — portable word-parallel intersection primitives: chunked
//!   bitmaps ([`kernels::BitmapSet`]), branchless/galloping merges
//!   ([`kernels::GallopingSet`]), and FESIA-style signature prefilters
//!   ([`kernels::SigFilterSet`]), behind a common [`kernels::Kernel`] trait
//!   with runtime selection.
//! * [`index`] — an inverted-index/search substrate with pluggable
//!   intersection strategies, plus the bag-semantics extension.
//! * [`query`] — the boolean expression engine: an `AND`/`OR`/`NOT` query
//!   language ([`query::parse()`]), algebraic rewrites to a canonical form
//!   ([`query::normalize`]), and cost-based expression planning/execution
//!   ([`query::ExprPlanner`]) over the index layer's prepared lists.
//! * [`workloads`] — the evaluation's synthetic and query-log workload
//!   generators, plus Zipf-skewed query streams for the serving layer.
//! * [`serve`] — the concurrent query-serving subsystem: document-range
//!   sharding ([`serve::ShardedEngine`]), batched work-stealing execution
//!   ([`serve::QueryPool`]), a segmented LRU result cache
//!   ([`serve::QueryCache`]), and the assembled [`serve::Server`] behind
//!   the single request-lifetime entry point [`serve::Server::execute`] —
//!   the paper's "intersection is the serving bottleneck" framing taken
//!   to a multi-core serving stack.
//! * [`net`] — the TCP front door over [`serve`]: a length-prefixed
//!   binary protocol ([`net::protocol`]), a bounded request queue with
//!   adaptive micro-batching, per-tenant token-bucket admission control,
//!   and deadline-aware load shedding ([`net::NetServer`] /
//!   [`net::Client`]).
//!
//! ## Quick start
//!
//! ```
//! use fast_set_intersection::{HashContext, PairIntersect, RanGroupScanIndex, SortedSet};
//!
//! let ctx = HashContext::new(42);
//! let a = RanGroupScanIndex::build(&ctx, &SortedSet::from_unsorted(vec![1, 5, 7, 9]));
//! let b = RanGroupScanIndex::build(&ctx, &SortedSet::from_unsorted(vec![2, 5, 9, 11]));
//! assert_eq!(a.intersect_pair_sorted(&b), vec![5, 9]);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured comparison. The
//! benchmark harness lives in the `fsi-bench` crate
//! (`cargo run --release -p fsi-bench --bin paper -- all`).

#![forbid(unsafe_code)]

pub use fsi_baselines as baselines;
pub use fsi_compress as compress;
pub use fsi_core as core;
pub use fsi_index as index;
pub use fsi_kernels as kernels;
pub use fsi_net as net;
pub use fsi_obs as obs;
pub use fsi_query as query;
pub use fsi_serve as serve;
pub use fsi_workloads as workloads;

pub use fsi_core::{
    choose, filtering_stats, intersect_auto, partition_level, reference_intersection, AutoChoice,
    Elem, FilterStats, HashBinIndex, HashContext, IntGroupIndex, KIntersect, MultiResIndex,
    PairIntersect, Permutation, RanGroupIndex, RanGroupScanIndex, SetIndex, SortedSet,
    UniversalHash, SQRT_WORD_BITS, WORD_BITS,
};
