//! Bag (multiset) semantics — the extension the paper notes in Section 3:
//! "Our approach can be extended to bag semantics by additionally storing
//! element frequency."
//!
//! A [`BagIndex`] is any set structure plus a parallel multiplicity array;
//! the bag intersection's multiplicity is the element-wise minimum, so any
//! of the *set* intersection algorithms can drive it unchanged — here
//! RanGroupScan, via the shared [`HashContext`].

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use fsi_core::traits::PairIntersect;
use fsi_core::RanGroupScanIndex;

/// A multiset of `u32` elements.
#[derive(Debug, Clone)]
pub struct BagIndex {
    /// The support (distinct elements), preprocessed for intersection.
    support: RanGroupScanIndex,
    /// Sorted distinct elements, parallel to `counts`.
    elems: Vec<Elem>,
    /// Multiplicity per distinct element.
    counts: Vec<u32>,
}

impl BagIndex {
    /// Builds the bag from arbitrary (unsorted, repeating) items.
    pub fn from_items(ctx: &HashContext, items: &[Elem]) -> Self {
        let mut sorted = items.to_vec();
        sorted.sort_unstable();
        let mut elems = Vec::new();
        let mut counts = Vec::new();
        for &x in &sorted {
            if elems.last() == Some(&x) {
                // audit:allow(hot_path_panic): elems and counts grow in lockstep, so a matching last element implies a last count
                *counts.last_mut().expect("parallel arrays") += 1;
            } else {
                elems.push(x);
                counts.push(1);
            }
        }
        let support =
            RanGroupScanIndex::build(ctx, &SortedSet::from_sorted_unchecked(elems.clone()));
        Self {
            support,
            elems,
            counts,
        }
    }

    /// Number of distinct elements.
    pub fn distinct(&self) -> usize {
        self.elems.len()
    }

    /// Total number of items (with multiplicity).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Multiplicity of `x` (0 if absent).
    pub fn multiplicity(&self, x: Elem) -> u32 {
        match self.elems.binary_search(&x) {
            // audit:allow(hot_path_index): binary_search returned Ok(i) against elems, and counts is its parallel array
            Ok(i) => self.counts[i],
            Err(_) => 0,
        }
    }

    /// Bag intersection: common elements with `min` multiplicities,
    /// ascending by element.
    pub fn intersect_bag(&self, other: &Self) -> Vec<(Elem, u32)> {
        let mut common = Vec::new();
        self.support
            .intersect_pair_into(&other.support, &mut common);
        common.sort_unstable();
        common
            .into_iter()
            .map(|x| (x, self.multiplicity(x).min(other.multiplicity(x))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicities_are_counted() {
        let ctx = HashContext::new(5);
        let bag = BagIndex::from_items(&ctx, &[3, 1, 3, 3, 2, 1]);
        assert_eq!(bag.distinct(), 3);
        assert_eq!(bag.total(), 6);
        assert_eq!(bag.multiplicity(3), 3);
        assert_eq!(bag.multiplicity(1), 2);
        assert_eq!(bag.multiplicity(9), 0);
    }

    #[test]
    fn bag_intersection_takes_min() {
        let ctx = HashContext::new(5);
        let a = BagIndex::from_items(&ctx, &[1, 1, 1, 2, 5, 5, 9]);
        let b = BagIndex::from_items(&ctx, &[1, 1, 5, 5, 5, 7]);
        assert_eq!(a.intersect_bag(&b), vec![(1, 2), (5, 2)]);
        assert_eq!(b.intersect_bag(&a), vec![(1, 2), (5, 2)]);
    }

    #[test]
    fn disjoint_bags() {
        let ctx = HashContext::new(5);
        let a = BagIndex::from_items(&ctx, &[1, 2]);
        let b = BagIndex::from_items(&ctx, &[3, 4]);
        assert!(a.intersect_bag(&b).is_empty());
        let empty = BagIndex::from_items(&ctx, &[]);
        assert!(a.intersect_bag(&empty).is_empty());
    }
}
