//! # fsi-index — in-memory inverted-index substrate
//!
//! The search-engine layer the paper's motivating applications run on:
//!
//! * [`corpus`] — synthetic Zipf corpus (the Wikipedia stand-in);
//! * [`engine`] — [`SearchEngine`] / [`Executor`]: conjunctive queries with a
//!   pluggable intersection strategy;
//! * [`strategy`] — the [`Strategy`] enum unifying all 17 algorithm variants
//!   (paper algorithms, baselines, compressed structures);
//! * [`bag`] — the Section 3 bag-semantics extension;
//! * [`daat`] — group-granular DAAT top-k retrieval (the Section 2
//!   "score-based pruning" combination);
//! * [`planner`] — whole-query k-way planning: a cost model over the entire
//!   term list emits a [`MultiwayPlan`] (kernel + evaluation order), the
//!   robustness pitch of the paper's conclusion generalized beyond §3.4's
//!   two algorithms and beyond pairwise evaluation.

#![forbid(unsafe_code)]

pub mod bag;
pub mod corpus;
pub mod daat;
pub mod engine;
pub mod planner;
pub mod strategy;

pub use bag::BagIndex;
pub use corpus::{Corpus, CorpusConfig};
pub use daat::{top_k, DaatStats, Hit, ScoredIndex};
pub use engine::{Executor, OwnedExecutor, SearchEngine};
pub use planner::{MultiwayPlan, OperandStats, PlanKind, PlannedExecutor, PlannedList, Planner};
pub use strategy::{intersect_into, intersect_sorted, PreparedList, Strategy};
