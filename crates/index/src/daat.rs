//! Document-at-a-time top-k retrieval over small groups — the combination
//! the paper proposes in Section 2 ("Score-based pruning"): *"DAAT-approaches
//! can be combined with our work by using these small groups in place of
//! individual documents."*
//!
//! Each posting list carries per-document scores and, per RanGroupScan
//! group, the maximum score in the group. A conjunctive top-k query walks
//! aligned group tuples exactly like Algorithm 5 and skips a tuple when
//! *either*
//!
//! 1. some hash image's word-AND is zero (the paper's emptiness filter), or
//! 2. the sum of the groups' max-scores cannot beat the current k-th best
//!    score (the WAND-style upper-bound test of Broder et al. \[8\]),
//!
//! so both pruning signals operate at group granularity, as the paper
//! envisions.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use fsi_core::{RanGroupScanIndex, SetIndex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A posting list with per-document scores, preprocessed for group-level
/// filtering and score-bound skipping.
#[derive(Debug, Clone)]
pub struct ScoredIndex {
    rgs: RanGroupScanIndex,
    /// Score per element, parallel to the group-major element array.
    scores: Vec<f32>,
    /// Maximum score per group (the DAAT upper bound).
    group_max: Vec<f32>,
}

impl ScoredIndex {
    /// Preprocesses `set` with scores assigned by `score_of` (e.g. a
    /// BM25-like weight; any non-negative function of the document id).
    pub fn build(
        ctx: &HashContext,
        set: &SortedSet,
        m: usize,
        mut score_of: impl FnMut(Elem) -> f32,
    ) -> Self {
        let rgs = RanGroupScanIndex::with_m(ctx, set, m);
        let scores: Vec<f32> = rgs.elems().iter().map(|&x| score_of(x)).collect();
        let group_max = (0..rgs.num_groups())
            .map(|z| {
                let (lo, hi) = rgs.group_bounds(z);
                scores[lo..hi].iter().copied().fold(0.0f32, f32::max)
            })
            .collect();
        Self {
            rgs,
            scores,
            group_max,
        }
    }

    /// Number of documents.
    pub fn n(&self) -> usize {
        self.rgs.n()
    }

    /// The score of the element at group-major position `pos`.
    fn score_at(&self, pos: usize) -> f32 {
        // audit:allow(hot_path_index): pos comes from this struct's own cursor arithmetic over scores
        self.scores[pos]
    }

    fn group_range(&self, z: usize) -> (usize, usize) {
        self.rgs.group_bounds(z)
    }
}

/// A scored hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Document id.
    pub doc: Elem,
    /// Summed score across the query's lists.
    pub score: f32,
}

/// Min-heap entry so the heap root is the current k-th best.
#[derive(Debug, PartialEq)]
struct HeapHit(Hit);

impl Eq for HeapHit {}

impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score: BinaryHeap is a max-heap, we want the minimum on
        // top. Tie-break on doc id for determinism.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            // audit:allow(hot_path_panic): scores are sums of finite per-list contributions, never NaN
            .expect("scores are finite")
            .then_with(|| other.0.doc.cmp(&self.0.doc))
    }
}

impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Statistics from a top-k run (how much each pruning signal saved).
#[derive(Debug, Clone, Copy, Default)]
pub struct DaatStats {
    /// Aligned group tuples visited.
    pub tuples: u64,
    /// Tuples skipped by the hash-image word filter.
    pub skipped_by_words: u64,
    /// Tuples skipped by the score upper bound.
    pub skipped_by_score: u64,
}

/// Conjunctive top-k: the `k` highest-scoring documents present in *all*
/// lists, descending by score (ties broken by ascending doc id).
pub fn top_k(indexes: &[&ScoredIndex], k: usize) -> (Vec<Hit>, DaatStats) {
    let mut stats = DaatStats::default();
    let mut heap: BinaryHeap<HeapHit> = BinaryHeap::with_capacity(k.saturating_add(1).min(4096));
    if k == 0 || indexes.is_empty() {
        return (Vec::new(), stats);
    }
    let kk = indexes.len();
    let mut order: Vec<&ScoredIndex> = indexes.to_vec();
    order.sort_by_key(|ix| ix.rgs.level());
    let levels: Vec<u32> = order.iter().map(|ix| ix.rgs.level()).collect();
    // audit:allow(hot_path_panic): order is non-empty: callers enter with k >= 2 lists
    let tk = *levels.last().expect("non-empty");
    // audit:allow(hot_path_panic): order is non-empty: callers enter with k >= 2 lists
    let m = order.iter().map(|ix| ix.rgs.m()).min().expect("non-empty");

    let mut cursors = vec![0usize; kk];
    for zk in 0u64..(1u64 << tk) {
        stats.tuples += 1;
        // Word filter (Algorithm 5 line 3).
        let mut pass = true;
        'filter: for j in 0..m {
            let mut and = u64::MAX;
            for (ix, &ti) in order.iter().zip(&levels) {
                and &= ix.rgs.group_words((zk >> (tk - ti)) as usize)[j];
                if and == 0 {
                    pass = false;
                    break 'filter;
                }
            }
        }
        if !pass {
            stats.skipped_by_words += 1;
            continue;
        }
        // Score upper bound: Σ group maxima must beat the k-th best.
        let ub: f32 = order
            .iter()
            .zip(&levels)
            .map(|(ix, &ti)| ix.group_max[(zk >> (tk - ti)) as usize])
            .sum();
        if heap.len() == k {
            // audit:allow(hot_path_panic): guarded by the heap.len() == k check on the line above
            let threshold = heap.peek().expect("full heap").0.score;
            if ub <= threshold {
                stats.skipped_by_score += 1;
                continue;
            }
        }
        // Merge the groups, accumulating scores.
        let ranges: Vec<(usize, usize)> = order
            .iter()
            .zip(&levels)
            .map(|(ix, &ti)| ix.group_range((zk >> (tk - ti)) as usize))
            .collect();
        for (c, r) in cursors.iter_mut().zip(&ranges) {
            *c = r.0;
        }
        'candidates: loop {
            if cursors[0] >= ranges[0].1 {
                break;
            }
            let cand = order[0].rgs.elems()[cursors[0]];
            let mut score = order[0].score_at(cursors[0]);
            for i in 1..kk {
                let elems = order[i].rgs.elems();
                let c = &mut cursors[i];
                while *c < ranges[i].1 && elems[*c] < cand {
                    *c += 1;
                }
                if *c >= ranges[i].1 {
                    break 'candidates;
                }
                if elems[*c] != cand {
                    cursors[0] += 1;
                    continue 'candidates;
                }
                score += order[i].score_at(*c);
            }
            heap.push(HeapHit(Hit { doc: cand, score }));
            if heap.len() > k {
                heap.pop();
            }
            cursors[0] += 1;
        }
    }
    let mut hits: Vec<Hit> = heap.into_iter().map(|h| h.0).collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            // audit:allow(hot_path_panic): scores are finite by construction, never NaN
            .expect("finite")
            .then_with(|| a.doc.cmp(&b.doc))
    });
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic synthetic score.
    fn score(x: Elem) -> f32 {
        ((x.wrapping_mul(2_654_435_761)) >> 20) as f32 / 4096.0
    }

    fn brute_force_top_k(sets: &[&SortedSet], k: usize) -> Vec<Hit> {
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let mut hits: Vec<Hit> = reference_intersection(&slices)
            .into_iter()
            .map(|doc| Hit {
                doc,
                score: score(doc) * sets.len() as f32,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }

    #[test]
    fn top_k_matches_brute_force() {
        let ctx = HashContext::new(909);
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..10 {
            let n1 = rng.gen_range(100..800);
            let n2 = rng.gen_range(100..800);
            let u = 2000u32;
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let sa = ScoredIndex::build(&ctx, &a, 2, score);
            let sb = ScoredIndex::build(&ctx, &b, 2, score);
            for k in [1usize, 5, 20, 10_000] {
                let (hits, _) = top_k(&[&sa, &sb], k);
                let want = brute_force_top_k(&[&a, &b], k);
                assert_eq!(hits.len(), want.len(), "trial {trial} k={k}");
                for (h, w) in hits.iter().zip(&want) {
                    assert_eq!(h.doc, w.doc, "trial {trial} k={k}");
                    assert!((h.score - w.score).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn three_list_top_k() {
        let ctx = HashContext::new(910);
        let sets: Vec<SortedSet> = vec![
            (0..3000u32).filter(|x| x % 2 == 0).collect(),
            (0..3000u32).filter(|x| x % 3 == 0).collect(),
            (0..3000u32).filter(|x| x % 5 == 0).collect(),
        ];
        let idx: Vec<ScoredIndex> = sets
            .iter()
            .map(|s| ScoredIndex::build(&ctx, s, 2, score))
            .collect();
        let refs: Vec<&ScoredIndex> = idx.iter().collect();
        let (hits, stats) = top_k(&refs, 10);
        let set_refs: Vec<&SortedSet> = sets.iter().collect();
        let want = brute_force_top_k(&set_refs, 10);
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            want.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
        // Both pruning signals must actually fire on this workload.
        assert!(stats.skipped_by_words > 0, "{stats:?}");
        assert!(stats.skipped_by_score > 0, "{stats:?}");
    }

    #[test]
    fn k_zero_and_empty_lists() {
        let ctx = HashContext::new(911);
        let a = ScoredIndex::build(&ctx, &(0..100).collect(), 2, score);
        let e = ScoredIndex::build(&ctx, &SortedSet::new(), 2, score);
        assert!(top_k(&[&a], 0).0.is_empty());
        assert!(top_k(&[&a, &e], 5).0.is_empty());
        assert!(top_k(&[], 5).0.is_empty());
    }

    #[test]
    fn score_pruning_saves_work_without_losing_hits() {
        // Compare stats at k = 1 (aggressive threshold) vs k = ∞.
        let ctx = HashContext::new(912);
        let mut rng = StdRng::seed_from_u64(3);
        let a: SortedSet = (0..4000).map(|_| rng.gen_range(0..20_000u32)).collect();
        let b: SortedSet = (0..4000).map(|_| rng.gen_range(0..20_000u32)).collect();
        let sa = ScoredIndex::build(&ctx, &a, 2, score);
        let sb = ScoredIndex::build(&ctx, &b, 2, score);
        let (top1, stats1) = top_k(&[&sa, &sb], 1);
        let (all, stats_all) = top_k(&[&sa, &sb], usize::MAX >> 1);
        assert!(stats1.skipped_by_score >= stats_all.skipped_by_score);
        if let Some(best) = all.first() {
            assert_eq!(top1[0], *best);
        }
    }
}
