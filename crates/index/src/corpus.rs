//! Synthetic document corpus — the stand-in for the paper's 8M-page
//! Wikipedia collection.
//!
//! What the intersection algorithms observe of a corpus is only the posting
//! lists: their length distribution (Zipfian, as in natural language) and
//! their contents (document IDs; effectively uniform once IDs are assigned
//! randomly, which is also what Lookup's authors \[21\] prescribe). The
//! generator therefore synthesizes the inverted index directly: term ranks
//! get Zipf-distributed document frequencies, and each posting list is a
//! uniform distinct sample of the document space.

use fsi_core::elem::SortedSet;
use fsi_workloads::synthetic::sample_distinct;
use fsi_workloads::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Corpus shape parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents (the paper: 8M Wikipedia pages).
    pub num_docs: u32,
    /// Vocabulary size (number of posting lists to materialize).
    pub num_terms: usize,
    /// Zipf exponent for document frequencies (≈1 for natural language).
    pub zipf_exponent: f64,
    /// Document frequency of the most frequent term, as a fraction of
    /// `num_docs` (stop-word-like terms ≈ 0.3).
    pub max_df_fraction: f64,
    /// Minimum document frequency.
    pub min_df: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_docs: 1 << 20,
            num_terms: 1 << 12,
            zipf_exponent: 1.0,
            max_df_fraction: 0.3,
            min_df: 4,
            seed: 0xc0_4b_05,
        }
    }
}

/// A synthesized corpus: per-term posting lists over `[0, num_docs)`.
#[derive(Debug, Clone)]
pub struct Corpus {
    config: CorpusConfig,
    postings: Vec<SortedSet>,
}

impl Corpus {
    /// Generates the corpus (deterministic in the seed).
    pub fn generate(config: CorpusConfig) -> Self {
        assert!(config.num_docs > 0 && config.num_terms > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = Zipf::new(config.num_terms, config.zipf_exponent);
        let top_df = (config.num_docs as f64 * config.max_df_fraction).max(1.0);
        let postings = (0..config.num_terms)
            .map(|rank| {
                // df(rank) ∝ pmf(rank), scaled so rank 0 hits top_df.
                let df = (top_df * zipf.pmf(rank) / zipf.pmf(0)).round() as u32;
                let df = df.clamp(config.min_df, config.num_docs);
                SortedSet::from_sorted_unchecked(sample_distinct(
                    &mut rng,
                    df as usize,
                    config.num_docs as u64,
                ))
            })
            .collect();
        Self { config, postings }
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Number of documents.
    pub fn num_docs(&self) -> u32 {
        self.config.num_docs
    }

    /// The posting list of term `rank` (0 = most frequent).
    pub fn posting(&self, rank: usize) -> &SortedSet {
        // audit:allow(hot_path_index): public accessor with a documented rank contract; a bounds panic is the misuse signal
        &self.postings[rank]
    }

    /// All posting lists, by rank.
    pub fn postings(&self) -> &[SortedSet] {
        &self.postings
    }

    /// Consumes the corpus, returning the posting lists.
    pub fn into_postings(self) -> Vec<SortedSet> {
        self.postings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            num_docs: 10_000,
            num_terms: 200,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn frequencies_decay_with_rank() {
        let c = small();
        assert!(c.posting(0).len() >= c.posting(10).len());
        assert!(c.posting(10).len() >= c.posting(199).len());
        // Head term hits the configured fraction.
        let head = c.posting(0).len() as f64 / c.num_docs() as f64;
        assert!((head - 0.3).abs() < 0.02, "head df fraction {head}");
    }

    #[test]
    fn postings_are_valid_sets() {
        let c = small();
        for rank in 0..c.num_terms() {
            let p = c.posting(rank);
            assert!(!p.is_empty());
            assert!(p.as_slice().windows(2).all(|w| w[0] < w[1]));
            assert!(p.max().unwrap() < c.num_docs());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small();
        let b = small();
        for (pa, pb) in a.postings().iter().zip(b.postings()) {
            assert_eq!(pa.as_slice(), pb.as_slice());
        }
    }
}
