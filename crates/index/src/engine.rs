//! A small in-memory conjunctive query engine — the substrate the paper's
//! motivating applications (enterprise/web search, conjunctive predicates)
//! run on. A [`SearchEngine`] owns the posting lists; an [`Executor`]
//! preprocesses every list under one [`Strategy`] and answers multi-term
//! queries with the corresponding intersection algorithm.

use crate::corpus::Corpus;
use crate::planner::{PlannedExecutor, Planner};
use crate::strategy::{intersect_into, PreparedList, Strategy};
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use std::ops::Range;

/// An in-memory inverted index with pluggable intersection strategies.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    ctx: HashContext,
    postings: Vec<SortedSet>,
}

impl SearchEngine {
    /// Builds the engine over explicit posting lists.
    pub fn from_postings(ctx: HashContext, postings: Vec<SortedSet>) -> Self {
        Self { ctx, postings }
    }

    /// Builds the engine over a synthetic corpus.
    pub fn from_corpus(ctx: HashContext, corpus: Corpus) -> Self {
        Self::from_postings(ctx, corpus.into_postings())
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// The raw posting list of a term.
    pub fn posting(&self, term: usize) -> &SortedSet {
        // audit:allow(hot_path_index): public accessor with a documented term-id contract; a bounds panic is the misuse signal
        &self.postings[term]
    }

    /// The shared hash context.
    pub fn ctx(&self) -> &HashContext {
        &self.ctx
    }

    /// All posting lists, term-indexed.
    pub fn postings(&self) -> &[SortedSet] {
        &self.postings
    }

    /// The largest document ID present in any posting list, if any.
    pub fn max_doc(&self) -> Option<Elem> {
        self.postings.iter().filter_map(|p| p.max()).max()
    }

    /// A sub-engine whose posting lists are clipped to the document-ID
    /// range `docs` (what a document-partitioned shard holds). The hash
    /// context is shared, so prepared lists from different sub-engines stay
    /// mutually consistent.
    ///
    /// The range is `u64` so the half-open end can express "past
    /// `u32::MAX`" — document ID `u32::MAX` is a legal [`Elem`], and an
    /// exclusive `u32` bound could never include it.
    pub fn restricted(&self, docs: Range<u64>) -> SearchEngine {
        let postings = self
            .postings
            .iter()
            .map(|p| {
                let s = p.as_slice();
                let lo = s.partition_point(|&d| (d as u64) < docs.start);
                let hi = s.partition_point(|&d| (d as u64) < docs.end);
                SortedSet::from_sorted_unchecked(s[lo..hi].to_vec())
            })
            .collect();
        SearchEngine {
            ctx: self.ctx.clone(),
            postings,
        }
    }

    /// Preprocesses **all** terms under `strategy` and returns an executor.
    pub fn executor(&self, strategy: Strategy) -> Executor<'_> {
        let prepared = self
            .postings
            .iter()
            .map(|p| strategy.prepare(&self.ctx, p))
            .collect();
        Executor {
            engine: self,
            strategy,
            prepared,
        }
    }

    /// Preprocesses **all** terms for cost-model planner dispatch — the
    /// k-way sibling of [`SearchEngine::executor`]: instead of pinning one
    /// strategy, every query is planned whole ([`crate::MultiwayPlan`])
    /// over all its terms at once.
    pub fn planned_executor(&self, planner: Planner) -> PlannedExecutor {
        PlannedExecutor::build(self, planner)
    }

    /// Like [`SearchEngine::executor`], but consumes the engine, keeping
    /// only the prepared structures — the self-contained (`'static`) form
    /// a serving shard stores. The raw posting lists are dropped:
    /// [`PreparedList`] owns everything queries need, so retaining them
    /// would roughly double resident memory per shard.
    pub fn into_executor(self, strategy: Strategy) -> OwnedExecutor {
        let prepared = self
            .postings
            .iter()
            .map(|p| strategy.prepare(&self.ctx, p))
            .collect();
        OwnedExecutor { strategy, prepared }
    }
}

/// A fully preprocessed index under one strategy.
#[derive(Debug)]
pub struct Executor<'a> {
    engine: &'a SearchEngine,
    strategy: Strategy,
    prepared: Vec<PreparedList>,
}

impl Executor<'_> {
    /// The strategy this executor runs.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The engine this executor was built from.
    pub fn engine(&self) -> &SearchEngine {
        self.engine
    }

    /// The prepared list of a term (for harnesses that time raw calls).
    pub fn prepared(&self, term: usize) -> &PreparedList {
        // audit:allow(hot_path_index): public accessor with a documented term-id contract; a bounds panic is the misuse signal
        &self.prepared[term]
    }

    /// Total heap footprint of the preprocessed index.
    pub fn size_in_bytes(&self) -> usize {
        self.prepared.iter().map(|p| p.size_in_bytes()).sum()
    }

    /// Answers the conjunctive query `terms`, ascending document order.
    ///
    /// One term returns its full posting list; zero terms return nothing.
    pub fn query(&self, terms: &[usize]) -> Vec<Elem> {
        let mut out = self.query_unsorted(terms);
        out.sort_unstable();
        out
    }

    /// Answers the query in the algorithm's natural output order (what the
    /// benchmarks time; see `fsi_core::traits` on output order).
    pub fn query_unsorted(&self, terms: &[usize]) -> Vec<Elem> {
        let lists: Vec<&PreparedList> = terms.iter().map(|&t| &self.prepared[t]).collect();
        let mut out = Vec::new();
        intersect_into(&lists, &mut out);
        out
    }
}

/// A fully preprocessed, self-contained index — the `'static` sibling of
/// [`Executor`], storable inside long-lived serving structures (each shard
/// of a sharded serving engine holds one). Holds only the prepared lists,
/// not the source posting lists.
#[derive(Debug, Clone)]
pub struct OwnedExecutor {
    strategy: Strategy,
    prepared: Vec<PreparedList>,
}

impl OwnedExecutor {
    /// The strategy this executor runs.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.prepared.len()
    }

    /// The prepared list of a term.
    pub fn prepared(&self, term: usize) -> &PreparedList {
        // audit:allow(hot_path_index): public accessor with a documented term-id contract; a bounds panic is the misuse signal
        &self.prepared[term]
    }

    /// Total heap footprint of the preprocessed index.
    pub fn size_in_bytes(&self) -> usize {
        self.prepared.iter().map(|p| p.size_in_bytes()).sum()
    }

    /// Answers the conjunctive query `terms`, ascending document order.
    pub fn query(&self, terms: &[usize]) -> Vec<Elem> {
        let mut out = Vec::new();
        self.query_into(terms, &mut out);
        out
    }

    /// Appends the (ascending) answer to `out` without allocating — the
    /// hot-path form serving shards use to share one output buffer.
    pub fn query_into(&self, terms: &[usize], out: &mut Vec<Elem>) {
        let lists: Vec<&PreparedList> = terms.iter().map(|&t| &self.prepared[t]).collect();
        let start = out.len();
        intersect_into(&lists, out);
        out[start..].sort_unstable();
    }

    /// Answers the query in the algorithm's natural output order.
    pub fn query_unsorted(&self, terms: &[usize]) -> Vec<Elem> {
        let lists: Vec<&PreparedList> = terms.iter().map(|&t| &self.prepared[t]).collect();
        let mut out = Vec::new();
        intersect_into(&lists, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use fsi_core::elem::reference_intersection;

    fn engine() -> SearchEngine {
        let corpus = Corpus::generate(CorpusConfig {
            num_docs: 20_000,
            num_terms: 64,
            ..CorpusConfig::default()
        });
        SearchEngine::from_corpus(HashContext::new(11), corpus)
    }

    #[test]
    fn all_executors_agree() {
        let engine = engine();
        let queries: Vec<Vec<usize>> =
            vec![vec![0, 1], vec![3, 10, 40], vec![5], vec![0, 63, 31, 7]];
        let reference = engine.executor(Strategy::Merge);
        for strat in [
            Strategy::Hash,
            Strategy::Lookup,
            Strategy::RanGroup,
            Strategy::RanGroupScan { m: 2 },
            Strategy::HashBin,
            Strategy::Auto,
            Strategy::IntGroup,
        ] {
            let exec = engine.executor(strat);
            for q in &queries {
                assert_eq!(
                    exec.query(q),
                    reference.query(q),
                    "{} on {q:?}",
                    strat.name()
                );
            }
        }
    }

    #[test]
    fn query_matches_reference_intersection() {
        let engine = engine();
        let exec = engine.executor(Strategy::RanGroupScan { m: 4 });
        let terms = [2usize, 8, 20];
        let slices: Vec<&[u32]> = terms
            .iter()
            .map(|&t| engine.posting(t).as_slice())
            .collect();
        assert_eq!(exec.query(&terms), reference_intersection(&slices));
    }

    #[test]
    fn single_and_empty_queries() {
        let engine = engine();
        let exec = engine.executor(Strategy::Merge);
        assert_eq!(exec.query(&[7]), engine.posting(7).as_slice());
        assert!(exec.query(&[]).is_empty());
    }

    #[test]
    fn restricted_engine_partitions_postings() {
        let engine = engine();
        let max = engine.max_doc().expect("non-empty corpus") as u64 + 1;
        let mid = max / 2;
        let low = engine.restricted(0..mid);
        let high = engine.restricted(mid..max);
        for t in 0..engine.num_terms() {
            assert!(low.posting(t).max().is_none_or(|d| (d as u64) < mid));
            assert!(high.posting(t).min().is_none_or(|d| (d as u64) >= mid));
            let mut rejoined: Vec<Elem> = low.posting(t).as_slice().to_vec();
            rejoined.extend_from_slice(high.posting(t).as_slice());
            assert_eq!(rejoined, engine.posting(t).as_slice());
        }
    }

    #[test]
    fn restricted_covers_the_full_u32_universe() {
        let ctx = HashContext::new(1);
        let engine = SearchEngine::from_postings(
            ctx,
            vec![
                SortedSet::from_unsorted(vec![0, 5, u32::MAX - 1, u32::MAX]),
                SortedSet::from_unsorted(vec![5, u32::MAX]),
            ],
        );
        let end = engine.max_doc().unwrap() as u64 + 1; // 2^32: > any u32
        let whole = engine.restricted(0..end);
        assert_eq!(whole.posting(0).as_slice(), engine.posting(0).as_slice());
        assert_eq!(whole.posting(1).as_slice(), engine.posting(1).as_slice());
        let top = engine.restricted((u32::MAX as u64)..end);
        assert_eq!(top.posting(0).as_slice(), &[u32::MAX]);
    }

    #[test]
    fn restricted_halves_answer_like_the_whole() {
        let engine = engine();
        let max = engine.max_doc().unwrap() as u64 + 1;
        let mid = max / 2;
        let whole = engine.executor(Strategy::RanGroupScan { m: 2 });
        let low = engine
            .restricted(0..mid)
            .into_executor(Strategy::RanGroupScan { m: 2 });
        let high = engine
            .restricted(mid..max)
            .into_executor(Strategy::RanGroupScan { m: 2 });
        for q in [vec![0usize, 1], vec![3, 10, 40], vec![5]] {
            let mut merged = low.query(&q);
            merged.extend(high.query(&q));
            assert_eq!(merged, whole.query(&q), "{q:?}");
        }
    }

    #[test]
    fn owned_executor_matches_borrowed() {
        let engine = engine();
        let borrowed = engine.executor(Strategy::Lookup);
        let owned = engine.clone().into_executor(Strategy::Lookup);
        assert_eq!(owned.strategy(), Strategy::Lookup);
        assert_eq!(owned.size_in_bytes(), borrowed.size_in_bytes());
        for q in [vec![0usize, 1], vec![3, 10, 40], vec![]] {
            assert_eq!(owned.query(&q), borrowed.query(&q));
        }
    }

    #[test]
    fn executor_size_accounting() {
        let engine = engine();
        let merge = engine.executor(Strategy::Merge);
        let rgs = engine.executor(Strategy::RanGroupScan { m: 4 });
        // RanGroupScan trades space for speed: strictly larger than Merge.
        assert!(rgs.size_in_bytes() > merge.size_in_bytes());
    }
}
