//! A small in-memory conjunctive query engine — the substrate the paper's
//! motivating applications (enterprise/web search, conjunctive predicates)
//! run on. A [`SearchEngine`] owns the posting lists; an [`Executor`]
//! preprocesses every list under one [`Strategy`] and answers multi-term
//! queries with the corresponding intersection algorithm.

use crate::corpus::Corpus;
use crate::strategy::{intersect_into, PreparedList, Strategy};
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;

/// An in-memory inverted index with pluggable intersection strategies.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    ctx: HashContext,
    postings: Vec<SortedSet>,
}

impl SearchEngine {
    /// Builds the engine over explicit posting lists.
    pub fn from_postings(ctx: HashContext, postings: Vec<SortedSet>) -> Self {
        Self { ctx, postings }
    }

    /// Builds the engine over a synthetic corpus.
    pub fn from_corpus(ctx: HashContext, corpus: Corpus) -> Self {
        Self::from_postings(ctx, corpus.into_postings())
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// The raw posting list of a term.
    pub fn posting(&self, term: usize) -> &SortedSet {
        &self.postings[term]
    }

    /// The shared hash context.
    pub fn ctx(&self) -> &HashContext {
        &self.ctx
    }

    /// Preprocesses **all** terms under `strategy` and returns an executor.
    pub fn executor(&self, strategy: Strategy) -> Executor<'_> {
        let prepared = self
            .postings
            .iter()
            .map(|p| strategy.prepare(&self.ctx, p))
            .collect();
        Executor {
            engine: self,
            strategy,
            prepared,
        }
    }
}

/// A fully preprocessed index under one strategy.
#[derive(Debug)]
pub struct Executor<'a> {
    engine: &'a SearchEngine,
    strategy: Strategy,
    prepared: Vec<PreparedList>,
}

impl Executor<'_> {
    /// The strategy this executor runs.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The engine this executor was built from.
    pub fn engine(&self) -> &SearchEngine {
        self.engine
    }

    /// The prepared list of a term (for harnesses that time raw calls).
    pub fn prepared(&self, term: usize) -> &PreparedList {
        &self.prepared[term]
    }

    /// Total heap footprint of the preprocessed index.
    pub fn size_in_bytes(&self) -> usize {
        self.prepared.iter().map(|p| p.size_in_bytes()).sum()
    }

    /// Answers the conjunctive query `terms`, ascending document order.
    ///
    /// One term returns its full posting list; zero terms return nothing.
    pub fn query(&self, terms: &[usize]) -> Vec<Elem> {
        let mut out = self.query_unsorted(terms);
        out.sort_unstable();
        out
    }

    /// Answers the query in the algorithm's natural output order (what the
    /// benchmarks time; see `fsi_core::traits` on output order).
    pub fn query_unsorted(&self, terms: &[usize]) -> Vec<Elem> {
        let lists: Vec<&PreparedList> = terms.iter().map(|&t| &self.prepared[t]).collect();
        let mut out = Vec::new();
        intersect_into(&lists, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};
    use fsi_core::elem::reference_intersection;

    fn engine() -> SearchEngine {
        let corpus = Corpus::generate(CorpusConfig {
            num_docs: 20_000,
            num_terms: 64,
            ..CorpusConfig::default()
        });
        SearchEngine::from_corpus(HashContext::new(11), corpus)
    }

    #[test]
    fn all_executors_agree() {
        let engine = engine();
        let queries: Vec<Vec<usize>> = vec![vec![0, 1], vec![3, 10, 40], vec![5], vec![0, 63, 31, 7]];
        let reference = engine.executor(Strategy::Merge);
        for strat in [
            Strategy::Hash,
            Strategy::Lookup,
            Strategy::RanGroup,
            Strategy::RanGroupScan { m: 2 },
            Strategy::HashBin,
            Strategy::Auto,
            Strategy::IntGroup,
        ] {
            let exec = engine.executor(strat);
            for q in &queries {
                assert_eq!(
                    exec.query(q),
                    reference.query(q),
                    "{} on {q:?}",
                    strat.name()
                );
            }
        }
    }

    #[test]
    fn query_matches_reference_intersection() {
        let engine = engine();
        let exec = engine.executor(Strategy::RanGroupScan { m: 4 });
        let terms = [2usize, 8, 20];
        let slices: Vec<&[u32]> = terms.iter().map(|&t| engine.posting(t).as_slice()).collect();
        assert_eq!(exec.query(&terms), reference_intersection(&slices));
    }

    #[test]
    fn single_and_empty_queries() {
        let engine = engine();
        let exec = engine.executor(Strategy::Merge);
        assert_eq!(exec.query(&[7]), engine.posting(7).as_slice());
        assert!(exec.query(&[]).is_empty());
    }

    #[test]
    fn executor_size_accounting() {
        let engine = engine();
        let merge = engine.executor(Strategy::Merge);
        let rgs = engine.executor(Strategy::RanGroupScan { m: 4 });
        // RanGroupScan trades space for speed: strictly larger than Merge.
        assert!(rgs.size_in_bytes() > merge.size_in_bytes());
    }
}
