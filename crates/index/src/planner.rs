//! Whole-query physical planning — the paper's closing pitch
//! operationalized over **k sets at once**: Section 3.4 proposes choosing
//! the algorithm "online, based on n₁/n₂", and the paper's own algorithms
//! (IntGroup, RanGroup, the adaptive probes) are defined over intersecting
//! *k* lists, with the smallest driving probes into all the others.
//!
//! The [`Planner`] cost-models the **entire term list** in one shot and
//! emits a [`MultiwayPlan`]: a kernel choice ([`PlanKind`]) plus an
//! evaluation order (operands ascending by size — the smallest list always
//! drives). Nothing is ever folded pairwise and no intermediate result is
//! materialized. The candidate kernels and their cost estimates, in the
//! units of [`Planner`]'s tunable constants:
//!
//! | kind | estimated cost | regime it owns |
//! |------|----------------|----------------|
//! | [`PlanKind::BitmapAnd`] | `bitmap_word_unit · c_min · 1024 · (k−1)` | every operand dense (all carry chunk bitmaps) |
//! | [`PlanKind::HashProbe`] | `hash_unit · n_min · (k−1)` | extreme skew: `O(n_min)` cache-missing probes |
//! | [`PlanKind::GallopProbe`] | `gallop_unit · n_min · Σᵢ log₂(nᵢ/n_min + 2)` | moderate skew (Hwang–Lin across all k) |
//! | [`PlanKind::RanGroupScan`] | `rgs_unit · Σ nᵢ` | balanced sparse — the paper's home turf |
//! | [`PlanKind::HeapMerge`] | `heap_unit · Σ nᵢ · log₂ k` | structure-free fallback (tunables can force it) |
//! | [`PlanKind::CompressedGallop`] | `gallop_unit · n_min · Σᵢ log₂(nᵢ/n_min + 2) + decode_unit · E[decoded]` | memory-bound: probe the compressed blocks directly |
//!
//! The minimum-cost candidate wins; `c_min` is the smallest per-operand
//! chunk count, so the bitmap estimate prices exactly the word sweep
//! [`BitmapSet::intersect_k_into`] executes. A [`PlannedList`] keeps every
//! representation a plan can bind: the flat sorted list (gallop probes,
//! heap merge), a hash table (skew probes), the RanGroupScan structure,
//! skip-augmented block postings (compressed-domain probes), and — for
//! lists dense enough to ever win it — a chunked bitmap.
//!
//! On top of the compute estimates, every candidate is charged a
//! **bytes-resident term** `bytes_unit · resident_bytes(candidate)` — the
//! cache/memory footprint the chosen representation drags through the
//! query. The default `bytes_unit` of 0 reproduces the pure-compute model
//! (and the pinned crossovers); raising it expresses memory pressure, and
//! the planner starts trading decode work ([`Planner::decode_unit`]) for
//! the ~4–10× smaller compressed operands — see `docs/compress.md`.
//!
//! The default constants reflect *this repository's measured* crossovers
//! (see EXPERIMENTS.md, `BENCH_kernels.json` and `BENCH_multiway.json`):
//! hash probing overtakes galloping near ratio 64, galloping overtakes
//! RanGroupScan near ratio 8, and the bitmap sweep wins whenever it is
//! admissible at all. They are tunables because the right answers are
//! hardware-bound.

use crate::engine::SearchEngine;
use fsi_baselines::HashSetIndex;
use fsi_compress::{BlockCodec, BlockCursor, BlockPostings, BLOCK_LEN};
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use fsi_core::traits::{KIntersect, SetIndex};
use fsi_core::RanGroupScanIndex;
use fsi_kernels::{
    compressed_probe_into, gallop_probe_ordered_into, heap_merge_into, BitmapSet, GallopingSet,
    BITMAP_MIN_DENSITY, WORDS_PER_CHUNK,
};

/// A posting list prepared for every representation a plan can bind.
#[derive(Debug, Clone)]
pub struct PlannedList {
    hash: HashSetIndex,
    rgs: RanGroupScanIndex,
    /// Only built for lists dense enough (own `n / (max+1)` at or above
    /// [`BITMAP_MIN_DENSITY`]) that [`PlanKind::BitmapAnd`] can ever fire
    /// on a query containing them — a chunk bitmap costs a fixed 8 KiB per
    /// touched 2¹⁶-value chunk, which is pure dead weight on sparse lists.
    bitmap: Option<BitmapSet>,
    flat: GallopingSet,
    /// Skip-augmented block postings (Packed frame-of-reference codec) —
    /// what [`PlanKind::CompressedGallop`] probes without full decode.
    /// Always built today (`Some`); the `Option` is the plan-admissibility
    /// contract, mirroring `bitmap`.
    compressed: Option<BlockPostings>,
}

/// The build-floor rule shared by [`PlannedList::build`] and
/// [`OperandStats::of_set`]: a list carries a chunk bitmap iff it is at
/// least [`BITMAP_MIN_DENSITY`] dense in its own value range.
fn dense_enough(set: &SortedSet) -> bool {
    set.max()
        .is_some_and(|m| set.len() as f64 >= BITMAP_MIN_DENSITY * (m as f64 + 1.0))
}

impl PlannedList {
    /// Preprocesses `set` for every structure the planner can dispatch to.
    pub fn build(ctx: &HashContext, set: &SortedSet) -> Self {
        // If this list is sparser than BITMAP_MIN_DENSITY in its own value
        // range, then for any query containing it the BitmapAnd candidate
        // is inadmissible (it requires every operand's bitmap), so the
        // bitmap would never be consulted — skip it entirely.
        let dense = dense_enough(set);
        Self {
            hash: HashSetIndex::build(set),
            rgs: RanGroupScanIndex::with_m(ctx, set, 2),
            bitmap: dense.then(|| BitmapSet::build(set)),
            flat: GallopingSet::build(set),
            compressed: Some(BlockPostings::from_slice(
                BlockCodec::Packed,
                set.as_slice(),
            )),
        }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.rgs.n()
    }

    /// The flat sorted list — what boolean-expression evaluation
    /// (`fsi-query`) feeds to the union/difference slice kernels.
    pub fn flat(&self) -> &[Elem] {
        self.flat.as_slice()
    }

    /// The chunked bitmap, when this list is dense enough to carry one —
    /// what the expression planner's bitmap-`OR` candidate binds.
    pub fn bitmap(&self) -> Option<&BitmapSet> {
        self.bitmap.as_ref()
    }

    /// The skip-augmented block postings, when built — what
    /// [`PlanKind::CompressedGallop`] walks in the compressed domain.
    pub fn compressed(&self) -> Option<&BlockPostings> {
        self.compressed.as_ref()
    }

    /// The cost-model inputs of this list: its size, and its chunk count
    /// when it carries a bitmap.
    pub fn stats(&self) -> OperandStats {
        OperandStats {
            n: self.n(),
            chunks: self.bitmap.as_ref().map(|b| b.num_chunks()),
            compressed_bytes: self.compressed.as_ref().map(|c| c.size_in_bytes()),
        }
    }

    /// Total footprint of all prepared structures.
    pub fn size_in_bytes(&self) -> usize {
        self.hash.size_in_bytes()
            + self.rgs.size_in_bytes()
            + self.bitmap.as_ref().map_or(0, |b| b.size_in_bytes())
            + self.flat.size_in_bytes()
            + self.compressed.as_ref().map_or(0, |c| c.size_in_bytes())
    }
}

/// What the cost model needs to know about one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandStats {
    /// Number of elements.
    pub n: usize,
    /// Number of 2¹⁶-value chunks the list touches, if a chunk bitmap is
    /// prepared for it (`None` for lists too sparse to carry one).
    pub chunks: Option<usize>,
    /// Exact byte footprint of the list's skip-augmented block postings,
    /// if prepared (`None` vetoes [`PlanKind::CompressedGallop`], mirroring
    /// how a missing bitmap vetoes [`PlanKind::BitmapAnd`]).
    pub compressed_bytes: Option<usize>,
}

impl OperandStats {
    /// Stats of a raw sorted set, exactly as [`PlannedList::build`] would
    /// produce them: the chunk count is `Some` iff the list is dense enough
    /// in its own value range to carry a bitmap, and the compressed
    /// footprint is [`BlockPostings::measure`]'s exact size — byte-identical
    /// to building the structure, without building it.
    pub fn of_set(set: &SortedSet) -> Self {
        Self {
            n: set.len(),
            chunks: dense_enough(set).then(|| BitmapSet::count_chunks(set.as_slice())),
            compressed_bytes: Some(BlockPostings::measure(BlockCodec::Packed, set.as_slice())),
        }
    }
}

/// Which k-way kernel a [`MultiwayPlan`] runs (exposed for tests and
/// telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// An empty operand (or no operands): the result is empty, run nothing.
    Empty,
    /// One operand: copy its list through.
    Single,
    /// Balanced sparse sizes: Algorithm 5 group filtering (the paper).
    RanGroupScan,
    /// Extreme skew: drive the smallest list through the others' hash
    /// tables.
    HashProbe,
    /// Dense operands: k-way chunked-bitmap `AND`, no intermediates.
    BitmapAnd,
    /// Moderate skew: gallop the smallest list through all the others at
    /// once.
    GallopProbe,
    /// Heap-based k-way merge (structure-free fallback).
    HeapMerge,
    /// Compressed-domain galloping: the smallest list's block cursor drives
    /// seeks through the others' skip tables, decoding at most the blocks
    /// a candidate actually lands in. Wins under memory pressure
    /// ([`Planner::bytes_unit`] > 0), where operand footprint outprices the
    /// decode work.
    CompressedGallop,
}

impl PlanKind {
    /// The label telemetry and EXPLAIN output report.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::Empty => "Empty",
            PlanKind::Single => "Single",
            PlanKind::RanGroupScan => "RanGroupScan",
            PlanKind::HashProbe => "HashProbe",
            PlanKind::BitmapAnd => "BitmapAnd",
            PlanKind::GallopProbe => "GallopProbe",
            PlanKind::HeapMerge => "HeapMerge",
            PlanKind::CompressedGallop => "CompressedGallop",
        }
    }

    /// Bumps this kind's counter in the global metrics registry
    /// (`fsi_plan_kind_total{kind=...}`) — one relaxed increment on a
    /// cached handle per planned query.
    fn record_choice(self) {
        use std::sync::OnceLock;
        static COUNTERS: OnceLock<[std::sync::Arc<fsi_obs::Counter>; 8]> = OnceLock::new();
        let counters = COUNTERS.get_or_init(|| {
            [
                PlanKind::Empty,
                PlanKind::Single,
                PlanKind::RanGroupScan,
                PlanKind::HashProbe,
                PlanKind::BitmapAnd,
                PlanKind::GallopProbe,
                PlanKind::HeapMerge,
                PlanKind::CompressedGallop,
            ]
            .map(|k| {
                fsi_obs::Registry::global().counter("fsi_plan_kind_total", &[("kind", k.name())])
            })
        });
        // audit:allow(hot_path_index): the array is sized to the enum's variant count and indexed by discriminant
        counters[self as usize].inc();
    }
}

/// A whole-query physical plan: which kernel to run, in which operand
/// order, and what the cost model predicted for it.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiwayPlan {
    /// The chosen kernel.
    pub kind: PlanKind,
    /// Operand positions in evaluation order (ascending by size — the
    /// smallest list drives, and probes hit the most selective lists
    /// first).
    pub order: Vec<usize>,
    /// The winning candidate's estimated cost, in the planner's abstract
    /// units (comparable only within one plan call).
    pub est_cost: f64,
}

/// The whole-query cost-model dispatcher.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Cost per driver element per probed list, scaled by the galloping
    /// log factor (`log₂(nᵢ/n_min + 2)`).
    pub gallop_unit: f64,
    /// Cost per driver element per probed hash table. High relative to
    /// `gallop_unit`: every probe is a likely cache miss. The ratio of the
    /// two sets the skew crossover (defaults put it near `n_max/n_min ≈
    /// 64`, the measured value; the paper-era machine crossed near 100).
    pub hash_unit: f64,
    /// Cost per 64-bit `AND` word per non-driver operand in the chunked
    /// bitmap sweep.
    pub bitmap_word_unit: f64,
    /// Cost per input element for RanGroupScan's group-filtered scan.
    pub rgs_unit: f64,
    /// Cost per input element per `log₂ k` for the heap merge. The default
    /// keeps it strictly dominated by RanGroupScan (prepared lists always
    /// carry the RGS structure); tuning it below `rgs_unit` forces the
    /// structure-free path.
    pub heap_unit: f64,
    /// Cost per document id decoded out of a compressed block — the extra
    /// work [`PlanKind::CompressedGallop`] pays over a flat gallop for the
    /// blocks its probes actually touch. Strictly positive, so with no
    /// memory pressure (`bytes_unit = 0`) the compressed plan is dominated
    /// by [`PlanKind::GallopProbe`] and never fires.
    pub decode_unit: f64,
    /// Cost per byte of operand representation the chosen kernel drags
    /// through the cache — the memory-pressure dial. The default `0.0`
    /// reproduces the pure-compute model exactly (every pinned crossover
    /// below is unchanged); raising it charges flat/hash/bitmap candidates
    /// their full footprint while [`PlanKind::CompressedGallop`] pays only
    /// the ~4–10× smaller block-postings bytes.
    pub bytes_unit: f64,
}

impl Default for Planner {
    fn default() -> Self {
        Self {
            gallop_unit: 2.5,
            hash_unit: 15.0,
            bitmap_word_unit: 1.0,
            rgs_unit: 1.2,
            heap_unit: 2.0,
            decode_unit: 0.5,
            bytes_unit: 0.0,
        }
    }
}

impl Planner {
    /// Constants tuned for one SIMD tier. [`Planner::default`] is the
    /// scalar calibration (deterministic across machines — what the plan
    /// tests pin); the SIMD tiers cheapen exactly the units whose kernels
    /// the `fsi-kernels` SIMD layer vectorizes, by the per-word/per-element
    /// speedups `BENCH_simd.json` measures on the dense shapes:
    ///
    /// * `bitmap_word_unit` — the chunk sweep ANDs 2/4 words per
    ///   instruction and PTEST-skips zero groups, so a word costs ~½/~⅓
    ///   of scalar (extraction of survivors stays scalar, which is why the
    ///   factor is milder than the lane count);
    /// * `rgs_unit` is *not* cheapened: RanGroupScan's group filtering is
    ///   already word-packed scalar code the SIMD layer does not touch —
    ///   under SIMD its *relative* price versus the vectorized kernels
    ///   rises, and the untouched constant expresses exactly that.
    pub fn for_simd(level: fsi_kernels::SimdLevel) -> Self {
        use fsi_kernels::SimdLevel;
        let mut p = Self::default();
        match level {
            SimdLevel::Scalar => {}
            SimdLevel::Sse41 => p.bitmap_word_unit = 0.55,
            SimdLevel::Avx2 => p.bitmap_word_unit = 0.35,
        }
        p
    }

    /// Constants tuned for the SIMD tier this process actually dispatches
    /// to ([`SimdLevel::active`](fsi_kernels::SimdLevel::active)) — what
    /// serving defaults use, so planned execution picks the vectorized
    /// bitmap sweep in the regimes where it now wins.
    pub fn auto() -> Self {
        Self::for_simd(fsi_kernels::SimdLevel::active())
    }
}

impl Planner {
    /// Cost-models the whole operand list and returns the minimum-cost
    /// plan. `stats` is positional: `order[i]` in the returned plan indexes
    /// into it.
    ///
    /// Every call records the chosen [`PlanKind`] and the winning estimated
    /// cost into the global metrics registry (`fsi_plan_kind_total{kind}`,
    /// `fsi_plan_est_cost`) — the always-on half of the planner's
    /// misprediction signal (the observed half is recorded where results
    /// materialize, in `fsi-query`).
    pub fn plan(&self, stats: &[OperandStats]) -> MultiwayPlan {
        let plan = self.plan_inner(stats);
        plan.kind.record_choice();
        {
            use std::sync::OnceLock;
            static EST_COST: OnceLock<std::sync::Arc<fsi_obs::Histogram>> = OnceLock::new();
            EST_COST
                .get_or_init(|| fsi_obs::Registry::global().histogram("fsi_plan_est_cost", &[]))
                .record(plan.est_cost.max(0.0) as u64);
        }
        plan
    }

    fn plan_inner(&self, stats: &[OperandStats]) -> MultiwayPlan {
        let k = stats.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&i| stats[i].n);
        if k == 0 || stats[order[0]].n == 0 {
            return MultiwayPlan {
                kind: PlanKind::Empty,
                order,
                est_cost: 0.0,
            };
        }
        if k == 1 {
            let est_cost = stats[0].n as f64;
            return MultiwayPlan {
                kind: PlanKind::Single,
                order,
                est_cost,
            };
        }
        let n_min = stats[order[0]].n as f64;
        let total: f64 = stats.iter().map(|s| s.n as f64).sum();
        let probes = (k - 1) as f64;

        // Bytes-resident terms: what each candidate's representation costs
        // to drag through the cache, scaled by the memory-pressure dial
        // (zero by default, so these vanish from the pure-compute model).
        // Flat slices are 4 bytes/element; the hash tables and the
        // RanGroupScan structure run about two words per element.
        let flat_bytes = self.bytes_unit * 4.0 * total;
        let struct_bytes = self.bytes_unit * 8.0 * total;

        let mut best = (PlanKind::RanGroupScan, self.rgs_unit * total + struct_bytes);
        let mut consider = |kind: PlanKind, cost: f64| {
            if cost < best.1 {
                best = (kind, cost);
            }
        };
        let log_sum: f64 = order[1..]
            .iter()
            .map(|&i| (stats[i].n as f64 / n_min + 2.0).log2())
            .sum();
        consider(
            PlanKind::GallopProbe,
            self.gallop_unit * n_min * log_sum + flat_bytes,
        );
        consider(
            PlanKind::HashProbe,
            self.hash_unit * n_min * probes + struct_bytes,
        );
        if let Some(c_min) = stats.iter().map(|s| s.chunks).min().flatten() {
            // `min` on Options puts None first, so a single bitmap-less
            // operand (None) vetoes the candidate via `.flatten()`.
            let words: usize =
                stats.iter().map(|s| s.chunks.unwrap_or(0)).sum::<usize>() * WORDS_PER_CHUNK;
            consider(
                PlanKind::BitmapAnd,
                self.bitmap_word_unit * (c_min * WORDS_PER_CHUNK) as f64 * probes
                    + self.bytes_unit * 8.0 * words as f64,
            );
        }
        consider(
            PlanKind::HeapMerge,
            self.heap_unit * total * (k as f64).log2() + flat_bytes,
        );
        // Compressed-domain galloping: admissible only when every operand
        // carries block postings (`Option::sum` yields None otherwise). The
        // driver decodes fully; each probed list decodes at most one block
        // (BLOCK_LEN ids) per driver candidate, capped at its own length.
        if let Some(comp_bytes) = stats
            .iter()
            .map(|s| s.compressed_bytes)
            .sum::<Option<usize>>()
        {
            let decoded: f64 = n_min
                + order[1..]
                    .iter()
                    .map(|&i| (stats[i].n as f64).min(n_min * BLOCK_LEN as f64))
                    .sum::<f64>();
            consider(
                PlanKind::CompressedGallop,
                self.gallop_unit * n_min * log_sum
                    + self.decode_unit * decoded
                    + self.bytes_unit * comp_bytes as f64,
            );
        }
        MultiwayPlan {
            kind: best.0,
            order,
            est_cost: best.1,
        }
    }

    /// The plan for these prepared lists.
    pub fn plan_for_lists(&self, lists: &[&PlannedList]) -> MultiwayPlan {
        let stats: Vec<OperandStats> = lists.iter().map(|l| l.stats()).collect();
        self.plan(&stats)
    }

    /// The plan [`Planner::intersect`] would run for these raw operand
    /// sets — for harnesses that classify queries without prepared lists.
    /// Exactly matches [`Planner::plan_for_lists`] on the built lists.
    pub fn plan_for_sets(&self, sets: &[&SortedSet]) -> MultiwayPlan {
        let stats: Vec<OperandStats> = sets.iter().map(|s| OperandStats::of_set(s)).collect();
        self.plan(&stats)
    }

    /// Runs `plan` over `lists`, appending the intersection to `out` in the
    /// kernel's natural order (ascending for everything except
    /// RanGroupScan's g-order).
    pub fn execute(&self, plan: &MultiwayPlan, lists: &[&PlannedList], out: &mut Vec<Elem>) {
        match plan.kind {
            PlanKind::Empty => {}
            PlanKind::Single => out.extend_from_slice(lists[plan.order[0]].flat.as_slice()),
            PlanKind::RanGroupScan => {
                let typed: Vec<&RanGroupScanIndex> = lists.iter().map(|l| &l.rgs).collect();
                RanGroupScanIndex::intersect_k_into(&typed, out);
            }
            PlanKind::HashProbe => {
                // HashSetIndex's k-way walk already drives the smallest
                // list's elements through the other tables in ascending
                // size order — the same schedule `plan.order` encodes.
                let typed: Vec<&HashSetIndex> = lists.iter().map(|l| &l.hash).collect();
                HashSetIndex::intersect_k_into(&typed, out);
            }
            PlanKind::BitmapAnd => {
                let typed: Vec<&BitmapSet> = lists
                    .iter()
                    .map(|l| {
                        l.bitmap
                            .as_ref()
                            // audit:allow(hot_path_panic): the planner only picks BitmapAnd when every operand carried a bitmap
                            .expect("BitmapAnd only wins when every operand carries a bitmap")
                    })
                    .collect();
                BitmapSet::intersect_k_into(&typed, out);
            }
            PlanKind::GallopProbe => {
                let driver = lists[plan.order[0]].flat.as_slice();
                let rest: Vec<&[Elem]> = plan.order[1..]
                    .iter()
                    .map(|&i| lists[i].flat.as_slice())
                    .collect();
                gallop_probe_ordered_into(driver, &rest, out);
            }
            PlanKind::HeapMerge => {
                let slices: Vec<&[Elem]> = lists.iter().map(|l| l.flat.as_slice()).collect();
                heap_merge_into(&slices, out);
            }
            PlanKind::CompressedGallop => {
                let mut cursors: Vec<BlockCursor> = plan
                    .order
                    .iter()
                    .map(|&i| {
                        lists[i]
                            .compressed
                            .as_ref()
                            // audit:allow(hot_path_panic): the planner only picks CompressedGallop when every operand carries block postings
                            .expect("CompressedGallop only wins when every operand carries block postings")
                            .cursor()
                    })
                    .collect();
                compressed_probe_into(&mut cursors, out);
            }
        }
    }

    /// Plans and executes in one call; returns the plan that ran.
    pub fn intersect(&self, lists: &[&PlannedList], out: &mut Vec<Elem>) -> MultiwayPlan {
        let plan = self.plan_for_lists(lists);
        self.execute(&plan, lists, out);
        plan
    }
}

/// A fully planned, self-contained index: every term prepared for every
/// representation, queries answered through the cost-model planner. The
/// planner-mode sibling of [`crate::engine::OwnedExecutor`] — serving
/// shards hold one per document range.
#[derive(Debug, Clone)]
pub struct PlannedExecutor {
    planner: Planner,
    lists: Vec<PlannedList>,
    universe: u64,
}

impl PlannedExecutor {
    /// Prepares every posting list of `engine` for planner dispatch.
    pub fn build(engine: &SearchEngine, planner: Planner) -> Self {
        let lists = engine
            .postings()
            .iter()
            .map(|p| PlannedList::build(engine.ctx(), p))
            .collect();
        Self {
            planner,
            lists,
            universe: engine.max_doc().map_or(0, |m| m as u64 + 1),
        }
    }

    /// The planner answering queries.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Size of the document space this executor covers (`max_doc + 1`; 0
    /// for an empty index) — the denominator of the expression planner's
    /// selectivity estimates.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// The prepared list of a term.
    pub fn list(&self, term: usize) -> &PlannedList {
        // audit:allow(hot_path_index): public accessor with a documented term-id contract; a bounds panic is the misuse signal
        &self.lists[term]
    }

    /// Total heap footprint of all prepared representations.
    pub fn size_in_bytes(&self) -> usize {
        self.lists.iter().map(|l| l.size_in_bytes()).sum()
    }

    /// The plan the executor would run for this term list (telemetry; the
    /// query paths compute the same thing).
    pub fn plan(&self, terms: &[usize]) -> MultiwayPlan {
        let refs: Vec<&PlannedList> = terms.iter().map(|&t| &self.lists[t]).collect();
        self.planner.plan_for_lists(&refs)
    }

    /// Answers the conjunctive query `terms`, ascending document order.
    pub fn query(&self, terms: &[usize]) -> Vec<Elem> {
        let mut out = Vec::new();
        self.query_into(terms, &mut out);
        out
    }

    /// Appends the (ascending) answer to `out` — the hot-path form serving
    /// shards use to share one output buffer. Returns the plan that ran.
    pub fn query_into(&self, terms: &[usize], out: &mut Vec<Elem>) -> MultiwayPlan {
        let refs: Vec<&PlannedList> = terms.iter().map(|&t| &self.lists[t]).collect();
        let start = out.len();
        let plan = self.planner.intersect(&refs, out);
        // Every kernel emits ascending output already except RanGroupScan,
        // which emits in g-order — only that plan pays the sort.
        if plan.kind == PlanKind::RanGroupScan {
            out[start..].sort_unstable();
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Stats of a sparse list (no bitmap or block postings prepared).
    fn sparse(n: usize) -> OperandStats {
        OperandStats {
            n,
            chunks: None,
            compressed_bytes: None,
        }
    }

    /// Stats of a dense list touching `chunks` chunks.
    fn dense(n: usize, chunks: usize) -> OperandStats {
        OperandStats {
            n,
            chunks: Some(chunks),
            compressed_bytes: None,
        }
    }

    /// Stats of a sparse list whose block postings compressed to `bytes`.
    fn compressed(n: usize, bytes: usize) -> OperandStats {
        OperandStats {
            n,
            chunks: None,
            compressed_bytes: Some(bytes),
        }
    }

    fn kind(p: &Planner, stats: &[OperandStats]) -> PlanKind {
        p.plan(stats).kind
    }

    #[test]
    fn cost_model_regions_match_measured_crossovers() {
        let p = Planner::default();
        // Balanced sparse → RanGroupScan (the paper's home turf).
        assert_eq!(
            kind(&p, &[sparse(1000), sparse(1000)]),
            PlanKind::RanGroupScan
        );
        assert_eq!(
            kind(&p, &[sparse(1000), sparse(2000)]),
            PlanKind::RanGroupScan
        );
        // Moderate skew → GallopProbe (crossover near ratio 8).
        assert_eq!(
            kind(&p, &[sparse(1000), sparse(8000)]),
            PlanKind::GallopProbe
        );
        assert_eq!(
            kind(&p, &[sparse(100), sparse(500), sparse(6000)]),
            PlanKind::GallopProbe
        );
        // Extreme skew → HashProbe (crossover near ratio 64).
        assert_eq!(
            kind(&p, &[sparse(1000), sparse(64_000)]),
            PlanKind::HashProbe
        );
        assert_eq!(
            kind(&p, &[sparse(100), sparse(500), sparse(80_000)]),
            PlanKind::HashProbe
        );
        // Every operand dense → the chunked-bitmap AND wins outright.
        assert_eq!(
            kind(&p, &[dense(50_000, 2), dense(60_000, 2)]),
            PlanKind::BitmapAnd
        );
        assert_eq!(
            kind(&p, &[dense(10_000, 2), dense(80_000, 2)]),
            PlanKind::BitmapAnd
        );
        // One sparse operand vetoes the bitmap; extreme skew → HashProbe.
        assert_eq!(
            kind(&p, &[sparse(1_000), dense(80_000, 2)]),
            PlanKind::HashProbe
        );
        // Degenerate inputs.
        assert_eq!(kind(&p, &[sparse(0), sparse(10)]), PlanKind::Empty);
        assert_eq!(kind(&p, &[]), PlanKind::Empty);
        assert_eq!(kind(&p, &[sparse(10)]), PlanKind::Single);
    }

    #[test]
    fn simd_tuning_only_cheapens_vectorized_units() {
        let base = Planner::default();
        for level in fsi_kernels::SimdLevel::ALL {
            let tuned = Planner::for_simd(level);
            // The bitmap sweep is the vectorized unit; everything else is
            // untouched so scalar-calibrated crossovers stay put.
            assert!(tuned.bitmap_word_unit <= base.bitmap_word_unit, "{level:?}");
            assert_eq!(tuned.gallop_unit, base.gallop_unit);
            assert_eq!(tuned.hash_unit, base.hash_unit);
            assert_eq!(tuned.rgs_unit, base.rgs_unit);
            assert_eq!(tuned.heap_unit, base.heap_unit);
            assert_eq!(tuned.decode_unit, base.decode_unit);
            assert_eq!(tuned.bytes_unit, base.bytes_unit);
        }
        // Scalar tuning IS the default; auto() follows the active tier.
        assert_eq!(
            Planner::for_simd(fsi_kernels::SimdLevel::Scalar).bitmap_word_unit,
            base.bitmap_word_unit
        );
        let auto = Planner::auto();
        assert_eq!(
            auto.bitmap_word_unit,
            Planner::for_simd(fsi_kernels::SimdLevel::active()).bitmap_word_unit
        );
        // A cheaper sweep can only widen the BitmapAnd region: a query it
        // already won under scalar constants it must still win tuned.
        let dense_pair = [dense(50_000, 2), dense(60_000, 2)];
        for level in fsi_kernels::SimdLevel::ALL {
            assert_eq!(
                kind(&Planner::for_simd(level), &dense_pair),
                PlanKind::BitmapAnd
            );
        }
    }

    #[test]
    fn plan_order_is_ascending_by_size() {
        let p = Planner::default();
        let plan = p.plan(&[sparse(500), sparse(20), sparse(9000), sparse(100)]);
        assert_eq!(plan.order, vec![1, 3, 0, 2]);
        assert!(plan.est_cost > 0.0);
    }

    #[test]
    fn all_plans_are_correct() {
        let ctx = HashContext::new(42);
        let mut rng = StdRng::seed_from_u64(5);
        let planner = Planner::default();
        // Balanced sparse.
        let a: SortedSet = (0..2000).map(|_| rng.gen_range(0..2_000_000u32)).collect();
        let b: SortedSet = (0..2000).map(|_| rng.gen_range(0..2_000_000u32)).collect();
        let pa = PlannedList::build(&ctx, &a);
        let pb = PlannedList::build(&ctx, &b);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pa, &pb], &mut out);
        assert_eq!(plan.kind, PlanKind::RanGroupScan);
        out.sort_unstable();
        assert_eq!(out, reference_intersection(&[a.as_slice(), b.as_slice()]));
        // Moderate skew.
        let small: SortedSet = (0..150u32).map(|x| x * 13_000).collect();
        let ps = PlannedList::build(&ctx, &small);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&ps, &pb], &mut out);
        assert_eq!(plan.kind, PlanKind::GallopProbe);
        assert_eq!(plan.order, vec![0, 1]);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[small.as_slice(), b.as_slice()])
        );
        // Extreme skew.
        let tiny: SortedSet = (0..20u32).map(|x| x * 100_000).collect();
        let pt = PlannedList::build(&ctx, &tiny);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pt, &pb], &mut out);
        assert_eq!(plan.kind, PlanKind::HashProbe);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[tiny.as_slice(), b.as_slice()])
        );
        // Dense.
        let d1: SortedSet = (0..40_000u32).map(|x| x * 2).collect();
        let d2: SortedSet = (0..40_000u32).map(|x| x * 2 + (x % 2)).collect();
        let pd1 = PlannedList::build(&ctx, &d1);
        let pd2 = PlannedList::build(&ctx, &d2);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pd1, &pd2], &mut out);
        assert_eq!(plan.kind, PlanKind::BitmapAnd);
        out.sort_unstable();
        assert_eq!(out, reference_intersection(&[d1.as_slice(), d2.as_slice()]));
        // Single and empty.
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pa], &mut out);
        assert_eq!(plan.kind, PlanKind::Single);
        out.sort_unstable();
        assert_eq!(out, a.as_slice());
        let empty = PlannedList::build(&ctx, &SortedSet::new());
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pa, &empty], &mut out);
        assert_eq!(plan.kind, PlanKind::Empty);
        assert!(out.is_empty());
    }

    #[test]
    fn sparse_lists_skip_the_bitmap_and_veto_bitmap_plans() {
        let ctx = HashContext::new(44);
        // ~1/131072 dense: the planner can never pick BitmapAnd for a query
        // containing this list, so no 8KiB-per-chunk bitmap is built.
        let sparse_a: SortedSet = (0..100u32).map(|x| x * 131_072).collect();
        let sparse_b: SortedSet = (0..120u32).map(|x| x * 109_997 + 13).collect();
        let dense_c: SortedSet = (0..10_000u32).map(|x| x * 4).collect();
        let pa = PlannedList::build(&ctx, &sparse_a);
        let pb = PlannedList::build(&ctx, &sparse_b);
        let pd = PlannedList::build(&ctx, &dense_c);
        assert!(pa.bitmap.is_none());
        assert!(pb.bitmap.is_none());
        assert!(pd.bitmap.is_some());
        // One bitmap-less operand makes BitmapAnd inadmissible however
        // cheap the word sweep would be.
        let p = Planner {
            bitmap_word_unit: 0.0,
            ..Planner::default()
        };
        let mut out = Vec::new();
        let plan = p.intersect(&[&pa, &pb], &mut out);
        assert_ne!(plan.kind, PlanKind::BitmapAnd);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[sparse_a.as_slice(), sparse_b.as_slice()])
        );
        let mut out = Vec::new();
        let plan = p.intersect(&[&pa, &pd], &mut out);
        assert_ne!(plan.kind, PlanKind::BitmapAnd);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[sparse_a.as_slice(), dense_c.as_slice()])
        );
    }

    #[test]
    fn plan_for_sets_matches_plan_for_built_lists() {
        let ctx = HashContext::new(45);
        let mut rng = StdRng::seed_from_u64(7);
        let planner = Planner::default();
        for (sizes, universe) in [
            (vec![1500usize, 1500], 5_000_000u32),
            (vec![100, 1500], 5_000_000),
            (vec![20, 1500], 5_000_000),
            (vec![1500, 1500], 3_000),
            (vec![0, 10], 100),
            (vec![700], 10_000),
        ] {
            let sets: Vec<SortedSet> = sizes
                .iter()
                .map(|&n| (0..n).map(|_| rng.gen_range(0..universe)).collect())
                .collect();
            let set_refs: Vec<&SortedSet> = sets.iter().collect();
            let lists: Vec<PlannedList> =
                sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
            let refs: Vec<&PlannedList> = lists.iter().collect();
            // The stats themselves must agree field-for-field — including
            // the measured-vs-built compressed footprint — not just the
            // plan they induce.
            for (set, list) in sets.iter().zip(&lists) {
                assert_eq!(OperandStats::of_set(set), list.stats(), "sizes {sizes:?}");
            }
            assert_eq!(
                planner.plan_for_sets(&set_refs),
                planner.plan_for_lists(&refs),
                "sizes {sizes:?}"
            );
        }
    }

    #[test]
    fn memory_pressure_flips_to_compressed_domain_and_stays_correct() {
        let ctx = HashContext::new(47);
        // Clustered doc ids (small gaps) — the compressed form is many
        // times smaller than the 4-bytes-per-id flat list.
        let a: SortedSet = (0..3000u32).map(|x| x * 3).collect();
        let b: SortedSet = (0..3500u32).map(|x| x * 3 + (x % 3)).collect();
        let pa = PlannedList::build(&ctx, &a);
        let pb = PlannedList::build(&ctx, &b);
        let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);

        // No memory pressure: the pure-compute model never pays the decode
        // term, so the compressed plan is dominated.
        let calm = Planner::default();
        assert_ne!(
            calm.plan_for_lists(&[&pa, &pb]).kind,
            PlanKind::CompressedGallop
        );
        // Under pressure the byte footprint dominates and the planner
        // switches to probing the blocks directly — byte-identical result.
        let pressured = Planner {
            bytes_unit: 100.0,
            ..Planner::default()
        };
        let mut out = Vec::new();
        let plan = pressured.intersect(&[&pa, &pb], &mut out);
        assert_eq!(plan.kind, PlanKind::CompressedGallop);
        assert_eq!(out, expect);
    }

    #[test]
    fn cost_units_are_tunable_and_can_force_every_kernel() {
        // Cranking every other unit sky-high forces each candidate in turn.
        let sets = [sparse(3000), sparse(4000), sparse(5000)];
        let force = |rgs: f64, gallop: f64, hash: f64, heap: f64| Planner {
            rgs_unit: rgs,
            gallop_unit: gallop,
            hash_unit: hash,
            heap_unit: heap,
            bitmap_word_unit: f64::INFINITY,
            ..Planner::default()
        };
        assert_eq!(
            kind(&force(1e-6, 1e9, 1e9, 1e9), &sets),
            PlanKind::RanGroupScan
        );
        assert_eq!(
            kind(&force(1e9, 1e-6, 1e9, 1e9), &sets),
            PlanKind::GallopProbe
        );
        assert_eq!(
            kind(&force(1e9, 1e9, 1e-6, 1e9), &sets),
            PlanKind::HashProbe
        );
        assert_eq!(
            kind(&force(1e9, 1e9, 1e9, 1e-6), &sets),
            PlanKind::HeapMerge
        );
        let dense_sets = [dense(3000, 1), dense(4000, 1)];
        let bitmap_cheap = Planner {
            rgs_unit: 1e9,
            gallop_unit: 1e9,
            hash_unit: 1e9,
            heap_unit: 1e9,
            bitmap_word_unit: 1e-6,
            ..Planner::default()
        };
        assert_eq!(kind(&bitmap_cheap, &dense_sets), PlanKind::BitmapAnd);
        // Operands carrying block postings + a hot bytes_unit force the
        // compressed-domain plan: flat candidates pay 4 bytes/element,
        // compressed pays only its (much smaller) exact footprint.
        let comp_sets = [compressed(3000, 1200), compressed(4000, 1500)];
        let pressured = Planner {
            bytes_unit: 100.0,
            ..Planner::default()
        };
        assert_eq!(kind(&pressured, &comp_sets), PlanKind::CompressedGallop);
        // Without pressure the decode term keeps it strictly dominated.
        assert_ne!(
            kind(&Planner::default(), &comp_sets),
            PlanKind::CompressedGallop
        );
        // A single operand without block postings vetoes the candidate.
        let mixed = [compressed(3000, 1200), sparse(4000)];
        assert_ne!(kind(&pressured, &mixed), PlanKind::CompressedGallop);
    }

    #[test]
    fn every_forced_kernel_is_correct() {
        let ctx = HashContext::new(43);
        let mut rng = StdRng::seed_from_u64(6);
        for k in 2..=5usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|_| (0..1500).map(|_| rng.gen_range(0..40_000u32)).collect())
                .collect();
            let lists: Vec<PlannedList> =
                sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
            let refs: Vec<&PlannedList> = lists.iter().collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            let expect = reference_intersection(&slices);
            let planner = Planner::default();
            let base = planner.plan_for_lists(&refs);
            for forced in [
                PlanKind::RanGroupScan,
                PlanKind::HashProbe,
                PlanKind::GallopProbe,
                PlanKind::HeapMerge,
                PlanKind::CompressedGallop,
            ] {
                let plan = MultiwayPlan {
                    kind: forced,
                    ..base.clone()
                };
                let mut out = Vec::new();
                planner.execute(&plan, &refs, &mut out);
                out.sort_unstable();
                assert_eq!(out, expect, "forced {forced:?} k={k}");
            }
        }
    }

    #[test]
    fn planned_executor_matches_reference() {
        let ctx = HashContext::new(46);
        let mut rng = StdRng::seed_from_u64(8);
        let postings: Vec<SortedSet> = (0..12)
            .map(|i| {
                let n = 200 * (i + 1);
                (0..n).map(|_| rng.gen_range(0..60_000u32)).collect()
            })
            .collect();
        let engine = SearchEngine::from_postings(ctx, postings);
        let exec = engine.planned_executor(Planner::default());
        assert_eq!(exec.num_terms(), 12);
        assert!(exec.size_in_bytes() > 0);
        for terms in [
            vec![0usize, 1],
            vec![0, 5, 11],
            vec![3, 3, 7], // duplicate term
            vec![9],
            vec![],
        ] {
            let slices: Vec<&[u32]> = terms
                .iter()
                .map(|&t| engine.posting(t).as_slice())
                .collect();
            let expect = reference_intersection(&slices);
            assert_eq!(exec.query(&terms), expect, "{terms:?}");
            let plan = exec.plan(&terms);
            let mut out = vec![1234u32]; // prefix must survive query_into
            let ran = exec.query_into(&terms, &mut out);
            assert_eq!(ran, plan);
            assert_eq!(&out[..1], &[1234]);
            assert_eq!(&out[1..], expect.as_slice(), "{terms:?}");
        }
    }
}
