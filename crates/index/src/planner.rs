//! Per-query physical-plan selection — the paper's closing pitch
//! operationalized: its techniques "are robust in that — for inputs for
//! which they are not the best-performing approach — they perform close to
//! the best one", and Section 3.4 already proposes choosing the algorithm
//! "online, based on n₁/n₂".
//!
//! A [`PlannedList`] keeps the structures whose winning regions the
//! evaluation maps out: RanGroupScan for balanced sparse sizes, a hash
//! table for extreme skew, and the `fsi-kernels` layer for the two regimes
//! wide machine words own outright — a chunked bitmap for *dense* operands
//! (one `AND` per 64 universe slots) and a galloping merge for *moderately
//! skewed* sizes. At query time the [`Planner`] dispatches on the size
//! ratio and the density of the actual operands:
//!
//! 1. an empty operand → [`Plan::Galloping`] (short-circuits immediately);
//! 2. ratio ≥ [`Planner::hash_ratio_threshold`] → [`Plan::HashProbe`]
//!    (`O(n_min)` probes beat everything at extreme skew);
//! 3. every operand denser than [`Planner::bitmap_min_density`] →
//!    [`Plan::Bitmap`];
//! 4. ratio ≥ [`Planner::gallop_ratio_threshold`] → [`Plan::Galloping`];
//! 5. otherwise → [`Plan::RanGroupScan`] (balanced, sparse — the paper's
//!    home turf).
//!
//! The default thresholds reflect *this repository's measured* crossovers
//! (see EXPERIMENTS.md and `BENCH_kernels.json`); they are tunables because
//! the right answers are hardware-bound.

use crate::strategy::Strategy;
use fsi_baselines::HashSetIndex;
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use fsi_core::traits::{KIntersect, SetIndex};
use fsi_core::RanGroupScanIndex;
use fsi_kernels::{BitmapSet, GallopingSet, BITMAP_MIN_DENSITY};

/// A posting list prepared for every winning regime.
#[derive(Debug, Clone)]
pub struct PlannedList {
    hash: HashSetIndex,
    rgs: RanGroupScanIndex,
    /// Only built for lists dense enough (own `n / (max+1)` at or above
    /// [`BITMAP_MIN_DENSITY`]) that [`Plan::Bitmap`] can ever fire on a
    /// query containing them — a chunk bitmap costs a fixed 8 KiB per
    /// touched 2¹⁶-value chunk, which is pure dead weight on sparse lists.
    bitmap: Option<BitmapSet>,
    flat: GallopingSet,
    max_elem: Option<Elem>,
}

impl PlannedList {
    /// Preprocesses `set` for every structure the planner can dispatch to.
    pub fn build(ctx: &HashContext, set: &SortedSet) -> Self {
        // If this list is sparser than BITMAP_MIN_DENSITY in its own value
        // range, then for any query containing it the global span is at
        // least its max+1 and the min operand size at most its n, so the
        // density rule can never select Bitmap — skip the bitmap entirely.
        let dense = set
            .max()
            .is_some_and(|m| set.len() as f64 >= BITMAP_MIN_DENSITY * (m as f64 + 1.0));
        Self {
            hash: HashSetIndex::build(set),
            rgs: RanGroupScanIndex::with_m(ctx, set, 2),
            bitmap: dense.then(|| BitmapSet::build(set)),
            flat: GallopingSet::build(set),
            max_elem: set.max(),
        }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.rgs.n()
    }

    /// Total footprint of all prepared structures.
    pub fn size_in_bytes(&self) -> usize {
        self.hash.size_in_bytes()
            + self.rgs.size_in_bytes()
            + self.bitmap.as_ref().map_or(0, |b| b.size_in_bytes())
            + self.flat.size_in_bytes()
    }
}

/// Which physical plan ran (exposed for tests/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Balanced sparse sizes: Algorithm 5 group filtering.
    RanGroupScan,
    /// Extreme skew: probe the hash tables with the smallest list.
    HashProbe,
    /// Dense operands: word-parallel chunked-bitmap `AND` (`fsi-kernels`).
    Bitmap,
    /// Moderate skew (or a trivially empty operand): branchless/galloping
    /// merge (`fsi-kernels`).
    Galloping,
}

impl Plan {
    /// The equivalent standalone [`Strategy`].
    pub fn as_strategy(self) -> Strategy {
        match self {
            Plan::RanGroupScan => Strategy::RanGroupScan { m: 2 },
            Plan::HashProbe => Strategy::Hash,
            Plan::Bitmap => Strategy::Bitmap,
            Plan::Galloping => Strategy::Galloping,
        }
    }
}

/// The dispatcher.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Size ratio `max nᵢ / min nᵢ` at or above which hash probing wins
    /// (extreme skew).
    pub hash_ratio_threshold: usize,
    /// Size ratio at or above which the galloping kernel wins (moderate
    /// skew; must be below `hash_ratio_threshold` to ever fire).
    pub gallop_ratio_threshold: usize,
    /// Minimum `nᵢ / universe` density (for **every** operand) at which
    /// the chunked-bitmap `AND` wins. Values below
    /// [`BITMAP_MIN_DENSITY`] are clamped up to it at dispatch time:
    /// [`PlannedList::build`] only carries a bitmap for lists at least
    /// that dense, so a looser setting could select a plan the prepared
    /// state cannot run.
    pub bitmap_min_density: f64,
}

impl Default for Planner {
    fn default() -> Self {
        Self {
            // Measured crossovers on this hardware (EXPERIMENTS.md ratio
            // experiment; BENCH_kernels.json for the kernel regimes). The
            // paper-era machine crossed to hash probing near 100.
            hash_ratio_threshold: 64,
            gallop_ratio_threshold: 8,
            bitmap_min_density: BITMAP_MIN_DENSITY,
        }
    }
}

/// The universe span the density rule divides by: `max element + 1` over
/// the operands (0 when every operand is empty). Shared by
/// [`Planner::intersect`] and [`Planner::choose_for_sets`] so the bench
/// harness and the dispatcher can never disagree on the definition.
fn universe_span(maxes: impl Iterator<Item = Option<Elem>>) -> u64 {
    maxes.flatten().max().map_or(0, |m| m as u64 + 1)
}

impl Planner {
    /// Decides the plan from operand sizes and the universe span
    /// (`max element + 1` over the operands; 0 when all are empty).
    pub fn choose(&self, sizes: &[usize], universe_span: u64) -> Plan {
        let min = sizes.iter().copied().min().unwrap_or(0);
        let max = sizes.iter().copied().max().unwrap_or(0);
        if min == 0 {
            return Plan::Galloping;
        }
        let ratio = max / min;
        let density_floor = self.bitmap_min_density.max(BITMAP_MIN_DENSITY);
        if ratio >= self.hash_ratio_threshold {
            Plan::HashProbe
        } else if (min as f64) >= density_floor * universe_span.max(1) as f64 {
            Plan::Bitmap
        } else if ratio >= self.gallop_ratio_threshold {
            Plan::Galloping
        } else {
            Plan::RanGroupScan
        }
    }

    /// The plan [`Planner::intersect`] would run for these operand sets —
    /// for harnesses that classify queries without prepared lists.
    pub fn choose_for_sets(&self, sets: &[&SortedSet]) -> Plan {
        let sizes: Vec<usize> = sets.iter().map(|s| s.len()).collect();
        let span = universe_span(sets.iter().map(|s| s.max()));
        self.choose(&sizes, span)
    }

    /// Intersects under the chosen plan; returns which plan ran.
    pub fn intersect(&self, lists: &[&PlannedList], out: &mut Vec<Elem>) -> Plan {
        let sizes: Vec<usize> = lists.iter().map(|l| l.n()).collect();
        let span = universe_span(lists.iter().map(|l| l.max_elem));
        let plan = self.choose(&sizes, span);
        match plan {
            Plan::RanGroupScan => {
                let typed: Vec<&RanGroupScanIndex> = lists.iter().map(|l| &l.rgs).collect();
                RanGroupScanIndex::intersect_k_into(&typed, out);
            }
            Plan::HashProbe => {
                let typed: Vec<&HashSetIndex> = lists.iter().map(|l| &l.hash).collect();
                HashSetIndex::intersect_k_into(&typed, out);
            }
            Plan::Bitmap => {
                let typed: Vec<&BitmapSet> = lists
                    .iter()
                    .map(|l| {
                        l.bitmap
                            .as_ref()
                            .expect("density rule only fires when every operand carries a bitmap")
                    })
                    .collect();
                BitmapSet::intersect_k_into(&typed, out);
            }
            Plan::Galloping => {
                let typed: Vec<&GallopingSet> = lists.iter().map(|l| &l.flat).collect();
                GallopingSet::intersect_k_into(&typed, out);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SPARSE: u64 = 1 << 30; // a span that keeps every density tiny

    #[test]
    fn chooses_by_ratio_and_density() {
        let p = Planner::default();
        // Balanced sparse → RanGroupScan.
        assert_eq!(p.choose(&[1000, 1000], SPARSE), Plan::RanGroupScan);
        assert_eq!(p.choose(&[1000, 2000], SPARSE), Plan::RanGroupScan);
        // Moderate skew → Galloping.
        assert_eq!(p.choose(&[1000, 8000], SPARSE), Plan::Galloping);
        assert_eq!(p.choose(&[100, 500, 6000], SPARSE), Plan::Galloping);
        // Extreme skew → HashProbe.
        assert_eq!(p.choose(&[1000, 64_000], SPARSE), Plan::HashProbe);
        assert_eq!(p.choose(&[100, 500, 80_000], SPARSE), Plan::HashProbe);
        // Dense and balanced → Bitmap (density 1/2 ≥ 1/16).
        assert_eq!(p.choose(&[50_000, 60_000], 100_000), Plan::Bitmap);
        // Density wins over moderate skew, not over extreme skew.
        assert_eq!(p.choose(&[10_000, 80_000], 100_000), Plan::Bitmap);
        assert_eq!(p.choose(&[1_000, 80_000], 100_000), Plan::HashProbe);
        // Degenerate inputs short-circuit to Galloping.
        assert_eq!(p.choose(&[0, 10], SPARSE), Plan::Galloping);
        assert_eq!(p.choose(&[], SPARSE), Plan::Galloping);
    }

    #[test]
    fn all_plans_are_correct() {
        let ctx = HashContext::new(42);
        let mut rng = StdRng::seed_from_u64(5);
        let planner = Planner::default();
        // Balanced sparse.
        let a: SortedSet = (0..2000).map(|_| rng.gen_range(0..2_000_000u32)).collect();
        let b: SortedSet = (0..2000).map(|_| rng.gen_range(0..2_000_000u32)).collect();
        let pa = PlannedList::build(&ctx, &a);
        let pb = PlannedList::build(&ctx, &b);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pa, &pb], &mut out);
        assert_eq!(plan, Plan::RanGroupScan);
        out.sort_unstable();
        assert_eq!(out, reference_intersection(&[a.as_slice(), b.as_slice()]));
        // Moderate skew.
        let small: SortedSet = (0..150u32).map(|x| x * 13_000).collect();
        let ps = PlannedList::build(&ctx, &small);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&ps, &pb], &mut out);
        assert_eq!(plan, Plan::Galloping);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[small.as_slice(), b.as_slice()])
        );
        // Extreme skew.
        let tiny: SortedSet = (0..20u32).map(|x| x * 100_000).collect();
        let pt = PlannedList::build(&ctx, &tiny);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pt, &pb], &mut out);
        assert_eq!(plan, Plan::HashProbe);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[tiny.as_slice(), b.as_slice()])
        );
        // Dense.
        let d1: SortedSet = (0..40_000u32).map(|x| x * 2).collect();
        let d2: SortedSet = (0..40_000u32).map(|x| x * 2 + (x % 2)).collect();
        let pd1 = PlannedList::build(&ctx, &d1);
        let pd2 = PlannedList::build(&ctx, &d2);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pd1, &pd2], &mut out);
        assert_eq!(plan, Plan::Bitmap);
        out.sort_unstable();
        assert_eq!(out, reference_intersection(&[d1.as_slice(), d2.as_slice()]));
    }

    #[test]
    fn sparse_lists_skip_the_bitmap_and_loose_density_settings_clamp() {
        let ctx = HashContext::new(44);
        // ~1/131072 dense: the planner can never pick Bitmap for a query
        // containing this list, so no 8KiB-per-chunk bitmap is built.
        let sparse_a: SortedSet = (0..100u32).map(|x| x * 131_072).collect();
        let sparse_b: SortedSet = (0..120u32).map(|x| x * 109_997 + 13).collect();
        let dense: SortedSet = (0..10_000u32).map(|x| x * 4).collect();
        let pa = PlannedList::build(&ctx, &sparse_a);
        let pb = PlannedList::build(&ctx, &sparse_b);
        let pd = PlannedList::build(&ctx, &dense);
        assert!(pa.bitmap.is_none());
        assert!(pb.bitmap.is_none());
        assert!(pd.bitmap.is_some());
        // A density threshold below the build floor is clamped at dispatch
        // time: without the clamp this balanced sparse pair would select
        // Plan::Bitmap and demand bitmaps that were never built.
        let p = Planner {
            bitmap_min_density: 0.0,
            ..Planner::default()
        };
        let mut out = Vec::new();
        let plan = p.intersect(&[&pa, &pb], &mut out);
        assert_eq!(plan, Plan::RanGroupScan);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[sparse_a.as_slice(), sparse_b.as_slice()])
        );
    }

    #[test]
    fn choose_for_sets_matches_intersect_dispatch() {
        let ctx = HashContext::new(45);
        let mut rng = StdRng::seed_from_u64(7);
        let planner = Planner::default();
        for (sizes, universe) in [
            (vec![1500usize, 1500], 5_000_000u32),
            (vec![100, 1500], 5_000_000),
            (vec![20, 1500], 5_000_000),
            (vec![1500, 1500], 3_000),
            (vec![0, 10], 100),
        ] {
            let sets: Vec<SortedSet> = sizes
                .iter()
                .map(|&n| (0..n).map(|_| rng.gen_range(0..universe)).collect())
                .collect();
            let set_refs: Vec<&SortedSet> = sets.iter().collect();
            let lists: Vec<PlannedList> =
                sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
            let refs: Vec<&PlannedList> = lists.iter().collect();
            let mut out = Vec::new();
            assert_eq!(
                planner.choose_for_sets(&set_refs),
                planner.intersect(&refs, &mut out),
                "sizes {sizes:?}"
            );
        }
    }

    #[test]
    fn thresholds_are_tunable() {
        let p = Planner {
            hash_ratio_threshold: 1_000_000,
            gallop_ratio_threshold: 1_000_000,
            bitmap_min_density: 2.0, // impossible: never picks Bitmap
        };
        assert_eq!(p.choose(&[10, 100_000], SPARSE), Plan::RanGroupScan);
        assert_eq!(p.choose(&[50_000, 60_000], 100_000), Plan::RanGroupScan);
        assert_eq!(Plan::HashProbe.as_strategy().name(), "Hash");
        assert_eq!(Plan::Bitmap.as_strategy().name(), "Bitmap");
        assert_eq!(Plan::Galloping.as_strategy().name(), "Galloping");
    }

    #[test]
    fn k_way_under_every_plan() {
        let ctx = HashContext::new(43);
        let mut rng = StdRng::seed_from_u64(6);
        let planner = Planner::default();
        for (sizes, universe) in [
            (vec![1500usize, 1500, 1500], 5_000_000u32), // RanGroupScan
            (vec![100, 1500, 1500], 5_000_000),          // Galloping
            (vec![20, 1500, 1500], 5_000_000),           // HashProbe
            (vec![1500, 1500, 1500], 3_000),             // Bitmap
        ] {
            let sets: Vec<SortedSet> = sizes
                .iter()
                .map(|&n| (0..n).map(|_| rng.gen_range(0..universe)).collect())
                .collect();
            let lists: Vec<PlannedList> =
                sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
            let refs: Vec<&PlannedList> = lists.iter().collect();
            let mut out = Vec::new();
            planner.intersect(&refs, &mut out);
            out.sort_unstable();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(out, reference_intersection(&slices), "sizes {sizes:?}");
        }
    }
}
