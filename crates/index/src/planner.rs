//! Per-query physical-plan selection — the paper's closing pitch
//! operationalized: its techniques "are robust in that — for inputs for
//! which they are not the best-performing approach — they perform close to
//! the best one", and Section 3.4 already proposes choosing the algorithm
//! "online, based on n₁/n₂".
//!
//! A [`PlannedList`] keeps the two structures whose winning regions the
//! evaluation maps out — RanGroupScan for balanced sizes and a hash table
//! for skewed sizes (the sorted list for Merge-style scans lives inside the
//! RanGroupScan groups, so large-r queries degrade gracefully too). At query
//! time the [`Planner`] dispatches on the size ratio of the actual operands.
//!
//! The default threshold reflects *this repository's measured* crossover
//! (sr ≈ 8 on a large-L3 machine — see EXPERIMENTS.md); the paper-era value
//! was ≈ 100. It is a tunable because the right answer is hardware-bound.

use crate::strategy::Strategy;
use fsi_baselines::HashSetIndex;
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use fsi_core::traits::{KIntersect, SetIndex};
use fsi_core::RanGroupScanIndex;

/// A posting list prepared for both winning regimes.
#[derive(Debug, Clone)]
pub struct PlannedList {
    hash: HashSetIndex,
    rgs: RanGroupScanIndex,
}

impl PlannedList {
    /// Preprocesses `set` for both structures.
    pub fn build(ctx: &HashContext, set: &SortedSet) -> Self {
        Self {
            hash: HashSetIndex::build(set),
            rgs: RanGroupScanIndex::with_m(ctx, set, 2),
        }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.rgs.n()
    }

    /// Total footprint of both structures.
    pub fn size_in_bytes(&self) -> usize {
        self.hash.size_in_bytes() + self.rgs.size_in_bytes()
    }
}

/// Which physical plan ran (exposed for tests/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Balanced sizes: Algorithm 5 group filtering.
    RanGroupScan,
    /// Skewed sizes: probe the hash tables with the smallest list.
    HashProbe,
}

impl Plan {
    /// The equivalent standalone [`Strategy`].
    pub fn as_strategy(self) -> Strategy {
        match self {
            Plan::RanGroupScan => Strategy::RanGroupScan { m: 2 },
            Plan::HashProbe => Strategy::Hash,
        }
    }
}

/// The dispatcher.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Size ratio `max nᵢ / min nᵢ` at or above which hash probing wins.
    pub hash_ratio_threshold: usize,
}

impl Default for Planner {
    fn default() -> Self {
        Self {
            // Measured crossover on this hardware (EXPERIMENTS.md, ratio
            // experiment); the paper-era machine crossed near 100.
            hash_ratio_threshold: 8,
        }
    }
}

impl Planner {
    /// Decides the plan from operand sizes.
    pub fn choose(&self, sizes: &[usize]) -> Plan {
        let min = sizes.iter().copied().min().unwrap_or(0);
        let max = sizes.iter().copied().max().unwrap_or(0);
        if min == 0 || max / min.max(1) >= self.hash_ratio_threshold {
            Plan::HashProbe
        } else {
            Plan::RanGroupScan
        }
    }

    /// Intersects under the chosen plan; returns which plan ran.
    pub fn intersect(&self, lists: &[&PlannedList], out: &mut Vec<Elem>) -> Plan {
        let sizes: Vec<usize> = lists.iter().map(|l| l.n()).collect();
        let plan = self.choose(&sizes);
        match plan {
            Plan::RanGroupScan => {
                let typed: Vec<&RanGroupScanIndex> = lists.iter().map(|l| &l.rgs).collect();
                RanGroupScanIndex::intersect_k_into(&typed, out);
            }
            Plan::HashProbe => {
                let typed: Vec<&HashSetIndex> = lists.iter().map(|l| &l.hash).collect();
                HashSetIndex::intersect_k_into(&typed, out);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chooses_by_ratio() {
        let p = Planner::default();
        assert_eq!(p.choose(&[1000, 1000]), Plan::RanGroupScan);
        assert_eq!(p.choose(&[1000, 2000]), Plan::RanGroupScan);
        assert_eq!(p.choose(&[1000, 8000]), Plan::HashProbe);
        assert_eq!(p.choose(&[100, 500, 80_000]), Plan::HashProbe);
        assert_eq!(p.choose(&[0, 10]), Plan::HashProbe);
        assert_eq!(p.choose(&[]), Plan::HashProbe);
    }

    #[test]
    fn both_plans_are_correct() {
        let ctx = HashContext::new(42);
        let mut rng = StdRng::seed_from_u64(5);
        let planner = Planner::default();
        // Balanced.
        let a: SortedSet = (0..2000).map(|_| rng.gen_range(0..8000u32)).collect();
        let b: SortedSet = (0..2000).map(|_| rng.gen_range(0..8000u32)).collect();
        let pa = PlannedList::build(&ctx, &a);
        let pb = PlannedList::build(&ctx, &b);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&pa, &pb], &mut out);
        assert_eq!(plan, Plan::RanGroupScan);
        out.sort_unstable();
        assert_eq!(out, reference_intersection(&[a.as_slice(), b.as_slice()]));
        // Skewed.
        let small: SortedSet = (0..50u32).map(|x| x * 160).collect();
        let ps = PlannedList::build(&ctx, &small);
        let mut out = Vec::new();
        let plan = planner.intersect(&[&ps, &pb], &mut out);
        assert_eq!(plan, Plan::HashProbe);
        out.sort_unstable();
        assert_eq!(
            out,
            reference_intersection(&[small.as_slice(), b.as_slice()])
        );
    }

    #[test]
    fn threshold_is_tunable() {
        let p = Planner {
            hash_ratio_threshold: 1_000_000,
        };
        assert_eq!(p.choose(&[10, 100_000]), Plan::RanGroupScan);
        assert_eq!(Plan::HashProbe.as_strategy().name(), "Hash");
    }

    #[test]
    fn k_way_under_both_plans() {
        let ctx = HashContext::new(43);
        let mut rng = StdRng::seed_from_u64(6);
        let planner = Planner::default();
        let sets: Vec<SortedSet> = (0..3)
            .map(|_| (0..1500).map(|_| rng.gen_range(0..5000u32)).collect())
            .collect();
        let lists: Vec<PlannedList> = sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
        let refs: Vec<&PlannedList> = lists.iter().collect();
        let mut out = Vec::new();
        planner.intersect(&refs, &mut out);
        out.sort_unstable();
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        assert_eq!(out, reference_intersection(&slices));
    }
}
