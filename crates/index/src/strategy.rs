//! A uniform, dynamic interface over every intersection algorithm in the
//! repository — the glue that lets the query engine and the benchmark
//! harness swap algorithms per query, as Section 3.4 envisions ("we can make
//! the choice between algorithms online").

use fsi_baselines::{
    AdaptiveIndex, BaezaYatesIndex, BppIndex, HashSetIndex, LookupIndex, MergeIndex, SkipListIndex,
    SmallAdaptiveIndex, SvsIndex, TreapIndex,
};
use fsi_compress::{
    BlockCodec, BlockPostings, CompressedLookup, CompressedPostings, CompressedRgsIndex, EliasCode,
    GroupCoding,
};
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};
use fsi_core::{
    hashbin, HashBinIndex, IntGroupIndex, IntGroupOptIndex, MultiResIndex, RanGroupIndex,
    RanGroupScanIndex,
};
use fsi_kernels::{BitmapSet, GallopingSet, SigFilterSet};

/// Every algorithm the harness can run, identified the way the paper's
/// figures label them.
///
/// `Hash` lets strategies key caches and maps (the serving layer's result
/// cache is keyed by `(terms, strategy)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Linear merge of inverted lists.
    Merge,
    /// Skip-list seeking.
    SkipList,
    /// Hash-table probing.
    Hash,
    /// Bille–Pagh–Pagh.
    Bpp,
    /// Sanders–Transier two-level lookup.
    Lookup,
    /// Small-vs-small with galloping.
    Svs,
    /// Demaine–López-Ortiz–Munro adaptive.
    Adaptive,
    /// Baeza-Yates divide and conquer.
    BaezaYates,
    /// Barbay et al. SmallAdaptive.
    SmallAdaptive,
    /// Blelloch & Reid-Miller treaps (related work, §2).
    Treap,
    /// Paper §3.1: fixed-width partitions.
    IntGroup,
    /// Paper §3.1 + Appendix A.1.1: all widths at once, optimal pick per
    /// query (Theorem 3.4).
    IntGroupOpt,
    /// Paper §3.2: randomized partitions (Algorithm 4).
    RanGroup,
    /// Paper §3.3: Algorithm 5 with `m` hash images.
    RanGroupScan {
        /// Number of hash images.
        m: usize,
    },
    /// Paper §3.4: HashBin.
    HashBin,
    /// Paper §3.4: online choice between RanGroup and HashBin.
    Auto,
    /// `fsi-kernels`: chunked bitmap (Roaring-style dense containers),
    /// word-parallel `AND`.
    Bitmap,
    /// `fsi-kernels`: branchless two-pointer merge / galloping probe,
    /// chosen per query by size ratio.
    Galloping,
    /// `fsi-kernels`: FESIA-style per-bucket signature prefilter,
    /// AND-then-verify.
    SigFilter,
    /// γ/δ-compressed Merge.
    MergeCompressed(EliasCode),
    /// γ/δ-compressed Lookup.
    LookupCompressed(EliasCode),
    /// Compressed RanGroupScan (γ/δ/Lowbits), `m = 1`.
    RgsCompressed(GroupCoding),
    /// Skip-augmented block postings intersected in the compressed domain:
    /// cursors gallop across the skip table and decode at most the blocks
    /// they land in.
    CompressedGallop(BlockCodec),
}

impl Strategy {
    /// The label used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Strategy::Merge => "Merge".into(),
            Strategy::SkipList => "SkipList".into(),
            Strategy::Hash => "Hash".into(),
            Strategy::Bpp => "BPP".into(),
            Strategy::Lookup => "Lookup".into(),
            Strategy::Svs => "SvS".into(),
            Strategy::Adaptive => "Adaptive".into(),
            Strategy::BaezaYates => "BaezaYates".into(),
            Strategy::SmallAdaptive => "SmallAdaptive".into(),
            Strategy::Treap => "Treap".into(),
            Strategy::IntGroup => "IntGroup".into(),
            Strategy::IntGroupOpt => "IntGroupOpt".into(),
            Strategy::RanGroup => "RanGroup".into(),
            Strategy::RanGroupScan { m } => format!("RanGroupScan(m={m})"),
            Strategy::HashBin => "HashBin".into(),
            Strategy::Auto => "Auto".into(),
            Strategy::Bitmap => "Bitmap".into(),
            Strategy::Galloping => "Galloping".into(),
            Strategy::SigFilter => "SigFilter".into(),
            Strategy::MergeCompressed(c) => format!("Merge_{}", c.label()),
            Strategy::LookupCompressed(c) => format!("Lookup_{}", c.label()),
            Strategy::RgsCompressed(c) => format!("RanGroupScan_{}", c.label()),
            Strategy::CompressedGallop(c) => format!("CompressedGallop_{}", c.label()),
        }
    }

    /// The uncompressed lineup of Section 4's first experiments.
    pub fn uncompressed_lineup() -> Vec<Strategy> {
        vec![
            Strategy::Merge,
            Strategy::SkipList,
            Strategy::Hash,
            Strategy::Bpp,
            Strategy::Lookup,
            Strategy::Svs,
            Strategy::Adaptive,
            Strategy::BaezaYates,
            Strategy::SmallAdaptive,
            Strategy::IntGroup,
            Strategy::RanGroup,
            Strategy::RanGroupScan { m: 4 },
            Strategy::HashBin,
        ]
    }

    /// The compressed lineup of Figure 8.
    pub fn compressed_lineup() -> Vec<Strategy> {
        vec![
            Strategy::MergeCompressed(EliasCode::Delta),
            Strategy::LookupCompressed(EliasCode::Delta),
            Strategy::RgsCompressed(GroupCoding::Elias(EliasCode::Delta)),
            Strategy::RgsCompressed(GroupCoding::Lowbits),
        ]
    }

    /// Every strategy variant the repository implements — the union of the
    /// paper lineups plus the extras outside any figure. This is the single
    /// list "every strategy" test suites iterate, so a new variant added
    /// here is picked up by all of them at once.
    pub fn full_lineup() -> Vec<Strategy> {
        let mut v = Self::uncompressed_lineup();
        v.push(Strategy::RanGroupScan { m: 1 });
        v.push(Strategy::Auto);
        v.push(Strategy::IntGroupOpt);
        v.push(Strategy::Treap);
        v.push(Strategy::Bitmap);
        v.push(Strategy::Galloping);
        v.push(Strategy::SigFilter);
        v.extend(Self::compressed_lineup());
        v.push(Strategy::MergeCompressed(EliasCode::Gamma));
        v.push(Strategy::LookupCompressed(EliasCode::Gamma));
        v.push(Strategy::RgsCompressed(GroupCoding::Elias(
            EliasCode::Gamma,
        )));
        v.extend(BlockCodec::ALL.map(Strategy::CompressedGallop));
        v
    }

    /// Preprocesses one set for this strategy.
    pub fn prepare(&self, ctx: &HashContext, set: &SortedSet) -> PreparedList {
        match *self {
            Strategy::Merge => PreparedList::Merge(MergeIndex::build(set)),
            Strategy::SkipList => PreparedList::SkipList(SkipListIndex::build(set)),
            Strategy::Hash => PreparedList::Hash(HashSetIndex::build(set)),
            Strategy::Bpp => PreparedList::Bpp(BppIndex::build(ctx, set)),
            Strategy::Lookup => PreparedList::Lookup(LookupIndex::build(set)),
            Strategy::Svs => PreparedList::Svs(SvsIndex::build(set)),
            Strategy::Adaptive => PreparedList::Adaptive(AdaptiveIndex::build(set)),
            Strategy::BaezaYates => PreparedList::BaezaYates(BaezaYatesIndex::build(set)),
            Strategy::SmallAdaptive => PreparedList::SmallAdaptive(SmallAdaptiveIndex::build(set)),
            Strategy::Treap => PreparedList::Treap(TreapIndex::build(set)),
            Strategy::IntGroup => PreparedList::IntGroup(IntGroupIndex::build(ctx, set)),
            Strategy::IntGroupOpt => PreparedList::IntGroupOpt(IntGroupOptIndex::build(ctx, set)),
            Strategy::RanGroup => PreparedList::RanGroup(RanGroupIndex::build(ctx, set)),
            Strategy::RanGroupScan { m } => {
                PreparedList::RanGroupScan(RanGroupScanIndex::with_m(ctx, set, m))
            }
            Strategy::HashBin => PreparedList::HashBin(HashBinIndex::build(ctx, set)),
            Strategy::Auto => PreparedList::Auto(MultiResIndex::build(ctx, set)),
            Strategy::Bitmap => PreparedList::Bitmap(BitmapSet::build(set)),
            Strategy::Galloping => PreparedList::Galloping(GallopingSet::build(set)),
            Strategy::SigFilter => PreparedList::SigFilter(SigFilterSet::build(ctx, set)),
            Strategy::MergeCompressed(c) => {
                PreparedList::MergeCompressed(CompressedPostings::build(c, set))
            }
            Strategy::LookupCompressed(c) => {
                PreparedList::LookupCompressed(CompressedLookup::build(c, set))
            }
            Strategy::RgsCompressed(c) => {
                PreparedList::RgsCompressed(CompressedRgsIndex::build(ctx, set, c))
            }
            Strategy::CompressedGallop(c) => {
                PreparedList::CompressedGallop(BlockPostings::from_slice(c, set.as_slice()))
            }
        }
    }
}

/// A preprocessed posting list under some [`Strategy`].
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum PreparedList {
    Merge(MergeIndex),
    SkipList(SkipListIndex),
    Hash(HashSetIndex),
    Bpp(BppIndex),
    Lookup(LookupIndex),
    Svs(SvsIndex),
    Adaptive(AdaptiveIndex),
    BaezaYates(BaezaYatesIndex),
    SmallAdaptive(SmallAdaptiveIndex),
    Treap(TreapIndex),
    IntGroup(IntGroupIndex),
    IntGroupOpt(IntGroupOptIndex),
    RanGroup(RanGroupIndex),
    RanGroupScan(RanGroupScanIndex),
    HashBin(HashBinIndex),
    Auto(MultiResIndex),
    Bitmap(BitmapSet),
    Galloping(GallopingSet),
    SigFilter(SigFilterSet),
    MergeCompressed(CompressedPostings),
    LookupCompressed(CompressedLookup),
    RgsCompressed(CompressedRgsIndex),
    CompressedGallop(BlockPostings),
}

macro_rules! on_prepared {
    ($self:expr, $ix:ident => $body:expr) => {
        match $self {
            PreparedList::Merge($ix) => $body,
            PreparedList::SkipList($ix) => $body,
            PreparedList::Hash($ix) => $body,
            PreparedList::Bpp($ix) => $body,
            PreparedList::Lookup($ix) => $body,
            PreparedList::Svs($ix) => $body,
            PreparedList::Adaptive($ix) => $body,
            PreparedList::BaezaYates($ix) => $body,
            PreparedList::SmallAdaptive($ix) => $body,
            PreparedList::Treap($ix) => $body,
            PreparedList::IntGroup($ix) => $body,
            PreparedList::IntGroupOpt($ix) => $body,
            PreparedList::RanGroup($ix) => $body,
            PreparedList::RanGroupScan($ix) => $body,
            PreparedList::HashBin($ix) => $body,
            PreparedList::Auto($ix) => $body,
            PreparedList::Bitmap($ix) => $body,
            PreparedList::Galloping($ix) => $body,
            PreparedList::SigFilter($ix) => $body,
            PreparedList::MergeCompressed($ix) => $body,
            PreparedList::LookupCompressed($ix) => $body,
            PreparedList::RgsCompressed($ix) => $body,
            PreparedList::CompressedGallop($ix) => $body,
        }
    };
}

impl PreparedList {
    /// Number of elements of the underlying set.
    pub fn n(&self) -> usize {
        on_prepared!(self, ix => ix.n())
    }

    /// Heap footprint of the structure.
    pub fn size_in_bytes(&self) -> usize {
        on_prepared!(self, ix => ix.size_in_bytes())
    }
}

macro_rules! dispatch_k {
    ($variant:ident, $lists:expr, $out:expr) => {{
        let typed: Vec<_> = $lists
            .iter()
            .map(|l| match l {
                PreparedList::$variant(ix) => ix,
                // audit:allow(hot_path_panic): prepared lists for one query share one strategy; mixing them is a caller bug worth failing fast
                other => panic!(
                    "mixed strategies in one query: expected {}, got {:?}",
                    stringify!($variant),
                    std::mem::discriminant(*other)
                ),
            })
            .collect();
        KIntersect::intersect_k_into(&typed, $out);
    }};
}

/// Intersects `k ≥ 1` prepared lists (all under the same strategy),
/// appending the result to `out` in the algorithm's natural order.
pub fn intersect_into(lists: &[&PreparedList], out: &mut Vec<Elem>) {
    let Some(first) = lists.first() else {
        return;
    };
    match first {
        PreparedList::Merge(_) => dispatch_k!(Merge, lists, out),
        PreparedList::SkipList(_) => dispatch_k!(SkipList, lists, out),
        PreparedList::Hash(_) => dispatch_k!(Hash, lists, out),
        PreparedList::Bpp(_) => dispatch_k!(Bpp, lists, out),
        PreparedList::Lookup(_) => dispatch_k!(Lookup, lists, out),
        PreparedList::Svs(_) => dispatch_k!(Svs, lists, out),
        PreparedList::Adaptive(_) => dispatch_k!(Adaptive, lists, out),
        PreparedList::BaezaYates(_) => dispatch_k!(BaezaYates, lists, out),
        PreparedList::SmallAdaptive(_) => dispatch_k!(SmallAdaptive, lists, out),
        PreparedList::Treap(_) => dispatch_k!(Treap, lists, out),
        PreparedList::IntGroup(_) => dispatch_k!(IntGroup, lists, out),
        PreparedList::IntGroupOpt(_) => intersect_intgroup_opt(lists, out),
        PreparedList::RanGroup(_) => dispatch_k!(RanGroup, lists, out),
        PreparedList::RanGroupScan(_) => dispatch_k!(RanGroupScan, lists, out),
        PreparedList::HashBin(_) => dispatch_k!(HashBin, lists, out),
        PreparedList::Auto(_) => intersect_auto_k(lists, out),
        PreparedList::Bitmap(_) => dispatch_k!(Bitmap, lists, out),
        PreparedList::Galloping(_) => dispatch_k!(Galloping, lists, out),
        PreparedList::SigFilter(_) => dispatch_k!(SigFilter, lists, out),
        PreparedList::MergeCompressed(_) => dispatch_k!(MergeCompressed, lists, out),
        PreparedList::LookupCompressed(_) => dispatch_k!(LookupCompressed, lists, out),
        PreparedList::RgsCompressed(_) => dispatch_k!(RgsCompressed, lists, out),
        PreparedList::CompressedGallop(_) => dispatch_k!(CompressedGallop, lists, out),
    }
}

/// Convenience wrapper returning an ascending result.
pub fn intersect_sorted(lists: &[&PreparedList]) -> Vec<Elem> {
    let mut out = Vec::new();
    intersect_into(lists, &mut out);
    out.sort_unstable();
    out
}

/// `IntGroupOpt` dispatch: 2-set per Theorem 3.4; k ≥ 3 by pairwise folding
/// plus membership filtering (IntGroup is a two-set design, §3.1).
fn intersect_intgroup_opt(lists: &[&PreparedList], out: &mut Vec<Elem>) {
    let typed: Vec<&IntGroupOptIndex> = lists
        .iter()
        .map(|l| match l {
            PreparedList::IntGroupOpt(ix) => ix,
            // audit:allow(hot_path_panic): prepared lists for one query share one strategy; mixing them is a caller bug worth failing fast
            _ => panic!("mixed strategies in one query"),
        })
        .collect();
    match typed.as_slice() {
        [] => {}
        [a] => out.extend_from_slice(a.as_slice()),
        [a, b] => a.intersect_pair_into(b, out),
        many => {
            let mut order: Vec<&IntGroupOptIndex> = many.to_vec();
            order.sort_by_key(|ix| ix.n());
            let mut acc = Vec::new();
            order[0].intersect_pair_into(order[1], &mut acc);
            for ix in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc.sort_unstable();
                let s = SortedSet::from_sorted_unchecked(std::mem::take(&mut acc));
                let mut next = Vec::new();
                // Reuse the pair path against a temporary index of the
                // accumulator (cheap: the accumulator shrinks every round).
                let tmp = IntGroupOptIndex::build_like(ix, &s);
                tmp.intersect_pair_into(ix, &mut next);
                acc = next;
            }
            out.extend(acc);
        }
    }
}

/// `Auto` dispatch: the 2-set case picks between RanGroup (Theorem 3.5) and
/// HashBin by size ratio; `k ≥ 3` uses HashBin's k-set walk (the structures
/// share the `g`-ordered array, so this is free).
fn intersect_auto_k(lists: &[&PreparedList], out: &mut Vec<Elem>) {
    let typed: Vec<&MultiResIndex> = lists
        .iter()
        .map(|l| match l {
            PreparedList::Auto(ix) => ix,
            // audit:allow(hot_path_panic): prepared lists for one query share one strategy; mixing them is a caller bug worth failing fast
            _ => panic!("mixed strategies in one query"),
        })
        .collect();
    match typed.as_slice() {
        [] => {}
        [a] => {
            let g = a.permutation();
            out.extend(a.gvalues().iter().map(|&gv| g.invert(gv)));
        }
        [a, b] => {
            fsi_core::auto::intersect_auto(a, b, out);
        }
        many => {
            let g = *many[0].permutation();
            let slices: Vec<&[u32]> = many.iter().map(|ix| ix.gvalues()).collect();
            hashbin::intersect_gvalues(&g, &slices, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn all_strategies() -> Vec<Strategy> {
        Strategy::full_lineup()
    }

    #[test]
    fn every_strategy_agrees_with_reference() {
        let ctx = HashContext::new(404);
        let mut rng = StdRng::seed_from_u64(17);
        for k in 2..=4usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|i| {
                    let n = rng.gen_range(0..(400 * (i + 1)));
                    (0..n).map(|_| rng.gen_range(0..3000u32)).collect()
                })
                .collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            let expect = reference_intersection(&slices);
            for strat in all_strategies() {
                let prepared: Vec<PreparedList> =
                    sets.iter().map(|s| strat.prepare(&ctx, s)).collect();
                let refs: Vec<&PreparedList> = prepared.iter().collect();
                assert_eq!(
                    intersect_sorted(&refs),
                    expect,
                    "strategy {} on k={k}",
                    strat.name()
                );
            }
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Strategy::Merge.name(), "Merge");
        assert_eq!(Strategy::RanGroupScan { m: 4 }.name(), "RanGroupScan(m=4)");
        assert_eq!(
            Strategy::RgsCompressed(GroupCoding::Lowbits).name(),
            "RanGroupScan_Lowbits"
        );
        assert_eq!(
            Strategy::MergeCompressed(EliasCode::Delta).name(),
            "Merge_Delta"
        );
        assert_eq!(
            Strategy::CompressedGallop(BlockCodec::Packed).name(),
            "CompressedGallop_Packed"
        );
    }

    #[test]
    fn mixed_strategies_panic() {
        let ctx = HashContext::new(1);
        let s: SortedSet = (0..10).collect();
        let a = Strategy::Merge.prepare(&ctx, &s);
        let b = Strategy::Hash.prepare(&ctx, &s);
        assert!(std::panic::catch_unwind(|| intersect_sorted(&[&a, &b])).is_err());
    }

    #[test]
    fn size_accounting_is_exposed() {
        let ctx = HashContext::new(2);
        let s: SortedSet = (0..10_000u32).collect();
        for strat in all_strategies() {
            let p = strat.prepare(&ctx, &s);
            assert_eq!(p.n(), 10_000);
            assert!(p.size_in_bytes() > 0, "{}", strat.name());
        }
    }
}
