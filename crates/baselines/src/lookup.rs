//! **Lookup** — the two-level bucketed posting lists of Sanders &
//! Transier \[19, 21\] ("Intersection in Integer Inverted Indices"), with
//! bucket width `B = 32` (the value the VLDB paper — and the original
//! authors — found best).
//!
//! The universe is cut into fixed buckets of `B` consecutive IDs; a directory
//! maps each bucket of the set's ID range to the offset of its elements.
//! Intersection iterates the non-empty buckets of the smaller set and jumps
//! *directly* (one array index, no search) to the matching bucket of the
//! larger set, then merges the two short bucket ranges. \[21\] randomizes
//! document IDs so buckets stay balanced; the evaluation's synthetic IDs are
//! already uniform, and the search-engine substrate assigns IDs uniformly.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// log2 of the default bucket width `B = 32` (the best value "in our and
/// the authors' experience", Section 4; the ablation harness sweeps it).
pub const BUCKET_LOG2: u32 = 5;

/// A set with its bucket directory.
#[derive(Debug, Clone)]
pub struct LookupIndex {
    elems: Vec<Elem>,
    /// log2 of the bucket width in use.
    bucket_log2: u32,
    /// First bucket id covered by the directory.
    first_bucket: u32,
    /// `dir[b - first_bucket] .. dir[b - first_bucket + 1]` delimits bucket
    /// `b`'s elements.
    dir: Vec<u32>,
}

impl LookupIndex {
    /// Builds the directory over the set's ID range with `B = 32`.
    pub fn build(set: &SortedSet) -> Self {
        Self::with_bucket_log2(set, BUCKET_LOG2)
    }

    /// Builds with an explicit bucket width `B = 2^bucket_log2` (ablation
    /// hook for the paper's "B = 32 is best" claim).
    pub fn with_bucket_log2(set: &SortedSet, bucket_log2: u32) -> Self {
        assert!(bucket_log2 < 32, "bucket width must leave residue bits");
        let elems = set.as_slice().to_vec();
        if elems.is_empty() {
            return Self {
                elems,
                bucket_log2,
                first_bucket: 0,
                dir: vec![0],
            };
        }
        let first_bucket = elems[0] >> bucket_log2;
        let last_bucket = elems[elems.len() - 1] >> bucket_log2;
        let nb = (last_bucket - first_bucket + 1) as usize;
        let mut dir = vec![0u32; nb + 1];
        for &x in &elems {
            dir[(x >> bucket_log2) as usize - first_bucket as usize + 1] += 1;
        }
        for i in 0..nb {
            dir[i + 1] += dir[i];
        }
        Self {
            elems,
            bucket_log2,
            first_bucket,
            dir,
        }
    }

    /// The bucket width in use, as log2.
    pub fn bucket_log2(&self) -> u32 {
        self.bucket_log2
    }

    /// Sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }

    /// Elements of bucket `b` (empty slice if outside the directory).
    #[inline]
    pub fn bucket(&self, b: u32) -> &[Elem] {
        debug_assert!(!self.dir.is_empty());
        let Some(rel) = b.checked_sub(self.first_bucket) else {
            return &[];
        };
        let rel = rel as usize;
        if rel + 1 >= self.dir.len() {
            return &[];
        }
        &self.elems[self.dir[rel] as usize..self.dir[rel + 1] as usize]
    }

    /// Iterates `(bucket_id, elements)` for non-empty buckets.
    fn non_empty_buckets(&self) -> impl Iterator<Item = (u32, &[Elem])> {
        let mut i = 0usize;
        let shift = self.bucket_log2;
        std::iter::from_fn(move || {
            if i >= self.elems.len() {
                return None;
            }
            let b = self.elems[i] >> shift;
            let start = i;
            while i < self.elems.len() && self.elems[i] >> shift == b {
                i += 1;
            }
            Some((b, &self.elems[start..i]))
        })
    }
}

impl SetIndex for LookupIndex {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4 + self.dir.len() * 4 + 4
    }
}

impl PairIntersect for LookupIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        assert_eq!(
            self.bucket_log2, other.bucket_log2,
            "Lookup indexes must share a bucket width"
        );
        let (small, large) = if self.n() <= other.n() {
            (self, other)
        } else {
            (other, self)
        };
        for (b, bucket_small) in small.non_empty_buckets() {
            let bucket_large = large.bucket(b);
            if bucket_large.is_empty() {
                continue;
            }
            crate::merge::intersect2_into(bucket_small, bucket_large, out);
        }
    }
}

impl KIntersect for LookupIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => out.extend_from_slice(&a.elems),
            [a, b] => a.intersect_pair_into(b, out),
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n());
                let (small, rest) = order.split_first().expect("k >= 2");
                let mut slices: Vec<&[Elem]> = Vec::with_capacity(indexes.len());
                for (b, bucket_small) in small.non_empty_buckets() {
                    slices.clear();
                    slices.push(bucket_small);
                    let mut dead = false;
                    for ix in rest {
                        let s = ix.bucket(b);
                        if s.is_empty() {
                            dead = true;
                            break;
                        }
                        slices.push(s);
                    }
                    if !dead {
                        crate::merge::intersect_k_into(&slices, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn directory_is_consistent() {
        let set: SortedSet = (0..10_000u32).map(|x| x * 7 + 3).collect();
        let idx = LookupIndex::build(&set);
        for &x in set.as_slice() {
            assert!(idx.bucket(x >> BUCKET_LOG2).contains(&x));
        }
        let covered: usize = idx.non_empty_buckets().map(|(_, s)| s.len()).sum();
        assert_eq!(covered, set.len());
    }

    #[test]
    fn bucket_out_of_range_is_empty() {
        let idx = LookupIndex::build(&SortedSet::from_unsorted(vec![1000, 2000]));
        assert!(idx.bucket(0).is_empty());
        assert!(idx.bucket(u32::MAX >> BUCKET_LOG2).is_empty());
    }

    #[test]
    fn pair_matches_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..25 {
            let n1 = rng.gen_range(0..800);
            let n2 = rng.gen_range(0..800);
            let u = rng.gen_range(1..4000u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let ia = LookupIndex::build(&a);
            let ib = LookupIndex::build(&b);
            assert_eq!(
                ia.intersect_pair_sorted(&ib),
                reference_intersection(&[a.as_slice(), b.as_slice()])
            );
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let mut rng = StdRng::seed_from_u64(22);
        for k in 2..=5usize {
            for _ in 0..8 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..600);
                        (0..n).map(|_| rng.gen_range(0..1300u32)).collect()
                    })
                    .collect();
                let idx: Vec<LookupIndex> = sets.iter().map(LookupIndex::build).collect();
                let refs: Vec<&LookupIndex> = idx.iter().collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                assert_eq!(
                    LookupIndex::intersect_k_sorted(&refs),
                    reference_intersection(&slices)
                );
            }
        }
    }

    #[test]
    fn disjoint_ranges_never_merge() {
        let a = LookupIndex::build(&(0..100).collect());
        let b = LookupIndex::build(&(10_000..10_100).collect());
        assert_eq!(a.intersect_pair_sorted(&b), Vec::<u32>::new());
        let e = LookupIndex::build(&SortedSet::new());
        assert_eq!(a.intersect_pair_sorted(&e), Vec::<u32>::new());
    }

    #[test]
    fn bucket_width_sweep_stays_correct() {
        let mut rng = StdRng::seed_from_u64(23);
        let a: SortedSet = (0..700).map(|_| rng.gen_range(0..9000u32)).collect();
        let b: SortedSet = (0..700).map(|_| rng.gen_range(0..9000u32)).collect();
        let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
        for log2b in [1u32, 3, 5, 7, 10, 16] {
            let ia = LookupIndex::with_bucket_log2(&a, log2b);
            let ib = LookupIndex::with_bucket_log2(&b, log2b);
            assert_eq!(ia.intersect_pair_sorted(&ib), expect, "B=2^{log2b}");
            assert_eq!(ia.bucket_log2(), log2b);
        }
    }

    #[test]
    fn mismatched_bucket_widths_rejected() {
        let a = LookupIndex::with_bucket_log2(&(0..50).collect(), 4);
        let b = LookupIndex::with_bucket_log2(&(0..50).collect(), 6);
        assert!(std::panic::catch_unwind(|| a.intersect_pair_sorted(&b)).is_err());
    }

    #[test]
    fn extreme_ids() {
        let a = LookupIndex::build(&SortedSet::from_unsorted(vec![0, 31, 32, u32::MAX]));
        let b = LookupIndex::build(&SortedSet::from_unsorted(vec![31, u32::MAX]));
        assert_eq!(a.intersect_pair_sorted(&b), vec![31, u32::MAX]);
    }
}
