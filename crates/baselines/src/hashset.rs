//! **Hash** — intersection via hash-table lookups: iterate the smallest set,
//! probe every element in hash-table representations of the others
//! (expected `O(min_i n_i)` for two sets, Section 2 "Algorithms based on
//! Hashing").
//!
//! The table is built from scratch (no external hashing crates): open
//! addressing with linear probing, power-of-two capacity at load factor
//! ≤ 1/2, and a multiply-shift bucket hash. The paper's observation that the
//! "(relatively) expensive lookup" makes Hash slow for balanced sizes is
//! exactly the cache-missing probe sequence this reproduces.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// Slot sentinel for "empty" (the value `u32::MAX` itself is tracked by a
/// side flag so the full universe remains representable).
const EMPTY: u32 = u32::MAX;

/// Fibonacci-style multiplier for the bucket hash.
const FACTOR: u64 = 0x9e37_79b9_7f4a_7c15;

/// A set stored both as a sorted list (for iteration) and an open-addressing
/// hash table (for probing).
#[derive(Debug, Clone)]
pub struct HashSetIndex {
    elems: Vec<Elem>,
    table: Vec<u32>,
    shift: u32,
    mask: usize,
    has_max: bool,
}

impl HashSetIndex {
    /// Builds the table at load factor ≤ 1/2.
    pub fn build(set: &SortedSet) -> Self {
        let elems = set.as_slice().to_vec();
        let cap = (elems.len() * 2).next_power_of_two().max(4);
        let shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        let mut table = vec![EMPTY; cap];
        let mut has_max = false;
        for &x in &elems {
            if x == u32::MAX {
                has_max = true;
                continue;
            }
            let mut slot = ((x as u64).wrapping_mul(FACTOR) >> shift) as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = x;
        }
        Self {
            elems,
            table,
            shift,
            mask,
            has_max,
        }
    }

    /// Sorted elements (used to drive iteration from the smallest set).
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, x: Elem) -> bool {
        if x == u32::MAX {
            return self.has_max;
        }
        let mut slot = ((x as u64).wrapping_mul(FACTOR) >> self.shift) as usize & self.mask;
        loop {
            let v = self.table[slot];
            if v == x {
                return true;
            }
            if v == EMPTY {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

impl SetIndex for HashSetIndex {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4 + self.table.len() * 4 + 1
    }
}

impl PairIntersect for HashSetIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        let (small, large) = if self.n() <= other.n() {
            (self, other)
        } else {
            (other, self)
        };
        for &x in &small.elems {
            if large.contains(x) {
                out.push(x);
            }
        }
    }
}

impl KIntersect for HashSetIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => out.extend_from_slice(&a.elems),
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n());
                let (small, rest) = order.split_first().expect("k >= 2");
                'elems: for &x in &small.elems {
                    for ix in rest {
                        if !ix.contains(x) {
                            continue 'elems;
                        }
                    }
                    out.push(x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn probes_match_membership() {
        let set: SortedSet = (0..4096u32)
            .map(|x| x.wrapping_mul(2_654_435_761))
            .collect();
        let idx = HashSetIndex::build(&set);
        for &x in set.as_slice() {
            assert!(idx.contains(x));
        }
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..4000 {
            let x: u32 = rng.gen();
            assert_eq!(idx.contains(x), set.contains(x));
        }
    }

    #[test]
    fn handles_u32_max_and_zero() {
        let idx = HashSetIndex::build(&SortedSet::from_unsorted(vec![0, u32::MAX]));
        assert!(idx.contains(0));
        assert!(idx.contains(u32::MAX));
        assert!(!idx.contains(1));
        let no_max = HashSetIndex::build(&SortedSet::from_unsorted(vec![0, 1]));
        assert!(!no_max.contains(u32::MAX));
    }

    #[test]
    fn pair_matches_reference() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..25 {
            let n1 = rng.gen_range(0..400);
            let n2 = rng.gen_range(0..2000);
            let u = rng.gen_range(1..5000u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let ia = HashSetIndex::build(&a);
            let ib = HashSetIndex::build(&b);
            assert_eq!(
                ia.intersect_pair_sorted(&ib),
                reference_intersection(&[a.as_slice(), b.as_slice()])
            );
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in 2..=5usize {
            for _ in 0..8 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..600);
                        (0..n).map(|_| rng.gen_range(0..1500u32)).collect()
                    })
                    .collect();
                let idx: Vec<HashSetIndex> = sets.iter().map(HashSetIndex::build).collect();
                let refs: Vec<&HashSetIndex> = idx.iter().collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                assert_eq!(
                    HashSetIndex::intersect_k_sorted(&refs),
                    reference_intersection(&slices)
                );
            }
        }
    }

    #[test]
    fn empty_cases() {
        let e = HashSetIndex::build(&SortedSet::new());
        let a = HashSetIndex::build(&SortedSet::from_unsorted(vec![1, 2]));
        assert_eq!(e.intersect_pair_sorted(&a), Vec::<u32>::new());
        assert!(!e.contains(0));
    }
}
