//! **Treap** — set operations via randomized balanced trees (Blelloch &
//! Reid-Miller \[7\], cited in the paper's Section 2 "Hierarchical
//! Representations": `O(n₁·log(n₂/n₁))` expected for intersection).
//!
//! The treap is built once over static data (heap priorities drawn from a
//! seeded RNG), then intersected by the divide-and-conquer split/intersect
//! recursion of \[7\]: split the larger treap by the smaller treap's root,
//! recurse on both sides. The recursion structure — not element-by-element
//! probing — is what gives the adaptive bound.
//!
//! The paper's Section 2 notes trees/skip-lists are "typically not used …
//! due to the required space-overhead"; the node array here (value, priority,
//! children ≈ 16 B/element vs 4 B for a posting list) makes that observation
//! measurable.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for "no child".
const NIL: u32 = u32::MAX;

/// An array-backed treap over a static sorted set.
#[derive(Debug, Clone)]
pub struct TreapIndex {
    values: Vec<Elem>,
    priority: Vec<u32>,
    left: Vec<u32>,
    right: Vec<u32>,
    root: u32,
}

impl TreapIndex {
    /// Builds the treap in `O(n)` from sorted input (priorities from a
    /// deterministic RNG; the linear build uses the rightmost-spine trick).
    pub fn build(set: &SortedSet) -> Self {
        let n = set.len();
        let values: Vec<Elem> = set.as_slice().to_vec();
        let mut rng = StdRng::seed_from_u64(0x7ea9 ^ n as u64);
        let priority: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let mut left = vec![NIL; n];
        let mut right = vec![NIL; n];
        let mut spine: Vec<u32> = Vec::new(); // rightmost path, root first
        for i in 0..n as u32 {
            let mut last: u32 = NIL;
            while let Some(&top) = spine.last() {
                if priority[top as usize] < priority[i as usize] {
                    last = top;
                    spine.pop();
                } else {
                    break;
                }
            }
            left[i as usize] = last;
            if let Some(&top) = spine.last() {
                right[top as usize] = i;
            }
            spine.push(i);
        }
        let root = spine.first().copied().unwrap_or(NIL);
        Self {
            values,
            priority,
            left,
            right,
            root,
        }
    }

    /// In-order validation walk (test hook): returns values in tree order.
    #[cfg(test)]
    fn in_order(&self) -> Vec<Elem> {
        let mut out = Vec::with_capacity(self.values.len());
        let mut stack: Vec<(u32, bool)> = Vec::new();
        if self.root != NIL {
            stack.push((self.root, false));
        }
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                out.push(self.values[node as usize]);
                if self.right[node as usize] != NIL {
                    stack.push((self.right[node as usize], false));
                }
            } else {
                stack.push((node, true));
                if self.left[node as usize] != NIL {
                    stack.push((self.left[node as usize], false));
                }
            }
        }
        out
    }

    /// Membership via ordinary BST descent.
    pub fn contains(&self, x: Elem) -> bool {
        let mut node = self.root;
        while node != NIL {
            let v = self.values[node as usize];
            if x == v {
                return true;
            }
            node = if x < v {
                self.left[node as usize]
            } else {
                self.right[node as usize]
            };
        }
        false
    }
}

impl SetIndex for TreapIndex {
    fn n(&self) -> usize {
        self.values.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.values.len() * 4
            + self.priority.len() * 4
            + self.left.len() * 4
            + self.right.len() * 4
            + 4
    }
}

impl PairIntersect for TreapIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        // Drive from the smaller treap, as [7] prescribes.
        let (small, large) = if self.n() <= other.n() {
            (self, other)
        } else {
            (other, self)
        };
        small.intersect_bounded(large, small.root, large.root, Elem::MIN, Elem::MAX, out);
    }
}

impl TreapIndex {
    /// The bound-tracking recursion actually used (read-only treaps can't
    /// materialize splits; value bounds restrict each side instead).
    fn intersect_bounded(
        &self,
        other: &Self,
        a: u32,
        b: u32,
        lo: Elem,
        hi: Elem,
        out: &mut Vec<Elem>,
    ) {
        if a == NIL || b == NIL {
            return;
        }
        let va = self.values[a as usize];
        if va < lo {
            // Only the right subtree of a can land in [lo, hi].
            self.intersect_bounded(other, self.right[a as usize], b, lo, hi, out);
            return;
        }
        if va > hi {
            self.intersect_bounded(other, self.left[a as usize], b, lo, hi, out);
            return;
        }
        // Locate va in `other` within the current subtree (BST descent).
        // The *first* node where the search turns right roots a subtree
        // containing every value < va (all smaller values funnel through
        // it); symmetrically for the first left turn. Those are the
        // restricted views the two recursive calls may search.
        let mut node = b;
        let mut found = false;
        let mut left_sub = NIL; // subtree of `other` covering all values < va
        let mut right_sub = NIL; // subtree covering all values > va
        while node != NIL {
            let v = other.values[node as usize];
            match va.cmp(&v) {
                std::cmp::Ordering::Equal => {
                    found = true;
                    if left_sub == NIL {
                        left_sub = other.left[node as usize];
                    }
                    if right_sub == NIL {
                        right_sub = other.right[node as usize];
                    }
                    break;
                }
                std::cmp::Ordering::Less => {
                    if right_sub == NIL {
                        right_sub = node;
                    }
                    node = other.left[node as usize];
                }
                std::cmp::Ordering::Greater => {
                    if left_sub == NIL {
                        left_sub = node;
                    }
                    node = other.right[node as usize];
                }
            }
        }
        self.intersect_bounded(
            other,
            self.left[a as usize],
            left_sub,
            lo,
            va.saturating_sub(1),
            out,
        );
        if found {
            out.push(va);
        }
        self.intersect_bounded(
            other,
            self.right[a as usize],
            right_sub,
            va.saturating_add(1),
            hi,
            out,
        );
    }
}

impl KIntersect for TreapIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => {
                let mut v = a.values.clone();
                v.sort_unstable();
                out.extend(v);
            }
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n());
                let mut acc = Vec::new();
                order[0].intersect_pair_into(order[1], &mut acc);
                for ix in &order[2..] {
                    acc.retain(|&x| ix.contains(x));
                }
                out.extend(acc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn build_preserves_order_and_heap_property() {
        let set: SortedSet = (0..5000u32).map(|x| x * 3 + 1).collect();
        let t = TreapIndex::build(&set);
        assert_eq!(t.in_order(), set.as_slice());
        // Heap property: parent priority >= child priority.
        for i in 0..t.values.len() {
            for c in [t.left[i], t.right[i]] {
                if c != NIL {
                    assert!(t.priority[i] >= t.priority[c as usize]);
                }
            }
        }
    }

    #[test]
    fn contains_probes() {
        let set: SortedSet = (0..999u32).map(|x| x * 7).collect();
        let t = TreapIndex::build(&set);
        for x in 0..7000u32 {
            assert_eq!(t.contains(x), x % 7 == 0 && x < 999 * 7, "x={x}");
        }
    }

    #[test]
    fn pair_matches_reference() {
        let mut rng = StdRng::seed_from_u64(70);
        for trial in 0..30 {
            let n1 = rng.gen_range(0..600);
            let n2 = rng.gen_range(0..600);
            let u = rng.gen_range(1..2500u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let ta = TreapIndex::build(&a);
            let tb = TreapIndex::build(&b);
            assert_eq!(
                ta.intersect_pair_sorted(&tb),
                reference_intersection(&[a.as_slice(), b.as_slice()]),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let mut rng = StdRng::seed_from_u64(71);
        for k in 2..=4usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|_| {
                    let n = rng.gen_range(0..500);
                    (0..n).map(|_| rng.gen_range(0..1200u32)).collect()
                })
                .collect();
            let idx: Vec<TreapIndex> = sets.iter().map(TreapIndex::build).collect();
            let refs: Vec<&TreapIndex> = idx.iter().collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                TreapIndex::intersect_k_sorted(&refs),
                reference_intersection(&slices)
            );
        }
    }

    #[test]
    fn edge_cases() {
        let e = TreapIndex::build(&SortedSet::new());
        let one = TreapIndex::build(&SortedSet::from_unsorted(vec![5]));
        assert_eq!(e.intersect_pair_sorted(&one), Vec::<u32>::new());
        assert_eq!(one.intersect_pair_sorted(&one), vec![5]);
        let extremes = TreapIndex::build(&SortedSet::from_unsorted(vec![0, u32::MAX]));
        assert_eq!(extremes.intersect_pair_sorted(&extremes), vec![0, u32::MAX]);
    }

    #[test]
    fn space_overhead_is_the_papers_complaint() {
        // Section 2: trees are "typically not used … due to the required
        // space-overhead" — 4x a plain posting list here.
        let set: SortedSet = (0..10_000u32).collect();
        let t = TreapIndex::build(&set);
        assert!(t.size_in_bytes() >= set.len() * 4 * 4);
    }
}
