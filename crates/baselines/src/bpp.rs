//! **BPP** — the Bille–Pagh–Pagh algorithm \[6\] ("Fast Evaluation of
//! Union-Intersection Expressions"), the best known asymptotic bound
//! `O(n·(log² w)/w + k·r)` before the paper.
//!
//! The idea: map every element through a hash `h` to a short signature, so
//! the *images* `h(L₁), h(L₂)` occupy fewer bits and can be intersected more
//! cheaply; then recover the pre-images of the surviving signatures and
//! discard false positives.
//!
//! Per the paper's Section 4 implementation note ("We also simplified the
//! bit-manipulation in BPP so that it works faster in practice for small
//! w"), we implement the simplified variant: a fixed signature width of
//! [`SIG_BITS`] bits, elements stored reordered by `(signature, value)` so
//! each signature's pre-image set is a contiguous run, signature streams
//! intersected by a linear merge, and collisions resolved by merging the
//! value runs. The extra indirection and the reconciliation pass are exactly
//! the "number of complex operations … hidden as a constant in the
//! O()-notation" that make BPP slow in practice (Figure 4).

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::HashContext;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// Signature width in bits (24 keeps the expected number of colliding
/// signature pairs below one per million elements squared / 2^24, bounded
/// for the paper's 10M-element sets).
pub const SIG_BITS: u32 = 24;

/// A set preprocessed for BPP intersection.
#[derive(Debug, Clone)]
pub struct BppIndex {
    /// Signatures, ascending; parallel to `keys`.
    sigs: Vec<u32>,
    /// Elements ordered by `(signature, value)`.
    keys: Vec<Elem>,
    /// Hash parameters (must agree across intersected sets).
    a: u64,
    b: u64,
}

impl BppIndex {
    /// Preprocesses `set` under the context's hash seed.
    pub fn build(ctx: &HashContext, set: &SortedSet) -> Self {
        // Derive a dedicated signature hash from the context's permutation so
        // indexes from the same context are compatible.
        let g = ctx.g();
        let a = ((g.apply(0x5151_5151) as u64) << 32 | g.apply(0xabab_abab) as u64) | 1;
        let b = (g.apply(0x1234_5678) as u64) << 32 | g.apply(0x9abc_def0) as u64;
        let mut pairs: Vec<(u32, Elem)> = set.iter().map(|x| (sig(a, b, x), x)).collect();
        pairs.sort_unstable();
        let (sigs, keys) = pairs.into_iter().unzip();
        Self { sigs, keys, a, b }
    }
}

#[inline(always)]
fn sig(a: u64, b: u64, x: Elem) -> u32 {
    ((a.wrapping_mul(x as u64).wrapping_add(b)) >> (64 - SIG_BITS)) as u32
}

impl SetIndex for BppIndex {
    fn n(&self) -> usize {
        self.keys.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.sigs.len() * 4 + self.keys.len() * 4 + 16
    }
}

impl PairIntersect for BppIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        assert_eq!(
            (self.a, self.b),
            (other.a, other.b),
            "BPP indexes must share a HashContext"
        );
        let (mut i, mut j) = (0usize, 0usize);
        let (sa, sb) = (&self.sigs, &other.sigs);
        while i < sa.len() && j < sb.len() {
            let (x, y) = (sa[i], sb[j]);
            if x < y {
                i += 1;
            } else if y < x {
                j += 1;
            } else {
                // Matching signatures: reconcile the value runs.
                let run_a_end = run_end(sa, i);
                let run_b_end = run_end(sb, j);
                let (mut p, mut q) = (i, j);
                while p < run_a_end && q < run_b_end {
                    match self.keys[p].cmp(&other.keys[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(self.keys[p]);
                            p += 1;
                            q += 1;
                        }
                    }
                }
                i = run_a_end;
                j = run_b_end;
            }
        }
    }
}

#[inline]
fn run_end(sigs: &[u32], start: usize) -> usize {
    let s = sigs[start];
    let mut e = start + 1;
    while e < sigs.len() && sigs[e] == s {
        e += 1;
    }
    e
}

impl KIntersect for BppIndex {
    /// k sets by folding over pairwise signature merges, as \[6\] evaluates
    /// expressions bottom-up.
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => {
                let mut v = a.keys.clone();
                v.sort_unstable();
                out.extend(v);
            }
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n());
                let mut acc = order[0].intersect_pair_sorted(order[1]);
                for ix in &order[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    // Reuse the signature structure: probe each survivor.
                    acc.retain(|&x| {
                        let s = sig(ix.a, ix.b, x);
                        let lo = ix.sigs.partition_point(|&v| v < s);
                        let hi = run_end_or(lo, &ix.sigs, s);
                        ix.keys[lo..hi].binary_search(&x).is_ok()
                    });
                }
                out.extend(acc);
            }
        }
    }
}

#[inline]
fn run_end_or(lo: usize, sigs: &[u32], s: u32) -> usize {
    let mut e = lo;
    while e < sigs.len() && sigs[e] == s {
        e += 1;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx() -> HashContext {
        HashContext::new(606)
    }

    #[test]
    fn pair_matches_reference() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..25 {
            let n1 = rng.gen_range(0..600);
            let n2 = rng.gen_range(0..600);
            let u = rng.gen_range(1..2500u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let ia = BppIndex::build(&ctx, &a);
            let ib = BppIndex::build(&ctx, &b);
            assert_eq!(
                ia.intersect_pair_sorted(&ib),
                reference_intersection(&[a.as_slice(), b.as_slice()])
            );
        }
    }

    #[test]
    fn collisions_are_reconciled() {
        // Dense universe forces signature collisions at 2^24 signatures vs
        // values spread widely; correctness must not depend on luck.
        let ctx = ctx();
        let a: SortedSet = (0..50_000u32).map(|x| x * 2).collect();
        let b: SortedSet = (0..50_000u32).map(|x| x * 3).collect();
        let ia = BppIndex::build(&ctx, &a);
        let ib = BppIndex::build(&ctx, &b);
        assert_eq!(
            ia.intersect_pair_sorted(&ib),
            reference_intersection(&[a.as_slice(), b.as_slice()])
        );
    }

    #[test]
    fn k_way_matches_reference() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(13);
        for k in 2..=4usize {
            for _ in 0..8 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..500);
                        (0..n).map(|_| rng.gen_range(0..1200u32)).collect()
                    })
                    .collect();
                let idx: Vec<BppIndex> = sets.iter().map(|s| BppIndex::build(&ctx, s)).collect();
                let refs: Vec<&BppIndex> = idx.iter().collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                assert_eq!(
                    BppIndex::intersect_k_sorted(&refs),
                    reference_intersection(&slices)
                );
            }
        }
    }

    #[test]
    fn empty_and_mismatched_context() {
        let ctx = ctx();
        let e = BppIndex::build(&ctx, &SortedSet::new());
        let a = BppIndex::build(&ctx, &SortedSet::from_unsorted(vec![5, 6]));
        assert_eq!(e.intersect_pair_sorted(&a), Vec::<u32>::new());
        let other = BppIndex::build(&HashContext::new(1), &SortedSet::from_unsorted(vec![5]));
        assert!(std::panic::catch_unwind(|| a.intersect_pair_sorted(&other)).is_err());
    }
}
