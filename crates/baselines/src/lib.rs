//! # fsi-baselines — the competitor algorithms of Section 4
//!
//! Every technique the paper compares against, implemented from scratch over
//! the shared types of [`fsi_core`]:
//!
//! | Paper name | Type | Reference |
//! |---|---|---|
//! | Merge | [`MergeIndex`] | parallel scan of inverted lists |
//! | SkipList | [`SkipListIndex`] | Pugh \[18\] |
//! | Hash | [`HashSetIndex`] | hash-table probing |
//! | BPP | [`BppIndex`] | Bille, Pagh & Pagh \[6\] |
//! | Lookup | [`LookupIndex`] | Sanders & Transier \[19, 21\], `B = 32` |
//! | SvS | [`SvsIndex`] | small-vs-small w/ galloping |
//! | Adaptive | [`AdaptiveIndex`] | Demaine, López-Ortiz & Munro \[12, 13\] |
//! | BaezaYates | [`BaezaYatesIndex`] | Baeza-Yates \[1, 2\] |
//! | SmallAdaptive | [`SmallAdaptiveIndex`] | Barbay et al. \[5\] |
//! | Treap | [`TreapIndex`] | Blelloch & Reid-Miller \[7\] (§2 related work) |
//!
//! All implement [`fsi_core::SetIndex`], [`fsi_core::PairIntersect`] and
//! [`fsi_core::KIntersect`], so harnesses drive them interchangeably with
//! the paper's algorithms.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod baezayates;
pub mod bpp;
pub mod hashset;
pub mod lookup;
pub mod merge;
pub mod skiplist;
pub mod smalladaptive;
pub mod svs;
pub mod treap;

pub use adaptive::AdaptiveIndex;
pub use baezayates::BaezaYatesIndex;
pub use bpp::BppIndex;
pub use hashset::HashSetIndex;
pub use lookup::LookupIndex;
pub use merge::MergeIndex;
pub use skiplist::SkipListIndex;
pub use smalladaptive::SmallAdaptiveIndex;
pub use svs::SvsIndex;
pub use treap::TreapIndex;
