//! **SmallAdaptive** — the hybrid of Barbay, López-Ortiz, Lu & Salinger \[5\]
//! ("An experimental investigation of set intersection algorithms for text
//! searching"): like SvS it always draws the candidate from the set with the
//! *fewest remaining* elements, but like Adaptive it re-ranks the sets after
//! every probe, so a set that eliminates many candidates cheaply is consulted
//! early. Probes use galloping search over each set's remaining range.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::search::gallop;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// A plain sorted list; SmallAdaptive needs no auxiliary structure.
#[derive(Debug, Clone)]
pub struct SmallAdaptiveIndex {
    elems: Vec<Elem>,
}

impl SmallAdaptiveIndex {
    /// Wraps the sorted list.
    pub fn build(set: &SortedSet) -> Self {
        Self {
            elems: set.as_slice().to_vec(),
        }
    }

    /// Sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }
}

/// The SmallAdaptive loop over raw slices.
pub fn intersect_small_adaptive(sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        _ => {
            let k = sets.len();
            let mut cursors = vec![0usize; k];
            // Index order, re-sorted by remaining length each round.
            let mut order: Vec<usize> = (0..k).collect();
            loop {
                // Rank sets by remaining elements (k is tiny; insertion sort).
                order.sort_by_key(|&i| sets[i].len() - cursors[i]);
                let first = order[0];
                if cursors[first] >= sets[first].len() {
                    return;
                }
                let mut cand = sets[first][cursors[first]];
                cursors[first] += 1;
                // Probe the candidate through the remaining sets in rank
                // order; a miss promotes the overshoot and restarts.
                let mut confirmed = true;
                for &i in &order[1..] {
                    let s = sets[i];
                    let pos = gallop(s, cursors[i], cand);
                    cursors[i] = pos;
                    if pos >= s.len() {
                        return;
                    }
                    if s[pos] != cand {
                        cand = s[pos];
                        confirmed = false;
                        break;
                    }
                    cursors[i] = pos + 1;
                }
                if confirmed {
                    out.push(cand);
                } else {
                    // Drag the rank-0 cursor up to the new candidate so the
                    // next round starts from a consistent frontier.
                    let s = sets[first];
                    let pos = gallop(s, cursors[first], cand);
                    cursors[first] = pos;
                    if pos >= s.len() {
                        return;
                    }
                }
            }
        }
    }
}

impl SetIndex for SmallAdaptiveIndex {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4
    }
}

impl PairIntersect for SmallAdaptiveIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        intersect_small_adaptive(&[&self.elems, &other.elems], out);
    }
}

impl KIntersect for SmallAdaptiveIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        let slices: Vec<&[Elem]> = indexes.iter().map(|ix| ix.as_slice()).collect();
        intersect_small_adaptive(&slices, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn random_inputs_match_reference() {
        let mut rng = StdRng::seed_from_u64(61);
        for k in 1..=6usize {
            for trial in 0..15 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..600);
                        (0..n).map(|_| rng.gen_range(0..1400u32)).collect()
                    })
                    .collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                let mut out = Vec::new();
                intersect_small_adaptive(&slices, &mut out);
                assert_eq!(out, reference_intersection(&slices), "k={k} trial={trial}");
            }
        }
    }

    #[test]
    fn skewed_sizes() {
        let small: SortedSet = (0..20u32).map(|x| x * 50_000).collect();
        let mid: SortedSet = (0..10_000u32).map(|x| x * 100).collect();
        let large: SortedSet = (0..1_000_000u32).collect();
        let slices = [small.as_slice(), mid.as_slice(), large.as_slice()];
        let mut out = Vec::new();
        intersect_small_adaptive(&slices, &mut out);
        assert_eq!(out, reference_intersection(&slices));
    }

    #[test]
    fn empties_and_wrappers() {
        let e = SmallAdaptiveIndex::build(&SortedSet::new());
        let a = SmallAdaptiveIndex::build(&SortedSet::from_unsorted(vec![1, 3, 5]));
        assert_eq!(a.intersect_pair_sorted(&e), Vec::<u32>::new());
        assert_eq!(a.intersect_pair_sorted(&a), vec![1, 3, 5]);
        assert_eq!(
            SmallAdaptiveIndex::intersect_k_sorted(&[&a, &a, &a]),
            vec![1, 3, 5]
        );
    }
}
