//! **Adaptive** — the adaptive set-intersection algorithm of Demaine,
//! López-Ortiz & Munro \[12, 13\]: a round-robin *eliminator* walk. The current
//! eliminator value is galloped for in the next set (cyclically); a miss
//! promotes the overshoot to the new eliminator, a hit in `k−1` consecutive
//! sets outputs the value. The number of comparisons adapts to how
//! interleaved the sets actually are (their "proof complexity").

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::search::gallop;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// A plain sorted list; Adaptive needs no auxiliary structure.
#[derive(Debug, Clone)]
pub struct AdaptiveIndex {
    elems: Vec<Elem>,
}

impl AdaptiveIndex {
    /// Wraps the sorted list.
    pub fn build(set: &SortedSet) -> Self {
        Self {
            elems: set.as_slice().to_vec(),
        }
    }

    /// Sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }
}

/// The eliminator loop over raw slices.
pub fn intersect_adaptive(sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        _ => {
            let k = sets.len();
            if sets.iter().any(|s| s.is_empty()) {
                return;
            }
            let mut cursors = vec![0usize; k];
            // Eliminator: (value, index of the set it came from).
            let mut elim = sets[0][0];
            let mut owner = 0usize;
            cursors[0] = 1;
            let mut matched = 1usize; // sets known to contain `elim`
            let mut i = 1usize; // next set to probe
            loop {
                if i == owner {
                    i = (i + 1) % k;
                    continue;
                }
                let s = sets[i];
                let pos = gallop(s, cursors[i], elim);
                cursors[i] = pos;
                if pos >= s.len() {
                    return; // some set is exhausted: no further matches
                }
                if s[pos] == elim {
                    matched += 1;
                    cursors[i] = pos + 1;
                    if matched == k {
                        out.push(elim);
                        // Start a new eliminator from this set.
                        if cursors[i] >= s.len() {
                            return;
                        }
                        elim = s[cursors[i]];
                        owner = i;
                        cursors[i] += 1;
                        matched = 1;
                    }
                } else {
                    // Miss: the overshoot becomes the new eliminator.
                    elim = s[pos];
                    owner = i;
                    cursors[i] = pos + 1;
                    matched = 1;
                }
                i = (i + 1) % k;
            }
        }
    }
}

impl SetIndex for AdaptiveIndex {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4
    }
}

impl PairIntersect for AdaptiveIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        intersect_adaptive(&[&self.elems, &other.elems], out);
    }
}

impl KIntersect for AdaptiveIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        let slices: Vec<&[Elem]> = indexes.iter().map(|ix| ix.as_slice()).collect();
        intersect_adaptive(&slices, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn random_inputs_match_reference() {
        let mut rng = StdRng::seed_from_u64(41);
        for k in 1..=6usize {
            for trial in 0..15 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..500);
                        (0..n).map(|_| rng.gen_range(0..1000u32)).collect()
                    })
                    .collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                let mut out = Vec::new();
                intersect_adaptive(&slices, &mut out);
                assert_eq!(out, reference_intersection(&slices), "k={k} trial={trial}");
            }
        }
    }

    #[test]
    fn interleaved_blocks_favor_adaptivity() {
        // Two sets whose ranges barely interleave: adaptive skips in large
        // strides, but the result must still be exact.
        let a: SortedSet = (0..1000u32).chain(1_000_000..1_001_000).collect();
        let b: SortedSet = (500..1500u32).chain(1_000_500..1_001_500).collect();
        let mut out = Vec::new();
        intersect_adaptive(&[a.as_slice(), b.as_slice()], &mut out);
        assert_eq!(out, reference_intersection(&[a.as_slice(), b.as_slice()]));
    }

    #[test]
    fn identical_sets() {
        let s: SortedSet = (0..100u32).map(|x| x * 3).collect();
        let mut out = Vec::new();
        intersect_adaptive(&[s.as_slice(), s.as_slice(), s.as_slice()], &mut out);
        assert_eq!(out, s.as_slice());
    }

    #[test]
    fn empty_input() {
        let s: SortedSet = (0..10u32).collect();
        let e = SortedSet::new();
        let mut out = Vec::new();
        intersect_adaptive(&[s.as_slice(), e.as_slice()], &mut out);
        assert!(out.is_empty());
    }
}
