//! **BaezaYates** — the divide-and-conquer intersection of Baeza-Yates
//! \[1, 2\]: probe the median of the smaller set in the larger by binary
//! search, then recurse on the two halves. Expected
//! `O(n₁ log(n₂/n₁))` for sorted sequences; generalized to k sets by
//! iterating over the sets ascending by size, as in \[5\].

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::search::lower_bound;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// A plain sorted list; BaezaYates needs no auxiliary structure.
#[derive(Debug, Clone)]
pub struct BaezaYatesIndex {
    elems: Vec<Elem>,
}

impl BaezaYatesIndex {
    /// Wraps the sorted list.
    pub fn build(set: &SortedSet) -> Self {
        Self {
            elems: set.as_slice().to_vec(),
        }
    }

    /// Sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }
}

/// Recursive two-set intersection; output ascends (in-order traversal).
pub fn intersect_by2(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    // Keep the smaller sequence in the "probe" role at every level.
    if a.len() > b.len() {
        return intersect_by2(b, a, out);
    }
    if a.is_empty() || b.is_empty() {
        return;
    }
    let m = a.len() / 2;
    let med = a[m];
    let pos = lower_bound(b, 0, b.len(), med);
    intersect_by2(&a[..m], &b[..pos], out);
    let matched = pos < b.len() && b[pos] == med;
    if matched {
        out.push(med);
    }
    intersect_by2(&a[m + 1..], &b[pos + usize::from(matched)..], out);
}

/// k sets: fold ascending by size (the \[5\] generalization). The running
/// result is sorted, so it can stay in the "smaller sequence" role.
pub fn intersect_by_k(sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        _ => {
            let mut order: Vec<&[Elem]> = sets.to_vec();
            order.sort_by_key(|s| s.len());
            let mut acc = Vec::new();
            intersect_by2(order[0], order[1], &mut acc);
            for s in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                intersect_by2(&acc, s, &mut next);
                acc = next;
            }
            out.extend(acc);
        }
    }
}

impl SetIndex for BaezaYatesIndex {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4
    }
}

impl PairIntersect for BaezaYatesIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        intersect_by2(&self.elems, &other.elems, out);
    }
}

impl KIntersect for BaezaYatesIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        let slices: Vec<&[Elem]> = indexes.iter().map(|ix| ix.as_slice()).collect();
        intersect_by_k(&slices, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pair_matches_reference_and_is_sorted() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..30 {
            let n1 = rng.gen_range(0..700);
            let n2 = rng.gen_range(0..700);
            let u = rng.gen_range(1..2000u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let mut out = Vec::new();
            intersect_by2(a.as_slice(), b.as_slice(), &mut out);
            let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
            assert_eq!(out, expect, "output must already be ascending");
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let mut rng = StdRng::seed_from_u64(52);
        for k in 2..=5usize {
            for _ in 0..10 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..500);
                        (0..n).map(|_| rng.gen_range(0..1100u32)).collect()
                    })
                    .collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                let mut out = Vec::new();
                intersect_by_k(&slices, &mut out);
                assert_eq!(out, reference_intersection(&slices));
            }
        }
    }

    #[test]
    fn recursion_edges() {
        let mut out = Vec::new();
        intersect_by2(&[], &[1, 2, 3], &mut out);
        assert!(out.is_empty());
        intersect_by2(&[2], &[1, 2, 3], &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        let v: Vec<u32> = (0..100).collect();
        intersect_by2(&v, &v, &mut out);
        assert_eq!(out, v);
    }
}
