//! **Merge** — the inverted-index baseline: a parallel scan of sorted
//! posting lists (the "merge step" of merge sort), `O(|L₁| + |L₂|)`.
//!
//! Per the paper's implementation notes (Section 4), the inner loop is kept
//! branch-light and the postings are stored in one contiguous allocation.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// An uncompressed posting list (the baseline "index" is the sorted list
/// itself).
#[derive(Debug, Clone)]
pub struct MergeIndex {
    elems: Vec<Elem>,
}

impl MergeIndex {
    /// "Preprocessing" is a copy of the sorted list.
    pub fn build(set: &SortedSet) -> Self {
        Self {
            elems: set.as_slice().to_vec(),
        }
    }

    /// The sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }
}

/// Two-pointer linear merge of two sorted slices, appending matches.
pub fn intersect2_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        // Branch-light advance: both cursors move on equality.
        i += (x <= y) as usize;
        j += (y <= x) as usize;
        if x == y {
            out.push(x);
        }
    }
}

/// k-way parallel scan: advances all cursors toward a common candidate.
pub fn intersect_k_into(slices: &[&[Elem]], out: &mut Vec<Elem>) {
    match slices {
        [] => {}
        [a] => out.extend_from_slice(a),
        [a, b] => intersect2_into(a, b, out),
        _ => {
            let k = slices.len();
            let mut cursors = vec![0usize; k];
            'candidates: loop {
                if cursors[0] >= slices[0].len() {
                    return;
                }
                let mut cand = slices[0][cursors[0]];
                for i in 1..k {
                    let s = slices[i];
                    let c = &mut cursors[i];
                    while *c < s.len() && s[*c] < cand {
                        *c += 1;
                    }
                    if *c >= s.len() {
                        return;
                    }
                    if s[*c] != cand {
                        cand = s[*c];
                        let c0 = &mut cursors[0];
                        while *c0 < slices[0].len() && slices[0][*c0] < cand {
                            *c0 += 1;
                        }
                        continue 'candidates;
                    }
                }
                out.push(cand);
                cursors[0] += 1;
            }
        }
    }
}

impl SetIndex for MergeIndex {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4
    }
}

impl PairIntersect for MergeIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        intersect2_into(&self.elems, &other.elems, out);
    }
}

impl KIntersect for MergeIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        let slices: Vec<&[Elem]> = indexes.iter().map(|ix| ix.as_slice()).collect();
        intersect_k_into(&slices, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pairwise_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let n1 = rng.gen_range(0..500);
            let n2 = rng.gen_range(0..500);
            let u = rng.gen_range(1..1500u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let mut out = Vec::new();
            intersect2_into(a.as_slice(), b.as_slice(), &mut out);
            assert_eq!(out, reference_intersection(&[a.as_slice(), b.as_slice()]));
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=5usize {
            for _ in 0..10 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..400);
                        (0..n).map(|_| rng.gen_range(0..900u32)).collect()
                    })
                    .collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                let mut out = Vec::new();
                intersect_k_into(&slices, &mut out);
                assert_eq!(out, reference_intersection(&slices));
            }
        }
    }

    #[test]
    fn outputs_ascending() {
        let a = [1u32, 2, 3, 100, 200];
        let b = [2u32, 3, 100, 201];
        let mut out = Vec::new();
        intersect2_into(&a, &b, &mut out);
        assert_eq!(out, vec![2, 3, 100]);
    }

    #[test]
    fn index_wrappers() {
        let a = MergeIndex::build(&SortedSet::from_unsorted(vec![1, 4, 9]));
        let b = MergeIndex::build(&SortedSet::from_unsorted(vec![4, 9, 12]));
        assert_eq!(a.intersect_pair_sorted(&b), vec![4, 9]);
        assert_eq!(a.size_in_bytes(), 12);
        assert_eq!(MergeIndex::intersect_k_sorted(&[&a, &b]), vec![4, 9]);
    }
}
