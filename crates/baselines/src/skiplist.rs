//! **SkipList** — set intersection over skip lists (Pugh's cookbook \[18\]).
//!
//! Since the data is static (Section 4's implementation note), the list is
//! array-backed with deterministic promotion: level `l` keeps every
//! `SKIP^l`-th element (`p = 1/4`, Pugh's recommended fan-out). Seeking
//! starts from a *finger* (the previous match position), walks right on the
//! top level while the next tower key is below the target, then descends —
//! the textbook `O(log n)` search without per-node allocation.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// Fan-out between adjacent levels (`p = 1/4`).
const SKIP_LOG2: usize = 2;
const SKIP: usize = 1 << SKIP_LOG2;

/// A static, array-backed skip list.
#[derive(Debug, Clone)]
pub struct SkipListIndex {
    /// `levels\[0\]` is the full sorted list; `levels[l][i] = levels\[0\][i << (2l)]`.
    levels: Vec<Vec<Elem>>,
}

impl SkipListIndex {
    /// Builds the level hierarchy; `O(n)` extra space (geometric series).
    pub fn build(set: &SortedSet) -> Self {
        let mut levels = vec![set.as_slice().to_vec()];
        while levels.last().expect("non-empty").len() > SKIP {
            let prev = levels.last().expect("non-empty");
            let next: Vec<Elem> = prev.iter().step_by(SKIP).copied().collect();
            levels.push(next);
        }
        Self { levels }
    }

    /// Bottom-level sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.levels[0]
    }

    /// First bottom-level index `>= finger` whose value is `>= target`.
    pub fn seek(&self, target: Elem, finger: usize) -> usize {
        let n = self.levels[0].len();
        if finger >= n {
            return n;
        }
        // Climb to the highest level where walking right can help.
        let top = self.levels.len() - 1;
        let mut lvl = top;
        let mut pos = finger >> (SKIP_LOG2 * lvl);
        loop {
            let level = &self.levels[lvl];
            while pos + 1 < level.len() && level[pos + 1] < target {
                pos += 1;
            }
            if lvl == 0 {
                break;
            }
            pos <<= SKIP_LOG2;
            lvl -= 1;
        }
        // `pos` now points at the last element < target (or the finger);
        // advance past any remainder.
        let level0 = &self.levels[0];
        let mut pos = pos.max(finger);
        while pos < n && level0[pos] < target {
            pos += 1;
        }
        pos
    }

    /// Membership test via `seek`.
    pub fn contains(&self, x: Elem) -> bool {
        let p = self.seek(x, 0);
        p < self.levels[0].len() && self.levels[0][p] == x
    }
}

impl SetIndex for SkipListIndex {
    fn n(&self) -> usize {
        self.levels[0].len()
    }

    fn size_in_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * 4).sum()
    }
}

impl PairIntersect for SkipListIndex {
    /// Iterate the smaller list, seek in the larger with a moving finger.
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        let (small, large) = if self.n() <= other.n() {
            (self, other)
        } else {
            (other, self)
        };
        let mut finger = 0usize;
        let large0 = &large.levels[0];
        for &x in &small.levels[0] {
            finger = large.seek(x, finger);
            if finger >= large0.len() {
                break;
            }
            if large0[finger] == x {
                out.push(x);
            }
        }
    }
}

impl KIntersect for SkipListIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => out.extend_from_slice(a.as_slice()),
            [a, b] => a.intersect_pair_into(b, out),
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n());
                let small = order[0];
                let rest = &order[1..];
                let mut fingers = vec![0usize; rest.len()];
                'elems: for &x in small.as_slice() {
                    for (ix, f) in rest.iter().zip(fingers.iter_mut()) {
                        *f = ix.seek(x, *f);
                        if *f >= ix.n() {
                            break 'elems;
                        }
                        if ix.as_slice()[*f] != x {
                            continue 'elems;
                        }
                    }
                    out.push(x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use fsi_core::search::lower_bound;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn levels_shrink_geometrically() {
        let set: SortedSet = (0..1000u32).collect();
        let sl = SkipListIndex::build(&set);
        for w in sl.levels.windows(2) {
            assert_eq!(w[1].len(), w[0].len().div_ceil(SKIP));
        }
        // Space is a small multiple of the data.
        assert!(sl.size_in_bytes() < set.len() * 4 * 2);
    }

    #[test]
    fn seek_agrees_with_lower_bound() {
        let set: SortedSet = (0..5000u32).map(|x| x * 3).collect();
        let sl = SkipListIndex::build(&set);
        let v = sl.as_slice();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let target = rng.gen_range(0..16_000u32);
            let finger = rng.gen_range(0..=v.len());
            let expect =
                lower_bound(v, finger.min(v.len()), v.len(), target).max(finger.min(v.len()));
            assert_eq!(sl.seek(target, finger), expect, "t={target} f={finger}");
        }
    }

    #[test]
    fn pair_matches_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..25 {
            let n1 = rng.gen_range(0..400);
            let n2 = rng.gen_range(0..1500);
            let u = rng.gen_range(1..3000u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let ia = SkipListIndex::build(&a);
            let ib = SkipListIndex::build(&b);
            assert_eq!(
                ia.intersect_pair_sorted(&ib),
                reference_intersection(&[a.as_slice(), b.as_slice()])
            );
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in 2..=4usize {
            for _ in 0..10 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..500);
                        (0..n).map(|_| rng.gen_range(0..1200u32)).collect()
                    })
                    .collect();
                let idx: Vec<SkipListIndex> = sets.iter().map(SkipListIndex::build).collect();
                let refs: Vec<&SkipListIndex> = idx.iter().collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                assert_eq!(
                    SkipListIndex::intersect_k_sorted(&refs),
                    reference_intersection(&slices)
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny() {
        let e = SkipListIndex::build(&SortedSet::new());
        let one = SkipListIndex::build(&SortedSet::from_unsorted(vec![9]));
        assert_eq!(e.intersect_pair_sorted(&one), Vec::<u32>::new());
        assert_eq!(one.intersect_pair_sorted(&one), vec![9]);
        assert!(one.contains(9));
        assert!(!one.contains(8));
        assert_eq!(e.seek(5, 0), 0);
    }
}
