//! **SvS** ("small versus small") — the classic sorted-list algorithm: sort
//! the sets by size, take the smallest as the candidate list, and probe each
//! candidate into every other set by galloping search over a shrinking
//! range. With `|L₁| < |L₂|` this meets the
//! `log C(|L₁|+|L₂|, |L₁|) + |L₁|` comparison bound of Hwang & Lin \[16\].

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::search::gallop;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// A plain sorted list; SvS needs no auxiliary structure.
#[derive(Debug, Clone)]
pub struct SvsIndex {
    elems: Vec<Elem>,
}

impl SvsIndex {
    /// Wraps the sorted list.
    pub fn build(set: &SortedSet) -> Self {
        Self {
            elems: set.as_slice().to_vec(),
        }
    }

    /// Sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }
}

/// SvS over raw slices: intersects `sets` (any sizes, any count ≥ 1).
pub fn intersect_svs(sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        _ => {
            let mut order: Vec<&[Elem]> = sets.to_vec();
            order.sort_by_key(|s| s.len());
            let (small, rest) = order.split_first().expect("k >= 2");
            let mut fingers = vec![0usize; rest.len()];
            'cands: for &x in *small {
                for (s, f) in rest.iter().zip(fingers.iter_mut()) {
                    *f = gallop(s, *f, x);
                    if *f >= s.len() {
                        break 'cands;
                    }
                    if s[*f] != x {
                        continue 'cands;
                    }
                }
                out.push(x);
            }
        }
    }
}

impl SetIndex for SvsIndex {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4
    }
}

impl PairIntersect for SvsIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        intersect_svs(&[&self.elems, &other.elems], out);
    }
}

impl KIntersect for SvsIndex {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        let slices: Vec<&[Elem]> = indexes.iter().map(|ix| ix.as_slice()).collect();
        intersect_svs(&slices, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn random_inputs_match_reference() {
        let mut rng = StdRng::seed_from_u64(31);
        for k in 1..=5usize {
            for _ in 0..12 {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|i| {
                        let n = rng.gen_range(0..(300 * (i + 1)));
                        (0..n).map(|_| rng.gen_range(0..2000u32)).collect()
                    })
                    .collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                let mut out = Vec::new();
                intersect_svs(&slices, &mut out);
                assert_eq!(out, reference_intersection(&slices), "k={k}");
            }
        }
    }

    #[test]
    fn highly_skewed_is_fast_path_correct() {
        let small: SortedSet = (0..10u32).map(|x| x * 1_000_000).collect();
        let large: SortedSet = (0..3_000_000u32).step_by(3).collect();
        let mut out = Vec::new();
        intersect_svs(&[small.as_slice(), large.as_slice()], &mut out);
        assert_eq!(
            out,
            reference_intersection(&[small.as_slice(), large.as_slice()])
        );
    }

    #[test]
    fn wrappers() {
        let a = SvsIndex::build(&SortedSet::from_unsorted(vec![1, 5, 9]));
        let b = SvsIndex::build(&SortedSet::from_unsorted(vec![5, 9, 11]));
        assert_eq!(a.intersect_pair_sorted(&b), vec![5, 9]);
        assert_eq!(SvsIndex::intersect_k_sorted(&[&a, &b, &a]), vec![5, 9]);
        let e = SvsIndex::build(&SortedSet::new());
        assert_eq!(a.intersect_pair_sorted(&e), Vec::<u32>::new());
    }
}
