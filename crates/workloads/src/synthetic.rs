//! Synthetic set generators reproducing the evaluation setup of Section 4:
//! uniform random sets with exact control over sizes, intersection size and
//! size ratios.

use fsi_core::elem::{Elem, SortedSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples `n` **distinct** values uniformly from `[0, universe)`, sorted.
///
/// Dense requests (`n` close to `universe`) use selection sampling (Knuth's
/// Algorithm S, one pass over the universe); sparse requests draw with
/// rejection via sort+dedup rounds.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: usize, universe: u64) -> Vec<Elem> {
    assert!(universe <= (u32::MAX as u64) + 1, "universe exceeds u32");
    assert!(
        (n as u64) <= universe,
        "cannot draw {n} distinct from {universe}"
    );
    if n == 0 {
        return Vec::new();
    }
    if (n as u64) * 3 >= universe {
        // Dense: selection sampling.
        let mut out = Vec::with_capacity(n);
        let mut remaining = n as u64;
        for v in 0..universe {
            let left = universe - v;
            if rng.gen_range(0..left) < remaining {
                out.push(v as Elem);
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
        }
        out
    } else {
        // Sparse: oversample, dedup, top up.
        let mut out: Vec<Elem> = Vec::with_capacity(n + n / 8 + 16);
        loop {
            let need = n - out.len();
            out.extend((0..need + need / 8 + 8).map(|_| rng.gen_range(0..universe) as Elem));
            out.sort_unstable();
            out.dedup();
            if out.len() >= n {
                // Too many: drop a random subset to avoid biasing high values.
                while out.len() > n {
                    let i = rng.gen_range(0..out.len());
                    out.swap_remove(i);
                }
                out.sort_unstable();
                return out;
            }
        }
    }
}

/// Two sets with `|A| = n1`, `|B| = n2` and `|A ∩ B| = r` exactly, drawn from
/// `[0, universe)` (the generator behind Figures 4, 5 and 8 and the
/// ratio experiment).
pub fn pair_with_intersection<R: Rng + ?Sized>(
    rng: &mut R,
    n1: usize,
    n2: usize,
    r: usize,
    universe: u64,
) -> (SortedSet, SortedSet) {
    let mut sets = k_sets_with_intersection(rng, &[n1, n2], r, universe);
    let b = sets.pop().expect("two sets");
    let a = sets.pop().expect("two sets");
    (a, b)
}

/// `k` sets with prescribed sizes and `|⋂ L_i| = r` exactly: `r` shared
/// values plus pairwise-disjoint private remainders.
pub fn k_sets_with_intersection<R: Rng + ?Sized>(
    rng: &mut R,
    sizes: &[usize],
    r: usize,
    universe: u64,
) -> Vec<SortedSet> {
    assert!(
        sizes.iter().all(|&n| n >= r),
        "every set must be at least as large as the intersection"
    );
    let total: usize = sizes.iter().map(|&n| n - r).sum::<usize>() + r;
    let mut pool = sample_distinct(rng, total, universe);
    pool.shuffle(rng);
    let (shared, mut rest) = pool.split_at(r);
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (private, tail) = rest.split_at(n - r);
        rest = tail;
        let mut v = Vec::with_capacity(n);
        v.extend_from_slice(shared);
        v.extend_from_slice(private);
        out.push(SortedSet::from_unsorted(v));
    }
    out
}

/// `k` independent uniform sets of size `n` (the Figure 6 setup: IDs uniform
/// over `[0, 2·10^8]`, intersection left to chance).
pub fn k_sets_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    k: usize,
    n: usize,
    universe: u64,
) -> Vec<SortedSet> {
    (0..k)
        .map(|_| SortedSet::from_sorted_unchecked(sample_distinct(rng, n, universe)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_distinct_properties() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, u) in [
            (0usize, 10u64),
            (10, 10),
            (100, 120),
            (1000, 1u64 << 32),
            (5000, 10_000),
        ] {
            let v = sample_distinct(&mut rng, n, u);
            assert_eq!(v.len(), n, "n={n} u={u}");
            assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(v.iter().all(|&x| (x as u64) < u), "in range");
        }
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = sample_distinct(&mut rng, 50_000, 1 << 20);
        // Mean should be near the middle of the range.
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let mid = (1u64 << 19) as f64;
        assert!((mean - mid).abs() < mid * 0.05, "mean {mean} vs {mid}");
    }

    #[test]
    fn pair_has_exact_intersection() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n1, n2, r) in [(100, 100, 0), (100, 100, 1), (500, 2000, 73), (64, 64, 64)] {
            let (a, b) = pair_with_intersection(&mut rng, n1, n2, r, 1 << 24);
            assert_eq!(a.len(), n1);
            assert_eq!(b.len(), n2);
            assert_eq!(
                reference_intersection(&[a.as_slice(), b.as_slice()]).len(),
                r
            );
        }
    }

    #[test]
    fn k_sets_have_exact_intersection() {
        let mut rng = StdRng::seed_from_u64(4);
        let sizes = [300usize, 500, 800, 1000];
        let sets = k_sets_with_intersection(&mut rng, &sizes, 42, 1 << 26);
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        assert_eq!(reference_intersection(&slices).len(), 42);
        for (s, &n) in sets.iter().zip(&sizes) {
            assert_eq!(s.len(), n);
        }
    }

    #[test]
    fn uniform_k_sets_expected_overlap() {
        // Two uniform 10k sets from a 1M universe: E[r] = n²/U = 100.
        let mut rng = StdRng::seed_from_u64(5);
        let sets = k_sets_uniform(&mut rng, 2, 10_000, 1 << 20);
        let r = reference_intersection(&[sets[0].as_slice(), sets[1].as_slice()]).len();
        let expect = 10_000f64 * 10_000f64 / (1u64 << 20) as f64;
        assert!(
            (r as f64) > expect * 0.5 && (r as f64) < expect * 1.7,
            "r={r}, expected ≈{expect}"
        );
    }

    #[test]
    #[should_panic(expected = "at least as large")]
    fn rejects_r_larger_than_sets() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = k_sets_with_intersection(&mut rng, &[10, 5], 7, 1000);
    }
}
