//! Query-*stream* generation for the serving layer: sequences of
//! term-rank queries with Zipf-skewed term popularity.
//!
//! The synthetic/querylog modules generate *sets* with controlled shapes;
//! a serving benchmark instead needs a realistic *arrival stream* over a
//! fixed index. Real query logs are doubly skewed: term popularity follows
//! a power law, and whole queries repeat (which is what makes result
//! caching pay). Drawing each query's terms from a Zipf distribution over
//! term ranks produces both effects at once — popular terms co-occur
//! often, so popular term-sets recur.
//!
//! Keyword counts follow the paper's reported mixture (68% two-word, 23%
//! three-word, 6% four-word, 3% five-word).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a query stream.
#[derive(Debug, Clone)]
pub struct QueryStreamConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Vocabulary size; queries draw term ranks in `0..num_terms`.
    pub num_terms: usize,
    /// Zipf exponent of term popularity (≈1 for natural language; higher
    /// values skew harder and raise the repeat rate).
    pub zipf_exponent: f64,
    /// RNG seed (the stream is deterministic in it).
    pub seed: u64,
}

impl Default for QueryStreamConfig {
    fn default() -> Self {
        Self {
            num_queries: 10_000,
            num_terms: 1 << 12,
            zipf_exponent: 1.0,
            seed: 0x57_4e_a4,
        }
    }
}

/// Draws the keyword count from the paper's reported mixture.
fn draw_k<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    if u < 0.68 {
        2
    } else if u < 0.91 {
        3
    } else if u < 0.97 {
        4
    } else {
        5
    }
}

/// Generates the stream: each query is a set of distinct term ranks,
/// Zipf-popular terms appearing most often.
pub fn generate_stream(cfg: &QueryStreamConfig) -> Vec<Vec<usize>> {
    assert!(cfg.num_terms > 0, "need a vocabulary");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.num_terms, cfg.zipf_exponent);
    (0..cfg.num_queries)
        .map(|_| {
            let k = draw_k(&mut rng).min(cfg.num_terms);
            let mut terms: Vec<usize> = Vec::with_capacity(k);
            while terms.len() < k {
                let t = zipf.sample(&mut rng);
                if !terms.contains(&t) {
                    terms.push(t);
                }
            }
            terms
        })
        .collect()
}

/// Fraction of queries in `stream` whose (order-insensitive) term set
/// already appeared earlier — an upper bound on the hit rate an unbounded
/// result cache could reach on this stream.
pub fn repeat_rate(stream: &[Vec<usize>]) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    let mut seen = std::collections::HashSet::new();
    let mut repeats = 0usize;
    for q in stream {
        let mut key = q.clone();
        key.sort_unstable();
        if !seen.insert(key) {
            repeats += 1;
        }
    }
    repeats as f64 / stream.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> QueryStreamConfig {
        QueryStreamConfig {
            num_queries: n,
            num_terms: 256,
            zipf_exponent: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn queries_are_valid_term_sets() {
        let stream = generate_stream(&cfg(2000));
        assert_eq!(stream.len(), 2000);
        for q in &stream {
            assert!((2..=5).contains(&q.len()));
            assert!(q.iter().all(|&t| t < 256));
            let mut sorted = q.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), q.len(), "distinct terms within a query");
        }
    }

    #[test]
    fn keyword_mixture_matches_paper() {
        let stream = generate_stream(&cfg(8000));
        let frac =
            |k: usize| stream.iter().filter(|q| q.len() == k).count() as f64 / stream.len() as f64;
        assert!((frac(2) - 0.68).abs() < 0.04, "k=2: {}", frac(2));
        assert!((frac(3) - 0.23).abs() < 0.04, "k=3: {}", frac(3));
    }

    #[test]
    fn popular_terms_dominate() {
        let stream = generate_stream(&cfg(4000));
        let with_top10 = stream.iter().filter(|q| q.iter().any(|&t| t < 10)).count();
        // Zipf(s=1, n=256): the top-10 ranks carry ≈48% of the mass, so the
        // overwhelming majority of 2..5-term queries touch one.
        let frac = with_top10 as f64 / stream.len() as f64;
        assert!(frac > 0.6, "top-10 term coverage {frac}");
    }

    #[test]
    fn streams_repeat_enough_to_cache() {
        let stream = generate_stream(&cfg(4000));
        let rate = repeat_rate(&stream);
        assert!(rate > 0.05, "repeat rate {rate} too low for cache tests");
        assert!(rate < 0.9, "repeat rate {rate} suspiciously high");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(generate_stream(&cfg(50)), generate_stream(&cfg(50)));
        let other = QueryStreamConfig {
            seed: 12,
            ..cfg(50)
        };
        assert_ne!(generate_stream(&cfg(50)), generate_stream(&other));
    }

    #[test]
    fn tiny_vocabulary_caps_k() {
        let stream = generate_stream(&QueryStreamConfig {
            num_queries: 100,
            num_terms: 2,
            zipf_exponent: 1.0,
            seed: 1,
        });
        assert!(stream.iter().all(|q| q.len() <= 2));
    }
}
