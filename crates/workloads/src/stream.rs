//! Query-*stream* generation for the serving layer: sequences of
//! term-rank queries with Zipf-skewed term popularity.
//!
//! The synthetic/querylog modules generate *sets* with controlled shapes;
//! a serving benchmark instead needs a realistic *arrival stream* over a
//! fixed index. Real query logs are doubly skewed: term popularity follows
//! a power law, and whole queries repeat (which is what makes result
//! caching pay). Drawing each query's terms from a Zipf distribution over
//! term ranks produces both effects at once — popular terms co-occur
//! often, so popular term-sets recur.
//!
//! Keyword counts follow the paper's reported mixture (68% two-word, 23%
//! three-word, 6% four-word, 3% five-word).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a query stream.
#[derive(Debug, Clone)]
pub struct QueryStreamConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Vocabulary size; queries draw term ranks in `0..num_terms`.
    pub num_terms: usize,
    /// Zipf exponent of term popularity (≈1 for natural language; higher
    /// values skew harder and raise the repeat rate).
    pub zipf_exponent: f64,
    /// RNG seed (the stream is deterministic in it).
    pub seed: u64,
}

impl Default for QueryStreamConfig {
    fn default() -> Self {
        Self {
            num_queries: 10_000,
            num_terms: 1 << 12,
            zipf_exponent: 1.0,
            seed: 0x57_4e_a4,
        }
    }
}

/// Draws the keyword count from the paper's reported mixture.
fn draw_k<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    if u < 0.68 {
        2
    } else if u < 0.91 {
        3
    } else if u < 0.97 {
        4
    } else {
        5
    }
}

/// Generates the stream: each query is a set of distinct term ranks,
/// Zipf-popular terms appearing most often.
pub fn generate_stream(cfg: &QueryStreamConfig) -> Vec<Vec<usize>> {
    assert!(cfg.num_terms > 0, "need a vocabulary");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.num_terms, cfg.zipf_exponent);
    (0..cfg.num_queries)
        .map(|_| {
            let k = draw_k(&mut rng).min(cfg.num_terms);
            let mut terms: Vec<usize> = Vec::with_capacity(k);
            while terms.len() < k {
                let t = zipf.sample(&mut rng);
                if !terms.contains(&t) {
                    terms.push(t);
                }
            }
            terms
        })
        .collect()
}

/// Configuration of a **boolean** query stream: Zipf-popular terms
/// composed into `AND`/`OR`/`NOT` expressions — the traffic model the
/// serving layer and the boolean benchmark share.
#[derive(Debug, Clone)]
pub struct BooleanStreamConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Vocabulary size; queries draw term ranks in `0..num_terms`.
    pub num_terms: usize,
    /// Zipf exponent of term popularity.
    pub zipf_exponent: f64,
    /// Probability a query is a disjunction of conjunction groups (an
    /// `(… AND …) OR (… AND …)` shape) rather than one flat conjunction.
    pub or_probability: f64,
    /// Maximum number of OR'd groups (≥ 2 when the OR branch fires;
    /// values < 2 are treated as 2).
    pub or_arity: usize,
    /// Per-group probability of appending one `AND NOT term` exclusion
    /// (always attached to a group with at least one positive term, so
    /// every generated query is bounded and parses + normalizes cleanly).
    pub not_probability: f64,
    /// RNG seed (the stream is deterministic in it).
    pub seed: u64,
}

impl Default for BooleanStreamConfig {
    fn default() -> Self {
        Self {
            num_queries: 10_000,
            num_terms: 1 << 12,
            zipf_exponent: 1.0,
            or_probability: 0.35,
            or_arity: 3,
            not_probability: 0.25,
            seed: 0xb0_01_ea,
        }
    }
}

/// Draws `k` distinct Zipf-popular terms, in draw order (popular terms
/// surface in varying positions, so repeated term sets arrive reordered —
/// exactly what canonical cache keying has to absorb).
fn draw_terms<R: Rng + ?Sized>(rng: &mut R, zipf: &Zipf, k: usize) -> Vec<usize> {
    let mut terms: Vec<usize> = Vec::with_capacity(k);
    while terms.len() < k {
        let t = zipf.sample(rng);
        if !terms.contains(&t) {
            terms.push(t);
        }
    }
    terms
}

/// Generates a boolean query stream as surface-syntax strings (exercising
/// the `fsi-query` parser end-to-end). Every query is bounded: `NOT` only
/// appears conjoined with positive terms inside a group. Queries repeat
/// the way Zipf traffic repeats — with terms in fresh random order and
/// occasional duplicates — so the stream doubles as the canonical-keying
/// cache demonstration.
pub fn generate_boolean_stream(cfg: &BooleanStreamConfig) -> Vec<String> {
    assert!(cfg.num_terms > 0, "need a vocabulary");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.num_terms, cfg.zipf_exponent);
    (0..cfg.num_queries)
        .map(|_| {
            let groups = if rng.gen::<f64>() < cfg.or_probability {
                rng.gen_range(2..=cfg.or_arity.max(2))
            } else {
                1
            };
            let rendered: Vec<String> = (0..groups)
                .map(|_| {
                    let k = draw_k(&mut rng).min(cfg.num_terms);
                    let mut terms = draw_terms(&mut rng, &zipf, k);
                    // Occasionally duplicate a term in place — the dedup
                    // rewrite (and the canonical cache key) must absorb it.
                    if terms.len() > 1 && rng.gen::<f64>() < 0.15 {
                        let dup = terms[rng.gen_range(0..terms.len())];
                        terms.push(dup);
                    }
                    let mut atoms: Vec<String> = terms.iter().map(|t| format!("t{t}")).collect();
                    if rng.gen::<f64>() < cfg.not_probability {
                        // Exclude a term not already in the group.
                        let not_term = loop {
                            let t = zipf.sample(&mut rng);
                            if !terms.contains(&t) || cfg.num_terms <= k + 1 {
                                break t;
                            }
                        };
                        atoms.push(format!("NOT t{not_term}"));
                    }
                    // Alternate implicit and explicit AND spellings so the
                    // parser's juxtaposition path stays exercised.
                    let joined = if rng.gen::<bool>() {
                        atoms.join(" ")
                    } else {
                        atoms.join(" AND ")
                    };
                    if groups > 1 {
                        format!("({joined})")
                    } else {
                        joined
                    }
                })
                .collect();
            rendered.join(" OR ")
        })
        .collect()
}

/// Fraction of queries in `stream` whose (order-insensitive) term set
/// already appeared earlier — an upper bound on the hit rate an unbounded
/// result cache could reach on this stream.
pub fn repeat_rate(stream: &[Vec<usize>]) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    let mut seen = std::collections::HashSet::new();
    let mut repeats = 0usize;
    for q in stream {
        let mut key = q.clone();
        key.sort_unstable();
        if !seen.insert(key) {
            repeats += 1;
        }
    }
    repeats as f64 / stream.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> QueryStreamConfig {
        QueryStreamConfig {
            num_queries: n,
            num_terms: 256,
            zipf_exponent: 1.0,
            seed: 11,
        }
    }

    #[test]
    fn queries_are_valid_term_sets() {
        let stream = generate_stream(&cfg(2000));
        assert_eq!(stream.len(), 2000);
        for q in &stream {
            assert!((2..=5).contains(&q.len()));
            assert!(q.iter().all(|&t| t < 256));
            let mut sorted = q.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), q.len(), "distinct terms within a query");
        }
    }

    #[test]
    fn keyword_mixture_matches_paper() {
        let stream = generate_stream(&cfg(8000));
        let frac =
            |k: usize| stream.iter().filter(|q| q.len() == k).count() as f64 / stream.len() as f64;
        assert!((frac(2) - 0.68).abs() < 0.04, "k=2: {}", frac(2));
        assert!((frac(3) - 0.23).abs() < 0.04, "k=3: {}", frac(3));
    }

    #[test]
    fn popular_terms_dominate() {
        let stream = generate_stream(&cfg(4000));
        let with_top10 = stream.iter().filter(|q| q.iter().any(|&t| t < 10)).count();
        // Zipf(s=1, n=256): the top-10 ranks carry ≈48% of the mass, so the
        // overwhelming majority of 2..5-term queries touch one.
        let frac = with_top10 as f64 / stream.len() as f64;
        assert!(frac > 0.6, "top-10 term coverage {frac}");
    }

    #[test]
    fn streams_repeat_enough_to_cache() {
        let stream = generate_stream(&cfg(4000));
        let rate = repeat_rate(&stream);
        assert!(rate > 0.05, "repeat rate {rate} too low for cache tests");
        assert!(rate < 0.9, "repeat rate {rate} suspiciously high");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(generate_stream(&cfg(50)), generate_stream(&cfg(50)));
        let other = QueryStreamConfig {
            seed: 12,
            ..cfg(50)
        };
        assert_ne!(generate_stream(&cfg(50)), generate_stream(&other));
    }

    fn bool_cfg(n: usize) -> BooleanStreamConfig {
        BooleanStreamConfig {
            num_queries: n,
            num_terms: 128,
            zipf_exponent: 1.0,
            or_probability: 0.5,
            or_arity: 3,
            not_probability: 0.4,
            seed: 9,
        }
    }

    #[test]
    fn boolean_queries_all_compile_and_stay_in_vocabulary() {
        let stream = generate_boolean_stream(&bool_cfg(1500));
        assert_eq!(stream.len(), 1500);
        for q in &stream {
            let norm = fsi_query::compile(q)
                .unwrap_or_else(|e| panic!("generated query {q:?} failed to compile: {e}"));
            assert!(
                norm.terms().iter().all(|&t| t < 128),
                "{q:?} out of vocabulary"
            );
        }
    }

    #[test]
    fn boolean_stream_mixes_shapes() {
        let stream = generate_boolean_stream(&bool_cfg(3000));
        let with_or = stream.iter().filter(|q| q.contains(" OR ")).count() as f64;
        let with_not = stream.iter().filter(|q| q.contains("NOT ")).count() as f64;
        let n = stream.len() as f64;
        // OR fires at the configured probability; NOT at least per-group.
        assert!(
            (with_or / n - 0.5).abs() < 0.06,
            "OR fraction {}",
            with_or / n
        );
        assert!(with_not / n > 0.35, "NOT fraction {}", with_not / n);
        // Shape knobs at zero produce pure conjunctions.
        let flat = generate_boolean_stream(&BooleanStreamConfig {
            or_probability: 0.0,
            not_probability: 0.0,
            ..bool_cfg(500)
        });
        assert!(flat.iter().all(|q| !q.contains("OR") && !q.contains("NOT")));
    }

    #[test]
    fn boolean_streams_repeat_canonically() {
        // Zipf skew must produce queries that are *equivalent after
        // canonicalization* (often with different surface order) — the
        // property the cache demonstration rides on.
        let stream = generate_boolean_stream(&BooleanStreamConfig {
            num_terms: 24,
            ..bool_cfg(2000)
        });
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for q in &stream {
            let key = fsi_query::encode(&fsi_query::compile(q).expect("compiles"));
            if !seen.insert(key) {
                repeats += 1;
            }
        }
        let rate = repeats as f64 / stream.len() as f64;
        assert!(rate > 0.05, "canonical repeat rate {rate} too low");
        // …and strictly more repeats than raw-string matching finds, i.e.
        // some repeats are reorderings/respellings only canonicalization
        // unifies.
        let mut raw_seen = std::collections::HashSet::new();
        let raw_repeats = stream
            .iter()
            .filter(|q| !raw_seen.insert((*q).clone()))
            .count();
        assert!(
            repeats > raw_repeats,
            "canonical {repeats} vs raw {raw_repeats}"
        );
    }

    #[test]
    fn boolean_stream_is_deterministic_in_seed() {
        assert_eq!(
            generate_boolean_stream(&bool_cfg(80)),
            generate_boolean_stream(&bool_cfg(80))
        );
        let other = BooleanStreamConfig {
            seed: 10,
            ..bool_cfg(80)
        };
        assert_ne!(
            generate_boolean_stream(&bool_cfg(80)),
            generate_boolean_stream(&other)
        );
    }

    #[test]
    fn tiny_vocabulary_caps_k() {
        let stream = generate_stream(&QueryStreamConfig {
            num_queries: 100,
            num_terms: 2,
            zipf_exponent: 1.0,
            seed: 1,
        });
        assert!(stream.iter().all(|q| q.len() <= 2));
    }
}
