//! A Zipf (power-law) sampler for term-frequency modelling — the document
//! frequency distribution real posting lists follow, used by the synthetic
//! corpus that stands in for the paper's 8M-page Wikipedia collection.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank) ∝ 1/(rank+1)^s`. Sampling is by binary search over the
/// precomputed CDF (`O(log n)` per draw).
///
/// The CDF is accumulated term by term (no closed-form generalized
/// harmonic `((n^{1-s} − 1)/(1 − s)`-style formula), so the `s → 1.0` edge
/// involves no division by `1 − s` and cannot blow up; `s = 0` is the
/// uniform distribution. The first term is exactly `1.0`, so the
/// normalizer is always ≥ 1 and never divides by zero, even when huge `s`
/// underflows every later term to `0`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for `n ≥ 1` ranks with finite exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc; // ≥ 1.0: the rank-0 term is exactly 1.
        for c in cdf.iter_mut() {
            *c = (*c / total).min(1.0);
        }
        // Rounding must never leave the tail short of 1.0 (a sampled
        // u ∈ [last, 1) would otherwise need the `.min(len-1)` clamp to
        // stay in range; make the CDF exact instead of leaning on it).
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff there are no ranks (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut top10 = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // Σ_{r<10} 1/(r+1) / H_10000 ≈ 2.93/9.79 ≈ 0.30.
        let frac = top10 as f64 / trials as f64;
        assert!(frac > 0.2 && frac < 0.4, "frac={frac}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 1.2);
        let sum: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_cover_valid_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    fn assert_well_formed(z: &Zipf, n: usize) {
        assert_eq!(z.len(), n);
        assert!(z.cdf.windows(2).all(|w| w[0] <= w[1]), "monotone CDF");
        assert!(z.cdf.iter().all(|&c| (0.0..=1.0).contains(&c)));
        assert_eq!(*z.cdf.last().unwrap(), 1.0, "tail is exactly 1");
        let pmf_sum: f64 = (0..n).map(|r| z.pmf(r)).sum();
        assert!((pmf_sum - 1.0).abs() < 1e-9, "pmf sums to 1: {pmf_sum}");
        assert!((0..n).all(|r| z.pmf(r) >= 0.0), "non-negative pmf");
    }

    #[test]
    fn edge_exponents_stay_well_formed() {
        // The s → 1.0 neighbourhood (the classic-Zipf edge where
        // closed-form harmonic formulas divide by 1 − s), exactly 1.0,
        // s = 0 (uniform), and a huge s that underflows every tail term.
        for s in [0.0, 1.0 - 1e-12, 1.0, 1.0 + 1e-12, 4.0, 300.0] {
            for n in [1usize, 2, 3, 1000] {
                let z = Zipf::new(n, s);
                assert_well_formed(&z, n);
            }
        }
        // s = 0 really is uniform.
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12, "rank {r}: {}", z.pmf(r));
        }
        // Huge s concentrates all sampling mass on rank 0.
        let z = Zipf::new(1000, 300.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..500).all(|_| z.sample(&mut rng) == 0));
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for s in [0.0, 0.5, 1.0, 10.0] {
            let z = Zipf::new(1, s);
            assert_well_formed(&z, 1);
            assert!((z.pmf(0) - 1.0).abs() < 1e-12);
            for _ in 0..100 {
                assert_eq!(z.sample(&mut rng), 0);
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn arbitrary_parameters_yield_valid_distributions(
            n in 1usize..400,
            // Dense coverage around the s = 1 edge plus the broad range.
            s_millis in 0usize..4000,
        ) {
            let s = s_millis as f64 / 1000.0;
            let z = Zipf::new(n, s);
            assert_well_formed(&z, n);
            let mut rng = StdRng::seed_from_u64((n as u64) << 12 | s_millis as u64);
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
            // Mass is non-increasing in rank for every s ≥ 0.
            for r in 1..n {
                prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
            }
        }
    }
}
