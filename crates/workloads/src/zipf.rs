//! A Zipf (power-law) sampler for term-frequency modelling — the document
//! frequency distribution real posting lists follow, used by the synthetic
//! corpus that stands in for the paper's 8M-page Wikipedia collection.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank) ∝ 1/(rank+1)^s`. Sampling is by binary search over the
/// precomputed CDF (`O(log n)` per draw).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s > 0.0, "exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff there are no ranks (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut top10 = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // Σ_{r<10} 1/(r+1) / H_10000 ≈ 2.93/9.79 ≈ 0.30.
        let frac = top10 as f64 / trials as f64;
        assert!(frac > 0.2 && frac < 0.4, "frac={frac}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 1.2);
        let sum: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_cover_valid_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }
}
