//! The "real data" workload model (Section 4, "Experiment on Real Data").
//!
//! The paper drives its real-data experiments with the 10⁴ most frequent
//! Bing queries over 8M Wikipedia pages. That query log is proprietary, so
//! this module generates a synthetic log matched to every workload statistic
//! the paper reports — which is all the intersection algorithms can observe:
//!
//! * keyword-count mixture: 68% two-word, 23% three-word, 6% four-word
//!   (remaining 3% five-word) queries;
//! * set-size ratios (with `|L₁| ≤ … ≤ |L_k|`): mean `|L₁|/|L₂|` ≈ 0.21 for
//!   k=2, ≈ 0.31 for k=3 (and `|L₁|/|L₃|` ≈ 0.09), ≈ 0.36 for k=4 (and
//!   `|L₁|/|L₄|` ≈ 0.06);
//! * mean intersection-to-smallest-set ratio `r/|L₁|` ≈ 0.19.
//!
//! Ratios are drawn log-uniformly with ranges calibrated so the *means*
//! match (a log-uniform on `[a, 1]` has mean `(1−a)/ln(1/a)`); the
//! calibration is asserted by tests.
//!
//! A second profile reproduces the introduction's Bing **Shopping** statistic
//! (94% of queries have `r ≤ n₁/10`, 76% have `r ≤ n₁/100`) with a more
//! skewed intersection-ratio range.
//!
//! Generation is two-phase: [`plan`] draws the cheap per-query shape
//! (`k`, sizes, `r`) and [`QueryPlan::materialize`] builds the actual sets, so
//! statistics can be computed over large logs without allocating gigabytes.

use crate::synthetic::k_sets_with_intersection;
use fsi_core::elem::SortedSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Which reported workload the generator imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadProfile {
    /// The Figure 7/12 web-search workload (`r/|L₁|` mean ≈ 0.19).
    WebSearch,
    /// The introduction's Bing Shopping workload (94% / 76% statistic).
    Shopping,
}

/// Configuration for query-log generation.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Divides the paper's set sizes (scale 1 ⇒ |L₁| up to 10⁶).
    pub scale: usize,
    /// Document-ID universe.
    pub universe: u64,
    /// RNG seed (the log is deterministic in it).
    pub seed: u64,
    /// Workload profile.
    pub profile: WorkloadProfile,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        Self {
            num_queries: 200,
            scale: 8,
            universe: 1 << 31,
            seed: 0xb1f6,
            profile: WorkloadProfile::WebSearch,
        }
    }
}

/// The shape of one query: set sizes (ascending) and exact intersection size.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// `|L₁| ≤ … ≤ |L_k|`.
    pub sizes: Vec<usize>,
    /// Exact intersection size `r ≤ |L₁|`.
    pub r: usize,
    /// Per-plan RNG seed for materialization.
    pub seed: u64,
}

impl QueryPlan {
    /// Number of keywords `k`.
    pub fn k(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the smallest set `|L₁|`.
    pub fn n1(&self) -> usize {
        self.sizes.first().copied().unwrap_or(0)
    }

    /// Builds the actual sets (exact sizes and intersection).
    pub fn materialize(&self, universe: u64) -> Query {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sets = k_sets_with_intersection(&mut rng, &self.sizes, self.r, universe);
        Query { sets, r: self.r }
    }
}

/// One materialized query: `k` posting lists, ascending by size.
#[derive(Debug, Clone)]
pub struct Query {
    /// The sets, ascending by size (`|L₁| ≤ … ≤ |L_k|`).
    pub sets: Vec<SortedSet>,
    /// The exact intersection size.
    pub r: usize,
}

impl Query {
    /// Number of keywords `k`.
    pub fn k(&self) -> usize {
        self.sets.len()
    }

    /// Size of the smallest set `|L₁|`.
    pub fn n1(&self) -> usize {
        self.sets.first().map_or(0, |s| s.len())
    }
}

/// Log-uniform draw from `[lo, hi]`.
fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(0.0 < lo && lo <= hi);
    (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
}

/// Draws the keyword count from the paper's mixture.
fn draw_k<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    if u < 0.68 {
        2
    } else if u < 0.91 {
        3
    } else if u < 0.97 {
        4
    } else {
        5
    }
}

/// Draws `q_i = n₁/n_i` for `i = 2..k`, decreasing, calibrated per the
/// paper's reported means.
fn draw_ratios<R: Rng + ?Sized>(rng: &mut R, k: usize) -> Vec<f64> {
    match k {
        2 => vec![log_uniform(rng, 0.01, 1.0)], // mean ≈ 0.21
        3 => {
            let q2 = log_uniform(rng, 0.05, 1.0); // mean ≈ 0.32
            let q3 = q2 * log_uniform(rng, 0.02, 1.0); // mean ≈ 0.32·0.25 ≈ 0.08
            vec![q2, q3]
        }
        _ => {
            let q2 = log_uniform(rng, 0.08, 1.0); // mean ≈ 0.36
            let qk = q2 * log_uniform(rng, 0.008, 1.0); // mean ≈ 0.36·0.21 ≈ 0.07
                                                        // Geometric interpolation for the middle sets.
            let steps = k - 2;
            let mut qs = Vec::with_capacity(k - 1);
            qs.push(q2);
            for i in 1..=steps {
                let frac = i as f64 / steps as f64;
                qs.push(q2 * (qk / q2).powf(frac));
            }
            qs
        }
    }
}

/// Intersection-ratio range per profile (log-uniform on `[lo, hi]`).
fn rho_range(profile: WorkloadProfile) -> (f64, f64) {
    match profile {
        WorkloadProfile::WebSearch => (0.01, 0.9), // mean ≈ 0.197
        WorkloadProfile::Shopping => (1e-6, 0.2),  // P[ρ≤0.1] ≈ 0.94, P[ρ≤0.01] ≈ 0.76
    }
}

/// Draws the query plans (cheap: no set materialization).
pub fn plan(cfg: &QueryLogConfig) -> Vec<QueryPlan> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scale = cfg.scale.max(1) as f64;
    let (rho_lo, rho_hi) = rho_range(cfg.profile);
    (0..cfg.num_queries)
        .map(|_| {
            let k = draw_k(&mut rng);
            let n1 = (log_uniform(&mut rng, 1_000.0, 1_000_000.0) / scale)
                .round()
                .max(16.0) as usize;
            // The corpus caps posting-list lengths (the paper's collection
            // has 8M documents), scaled like everything else.
            let max_len = ((8_000_000 / cfg.scale.max(1)) as u64).min(cfg.universe / 8) as usize;
            let mut sizes = vec![n1];
            for q in draw_ratios(&mut rng, k) {
                let n = (n1 as f64 / q).round() as usize;
                sizes.push(n.clamp(n1, max_len.max(n1)));
            }
            sizes.sort_unstable();
            let rho = log_uniform(&mut rng, rho_lo, rho_hi);
            let r = ((rho * n1 as f64).round() as usize).min(n1);
            QueryPlan {
                sizes,
                r,
                seed: rng.gen(),
            }
        })
        .collect()
}

/// Plans and materializes the full log.
pub fn generate(cfg: &QueryLogConfig) -> Vec<Query> {
    plan(cfg)
        .iter()
        .map(|p| p.materialize(cfg.universe))
        .collect()
}

/// Aggregate statistics over query plans, mirroring what the paper reports.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    /// Query count per keyword count.
    pub by_k: BTreeMap<usize, usize>,
    /// Mean `|L₁|/|L₂|` per keyword count.
    pub mean_ratio_12: BTreeMap<usize, f64>,
    /// Mean `|L₁|/|L_k|` per keyword count.
    pub mean_ratio_1k: BTreeMap<usize, f64>,
    /// Mean `r/|L₁|`.
    pub mean_r_over_n1: f64,
    /// Fraction of queries with `r ≤ n₁/10` (the intro's "one order of
    /// magnitude smaller" statistic).
    pub frac_r_le_tenth: f64,
    /// Fraction with `r ≤ n₁/100`.
    pub frac_r_le_hundredth: f64,
}

/// Measures [`WorkloadStats`] from plans.
pub fn measure(plans: &[QueryPlan]) -> WorkloadStats {
    let mut by_k = BTreeMap::new();
    let mut sum_12: BTreeMap<usize, f64> = BTreeMap::new();
    let mut sum_1k: BTreeMap<usize, f64> = BTreeMap::new();
    let mut sum_rho = 0.0f64;
    let mut le_tenth = 0usize;
    let mut le_hundredth = 0usize;
    for q in plans {
        let k = q.k();
        *by_k.entry(k).or_insert(0) += 1;
        let n1 = q.n1() as f64;
        if q.sizes.len() >= 2 {
            *sum_12.entry(k).or_insert(0.0) += n1 / q.sizes[1] as f64;
            *sum_1k.entry(k).or_insert(0.0) += n1 / q.sizes[k - 1] as f64;
        }
        sum_rho += q.r as f64 / n1;
        if (q.r as f64) <= n1 / 10.0 {
            le_tenth += 1;
        }
        if (q.r as f64) <= n1 / 100.0 {
            le_hundredth += 1;
        }
    }
    let total = plans.len().max(1) as f64;
    let avg = |sums: BTreeMap<usize, f64>, by_k: &BTreeMap<usize, usize>| {
        sums.into_iter()
            .map(|(k, s)| (k, s / by_k[&k] as f64))
            .collect()
    };
    WorkloadStats {
        mean_ratio_12: avg(sum_12, &by_k),
        mean_ratio_1k: avg(sum_1k, &by_k),
        by_k,
        mean_r_over_n1: sum_rho / total,
        frac_r_le_tenth: le_tenth as f64 / total,
        frac_r_le_hundredth: le_hundredth as f64 / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;

    fn small_cfg(profile: WorkloadProfile, n: usize) -> QueryLogConfig {
        QueryLogConfig {
            num_queries: n,
            scale: 256,
            universe: 1 << 26,
            seed: 7,
            profile,
        }
    }

    #[test]
    fn planned_r_is_exact_after_materialization() {
        let log = generate(&small_cfg(WorkloadProfile::WebSearch, 15));
        for q in &log {
            let slices: Vec<&[u32]> = q.sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(reference_intersection(&slices).len(), q.r);
            assert!(q.sets.windows(2).all(|w| w[0].len() <= w[1].len()));
        }
    }

    #[test]
    fn keyword_mixture_matches_paper() {
        let plans = plan(&small_cfg(WorkloadProfile::WebSearch, 4000));
        let stats = measure(&plans);
        let frac = |k: usize| *stats.by_k.get(&k).unwrap_or(&0) as f64 / plans.len() as f64;
        assert!((frac(2) - 0.68).abs() < 0.04, "k=2: {}", frac(2));
        assert!((frac(3) - 0.23).abs() < 0.04, "k=3: {}", frac(3));
        assert!((frac(4) - 0.06).abs() < 0.03, "k=4: {}", frac(4));
    }

    #[test]
    fn ratio_means_match_paper() {
        let plans = plan(&small_cfg(WorkloadProfile::WebSearch, 6000));
        let stats = measure(&plans);
        // Paper: 0.21 (k=2), 0.31 / 0.09 (k=3), 0.36 / 0.06 (k=4).
        assert!(
            (stats.mean_ratio_12[&2] - 0.21).abs() < 0.06,
            "{:?}",
            stats.mean_ratio_12
        );
        assert!(
            (stats.mean_ratio_12[&3] - 0.31).abs() < 0.08,
            "{:?}",
            stats.mean_ratio_12
        );
        assert!(
            (stats.mean_ratio_1k[&3] - 0.09).abs() < 0.05,
            "{:?}",
            stats.mean_ratio_1k
        );
        assert!(
            (stats.mean_ratio_12[&4] - 0.36).abs() < 0.10,
            "{:?}",
            stats.mean_ratio_12
        );
        assert!(
            (stats.mean_ratio_1k[&4] - 0.06).abs() < 0.05,
            "{:?}",
            stats.mean_ratio_1k
        );
        // Mean r/|L1| ≈ 0.19.
        assert!(
            (stats.mean_r_over_n1 - 0.19).abs() < 0.05,
            "{}",
            stats.mean_r_over_n1
        );
    }

    #[test]
    fn shopping_profile_matches_intro_statistic() {
        let plans = plan(&small_cfg(WorkloadProfile::Shopping, 6000));
        let stats = measure(&plans);
        assert!(
            (stats.frac_r_le_tenth - 0.94).abs() < 0.04,
            "tenth: {}",
            stats.frac_r_le_tenth
        );
        assert!(
            (stats.frac_r_le_hundredth - 0.76).abs() < 0.05,
            "hundredth: {}",
            stats.frac_r_le_hundredth
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small_cfg(WorkloadProfile::WebSearch, 5));
        let b = generate(&small_cfg(WorkloadProfile::WebSearch, 5));
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.r, qb.r);
            assert_eq!(qa.sets.len(), qb.sets.len());
            for (sa, sb) in qa.sets.iter().zip(&qb.sets) {
                assert_eq!(sa.as_slice(), sb.as_slice());
            }
        }
    }
}
