//! # fsi-workloads — evaluation workload generators
//!
//! Reproduces the data side of the paper's Section 4:
//!
//! * [`synthetic`] — uniform random sets with exact `(n_i, r, ratio, k)`
//!   control (Figures 4, 5, 6, 8 and the size-ratio experiment);
//! * [`querylog`] — the Bing/Wikipedia "real data" workload model, matched to
//!   all the statistics the paper reports (Figures 7, 9, 12 and the
//!   introduction's Shopping statistic);
//! * [`zipf`] — power-law sampling for the synthetic corpus;
//! * [`stream`] — Zipf-skewed query *streams* (term-rank sequences) for
//!   the serving layer, where whole-query repetition is what a result
//!   cache feeds on.

#![forbid(unsafe_code)]

pub mod querylog;
pub mod stream;
pub mod synthetic;
pub mod zipf;

pub use querylog::{
    generate as generate_query_log, measure as measure_workload, plan as plan_query_log, Query,
    QueryLogConfig, QueryPlan, WorkloadProfile, WorkloadStats,
};
pub use stream::{generate_stream, repeat_rate, QueryStreamConfig};
pub use synthetic::{
    k_sets_uniform, k_sets_with_intersection, pair_with_intersection, sample_distinct,
};
pub use zipf::Zipf;
