//! Criterion micro-benchmarks mirroring the paper's figures on reduced
//! sizes (one group per figure; the `paper` binary runs the full-scale
//! parameter sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsi_compress::{EliasCode, GroupCoding};
use fsi_core::elem::SortedSet;
use fsi_core::hash::HashContext;
use fsi_index::strategy::{intersect_into, PreparedList, Strategy};
use fsi_workloads::synthetic::{k_sets_uniform, pair_with_intersection};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const N: usize = 250_000;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn prepare_pair(
    ctx: &HashContext,
    strategy: Strategy,
    a: &SortedSet,
    b: &SortedSet,
) -> (PreparedList, PreparedList) {
    (strategy.prepare(ctx, a), strategy.prepare(ctx, b))
}

fn bench_pair(
    c: &mut Criterion,
    group: &str,
    strategies: &[Strategy],
    a: &SortedSet,
    b: &SortedSet,
) {
    let ctx = HashContext::with_family_size(7, 8);
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for &s in strategies {
        let (pa, pb) = prepare_pair(&ctx, s, a, b);
        let mut out = Vec::new();
        g.bench_function(BenchmarkId::from_parameter(s.name()), |bench| {
            bench.iter(|| {
                out.clear();
                intersect_into(&[&pa, &pb], &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

/// Figure 4 shape: equal sizes, r = 1%.
fn fig4_set_size(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let (a, b) = pair_with_intersection(&mut rng, N, N, N / 100, (N as u64) * 20);
    bench_pair(
        configure(c),
        "fig4_set_size",
        &[
            Strategy::Merge,
            Strategy::SkipList,
            Strategy::Hash,
            Strategy::Bpp,
            Strategy::Adaptive,
            Strategy::Lookup,
            Strategy::IntGroup,
            Strategy::RanGroup,
            Strategy::RanGroupScan { m: 4 },
        ],
        &a,
        &b,
    );
}

/// Figure 5 shape: the r = 70% crossover point.
fn fig5_intersection_size(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(51);
    for (label, r_frac) in [("r1pct", 0.01), ("r70pct", 0.70)] {
        let r = (N as f64 * r_frac) as usize;
        let (a, b) = pair_with_intersection(&mut rng, N, N, r, (N as u64) * 20);
        bench_pair(
            c,
            &format!("fig5_{label}"),
            &[
                Strategy::Merge,
                Strategy::RanGroup,
                Strategy::RanGroupScan { m: 4 },
            ],
            &a,
            &b,
        );
    }
}

/// Size-ratio experiment shape: sr = 100.
fn ratio_sweep(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(61);
    let n1 = N / 100;
    let (a, b) = pair_with_intersection(&mut rng, n1, N, n1 / 100, (N as u64) * 20);
    bench_pair(
        c,
        "ratio_sr100",
        &[
            Strategy::Merge,
            Strategy::Hash,
            Strategy::Lookup,
            Strategy::Svs,
            Strategy::RanGroupScan { m: 4 },
            Strategy::HashBin,
            Strategy::Auto,
        ],
        &a,
        &b,
    );
}

/// Figure 6 shape: k = 4 uniform sets.
fn fig6_kway(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(71);
    let sets = k_sets_uniform(&mut rng, 4, N, (N as u64) * 20);
    let ctx = HashContext::with_family_size(7, 8);
    let mut g = c.benchmark_group("fig6_k4");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for s in [
        Strategy::Merge,
        Strategy::Hash,
        Strategy::Lookup,
        Strategy::Adaptive,
        Strategy::RanGroup,
        Strategy::RanGroupScan { m: 2 },
    ] {
        let prepared: Vec<PreparedList> = sets.iter().map(|x| s.prepare(&ctx, x)).collect();
        let refs: Vec<&PreparedList> = prepared.iter().collect();
        let mut out = Vec::new();
        g.bench_function(BenchmarkId::from_parameter(s.name()), |bench| {
            bench.iter(|| {
                out.clear();
                intersect_into(&refs, &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

/// Figure 8 shape: compressed variants.
fn fig8_compressed(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(81);
    let (a, b) = pair_with_intersection(&mut rng, N, N, N / 100, (N as u64) * 20);
    bench_pair(
        c,
        "fig8_compressed",
        &[
            Strategy::MergeCompressed(EliasCode::Delta),
            Strategy::LookupCompressed(EliasCode::Delta),
            Strategy::RgsCompressed(GroupCoding::Lowbits),
            Strategy::RgsCompressed(GroupCoding::Elias(EliasCode::Delta)),
        ],
        &a,
        &b,
    );
}

/// Figure 10 shape: preprocessing cost.
fn fig10_preprocessing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(91);
    let set: SortedSet = fsi_workloads::sample_distinct(&mut rng, N, (N as u64) * 20)
        .into_iter()
        .collect();
    let ctx = HashContext::with_family_size(7, 8);
    let mut g = c.benchmark_group("fig10_preprocessing");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for s in [
        Strategy::HashBin,
        Strategy::IntGroup,
        Strategy::RanGroup,
        Strategy::RanGroupScan { m: 4 },
        Strategy::RgsCompressed(GroupCoding::Lowbits),
    ] {
        g.bench_function(BenchmarkId::from_parameter(s.name()), |bench| {
            bench.iter(|| s.prepare(&ctx, &set).size_in_bytes())
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig4_set_size,
    fig5_intersection_size,
    ratio_sweep,
    fig6_kway,
    fig8_compressed,
    fig10_preprocessing
);
criterion_main!(figures);
