//! Criterion benchmarks for the design-choice ablations DESIGN.md calls out:
//! group size (Appendix A.1.1), number of hash images `m` (Section 3.3), and
//! the word-filter itself (Algorithm 5 line 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsi_core::hash::HashContext;
use fsi_core::traits::PairIntersect;
use fsi_core::{partition_level, IntGroupIndex, RanGroupScanIndex};
use fsi_workloads::synthetic::pair_with_intersection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const N: usize = 250_000;

/// IntGroup fixed-width partition size sweep (√w = 8 is the paper's choice).
fn ablation_group_size(c: &mut Criterion) {
    let ctx = HashContext::with_family_size(7, 8);
    let mut rng = StdRng::seed_from_u64(1);
    let (a, b) = pair_with_intersection(&mut rng, N, N, N / 100, (N as u64) * 20);
    let mut g = c.benchmark_group("ablation_intgroup_width");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for s in [2usize, 4, 8, 16, 32] {
        let ia = IntGroupIndex::with_group_size(&ctx, &a, s);
        let ib = IntGroupIndex::with_group_size(&ctx, &b, s);
        let mut out = Vec::new();
        g.bench_function(BenchmarkId::from_parameter(s), |bench| {
            bench.iter(|| {
                out.clear();
                ia.intersect_pair_into(&ib, &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

/// RanGroupScan partition level sweep around the paper's ⌈log2(n/√w)⌉.
fn ablation_partition_level(c: &mut Criterion) {
    let ctx = HashContext::with_family_size(7, 8);
    let mut rng = StdRng::seed_from_u64(2);
    let (a, b) = pair_with_intersection(&mut rng, N, N, N / 100, (N as u64) * 20);
    let base = partition_level(N);
    let mut g = c.benchmark_group("ablation_rgs_level");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for offset in [-2i32, -1, 0, 1, 2] {
        let t = (base as i32 + offset).clamp(0, 31) as u32;
        let ia = RanGroupScanIndex::with_m_and_level(&ctx, &a, 2, t);
        let ib = RanGroupScanIndex::with_m_and_level(&ctx, &b, 2, t);
        let mut out = Vec::new();
        g.bench_function(
            BenchmarkId::from_parameter(format!("{offset:+}")),
            |bench| {
                bench.iter(|| {
                    out.clear();
                    ia.intersect_pair_into(&ib, &mut out);
                    out.len()
                })
            },
        );
    }
    g.finish();
}

/// Hash-image count sweep (space/time trade-off of Section 3.3).
fn ablation_m(c: &mut Criterion) {
    let ctx = HashContext::with_family_size(7, 8);
    let mut rng = StdRng::seed_from_u64(3);
    let (a, b) = pair_with_intersection(&mut rng, N, N, N / 1000, (N as u64) * 20);
    let mut g = c.benchmark_group("ablation_rgs_m");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for m in [1usize, 2, 4, 8] {
        let ia = RanGroupScanIndex::with_m(&ctx, &a, m);
        let ib = RanGroupScanIndex::with_m(&ctx, &b, m);
        let mut out = Vec::new();
        g.bench_function(BenchmarkId::from_parameter(m), |bench| {
            bench.iter(|| {
                out.clear();
                ia.intersect_pair_into(&ib, &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_group_size,
    ablation_partition_level,
    ablation_m
);
criterion_main!(ablations);
