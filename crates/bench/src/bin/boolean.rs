//! Boolean expression-engine benchmark.
//!
//! Builds a Zipf corpus, generates three boolean query-stream shapes
//! (AND-only / OR-heavy / NOT-heavy) from the shared
//! `fsi_workloads::stream` traffic model, and measures the three pipeline
//! stages separately over a planned executor:
//!
//! * **parse** — query string → canonical `NormExpr` (`fsi_query::compile`:
//!   recursive descent + De Morgan/flatten/dedup rewrites);
//! * **plan** — cost-based `ExprPlan` over per-term `OperandStats`;
//! * **exec** — running the plan through the multiway/union/difference
//!   kernels.
//!
//! Per shape the JSON records per-query stage latencies (min-over-reps of
//! the stream totals, the steady-state estimator) and the combined
//! end-to-end `qps`, which the CI regression gate checks. A final
//! cache-demonstration pass replays a small-vocabulary reordered-duplicate
//! stream through a planned `Server` and records the canonical-key hit
//! rate next to the raw-string repeat rate — the gap is exactly the
//! traffic only canonicalization can cache.
//!
//! Usage: `cargo run --release -p fsi-bench --bin boolean -- [out.json] [--smoke]`

use fsi_bench::{min_time, HarnessArgs, Table};
use fsi_core::HashContext;
use fsi_index::{Corpus, CorpusConfig, Planner, SearchEngine};
use fsi_query::{ExprPlan, ExprPlanner, NormExpr};
use fsi_serve::{PlannerProfile, Request, ServeConfig, Server};
use fsi_workloads::stream::{generate_boolean_stream, BooleanStreamConfig};

struct ShapeRow {
    shape: &'static str,
    queries: usize,
    parse_us: f64,
    plan_us: f64,
    exec_us: f64,
    qps: f64,
    result_rows: usize,
}

fn main() {
    let args = HarnessArgs::parse("BENCH_boolean.json");
    // Like the serve bench, smoke keeps the full corpus and streams (the
    // run takes seconds) and only cuts repetitions: smaller inputs would
    // shift per-query costs and leave the one-sided gate comparing unlike
    // numbers.
    let num_docs: u32 = 400_000;
    let num_terms: usize = 1 << 10;
    let num_queries: usize = 2_500;
    let reps = args.pick(3, 1);

    println!(
        "corpus: {num_docs} docs x {num_terms} terms; {num_queries} queries per shape, \
         {reps} rep(s){}",
        if args.smoke { " [smoke]" } else { "" }
    );
    let corpus = Corpus::generate(CorpusConfig {
        num_docs,
        num_terms,
        ..CorpusConfig::default()
    });
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let engine = SearchEngine::from_corpus(ctx, corpus);
    let exec = engine.planned_executor(Planner::auto());
    let planner = ExprPlanner::auto();

    let base = BooleanStreamConfig {
        num_queries,
        num_terms,
        ..BooleanStreamConfig::default()
    };
    let shapes: [(&'static str, BooleanStreamConfig); 3] = [
        (
            "and-only",
            BooleanStreamConfig {
                or_probability: 0.0,
                not_probability: 0.0,
                seed: 0xb001,
                ..base.clone()
            },
        ),
        (
            "or-heavy",
            BooleanStreamConfig {
                or_probability: 1.0,
                or_arity: 3,
                not_probability: 0.1,
                seed: 0xb002,
                ..base.clone()
            },
        ),
        (
            "not-heavy",
            BooleanStreamConfig {
                or_probability: 0.2,
                not_probability: 0.9,
                seed: 0xb003,
                ..base.clone()
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "shape",
        "parse us/q",
        "plan us/q",
        "exec us/q",
        "qps",
        "rows/q",
    ]);
    for (shape, cfg) in &shapes {
        let stream = generate_boolean_stream(cfg);
        let n = stream.len();

        // Stage 1: parse + rewrite.
        let mut compiled: Vec<NormExpr> = Vec::new();
        let parse_total = min_time(reps, || {
            compiled = stream
                .iter()
                .map(|q| fsi_query::compile(q).expect("generated queries compile"))
                .collect();
            compiled.len()
        });

        // Stage 2: cost-based planning over prepared-list stats.
        let mut plans: Vec<ExprPlan> = Vec::new();
        let plan_total = min_time(reps, || {
            plans = compiled
                .iter()
                .map(|e| planner.plan(e, &|t| exec.list(t).stats(), exec.universe()))
                .collect();
            plans.len()
        });

        // Stage 3: execution through the kernels.
        let mut out = Vec::new();
        let mut result_rows = 0usize;
        let exec_total = min_time(reps, || {
            result_rows = 0;
            for plan in &plans {
                out.clear();
                fsi_query::execute_plan(&exec, &planner, plan, &mut out);
                result_rows += out.len();
            }
            result_rows
        });

        let us = |d: std::time::Duration| d.as_secs_f64() * 1e6 / n as f64;
        let total_s =
            parse_total.as_secs_f64() + plan_total.as_secs_f64() + exec_total.as_secs_f64();
        let row = ShapeRow {
            shape,
            queries: n,
            parse_us: us(parse_total),
            plan_us: us(plan_total),
            exec_us: us(exec_total),
            qps: n as f64 / total_s,
            result_rows: result_rows / n,
        };
        table.row(vec![
            row.shape.to_string(),
            format!("{:.2}", row.parse_us),
            format!("{:.2}", row.plan_us),
            format!("{:.2}", row.exec_us),
            format!("{:.0}", row.qps),
            row.result_rows.to_string(),
        ]);
        rows.push(row);
    }
    table.print();

    // Cache demonstration: a small vocabulary cranks the Zipf repeat rate;
    // repeats arrive reordered/duplicated, so the hit rate a canonical key
    // reaches strictly exceeds what raw-string keying could.
    let cache_cfg = BooleanStreamConfig {
        num_queries,
        num_terms: 96,
        or_probability: 0.4,
        not_probability: 0.3,
        seed: 0xb004,
        ..BooleanStreamConfig::default()
    };
    let cache_stream = generate_boolean_stream(&cache_cfg);
    let mut canon_seen = std::collections::HashSet::new();
    let mut raw_seen = std::collections::HashSet::new();
    let mut canonical_repeats = 0usize;
    let mut raw_repeats = 0usize;
    for q in &cache_stream {
        let norm = fsi_query::compile(q).expect("compiles");
        if !canon_seen.insert(fsi_query::encode(&norm)) {
            canonical_repeats += 1;
        }
        if !raw_seen.insert(q.clone()) {
            raw_repeats += 1;
        }
    }
    let canonical_repeat_rate = canonical_repeats as f64 / cache_stream.len() as f64;
    let raw_repeat_rate = raw_repeats as f64 / cache_stream.len() as f64;
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: 4,
            cache_capacity: 8192,
            mode: PlannerProfile::auto().mode(),
            ..ServeConfig::default()
        },
    );
    for q in &cache_stream {
        server
            .execute(&Request::expr(q.as_str()))
            .expect("valid query");
    }
    let cache_stats = server.stats().cache;
    let hit_rate = cache_stats.hit_rate();
    println!(
        "\ncache: hit rate {hit_rate:.3} over {} queries \
         (canonical repeat rate {canonical_repeat_rate:.3}, raw-string {raw_repeat_rate:.3})",
        cache_stream.len()
    );
    assert!(
        (hit_rate - canonical_repeat_rate).abs() < 1e-9,
        "an unbounded-capacity cache must hit exactly the canonical repeats"
    );

    let shape_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"shape\": \"{}\", \"queries\": {}, \"parse_us\": {:.3}, \
                 \"plan_us\": {:.3}, \"exec_us\": {:.3}, \"qps\": {:.1}, \
                 \"mean_result_rows\": {}}}",
                r.shape, r.queries, r.parse_us, r.plan_us, r.exec_us, r.qps, r.result_rows
            )
        })
        .collect();
    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"boolean\",\n  \"smoke\": {},\n  {env},\n  \"config\": {{\n    \
         \"num_docs\": {num_docs},\n    \"num_terms\": {num_terms},\n    \
         \"num_queries\": {num_queries},\n    \"reps\": {reps},\n    \
         \"active_level\": \"{}\"\n  }},\n  \"shapes\": [\n{}\n  ],\n  \
         \"cache\": {{\n    \"queries\": {},\n    \"vocabulary\": {},\n    \
         \"hit_rate\": {hit_rate:.4},\n    \
         \"canonical_repeat_rate\": {canonical_repeat_rate:.4},\n    \
         \"raw_repeat_rate\": {raw_repeat_rate:.4}\n  }}\n}}\n",
        args.smoke,
        fsi_kernels::SimdLevel::active().name(),
        shape_json.join(",\n"),
        cache_stream.len(),
        cache_cfg.num_terms,
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
