//! SIMD-vs-scalar benchmark: every vectorized kernel against its scalar
//! twin on identical operands, at the SIMD tier this machine dispatches to.
//!
//! The shapes are the four of `--bin kernels` plus `ragged-unaligned`:
//! prime-sized lists intersected through offset subslices, so every block
//! loop runs with a remainder-hostile length *and* pointers off the lane
//! alignment — the configuration the differential suite pins for
//! correctness and this harness prices. Per shape and kernel the row
//! reports the scalar and SIMD microseconds on the *same* prepared
//! operands and their ratio (`speedup_vs_scalar`, the gated metric).
//! Results land in `BENCH_simd.json`; `active_level` records the dispatch
//! tier, and a `Scalar` tier (no SIMD hardware or a `force-scalar` build)
//! marks every row ungated rather than reporting fake 1.0x speedups.
//!
//! Usage: `cargo run --release -p fsi-bench --bin simd -- [out.json] [--smoke]`

use fsi_bench::{min_time, HarnessArgs, Table};
use fsi_core::{HashContext, PairIntersect, SortedSet};
use fsi_kernels::simd::{self, SimdLevel};
use fsi_kernels::{BitmapSet, SigFilterSet};
use fsi_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FULL_REPS: usize = 21;
const SMOKE_REPS: usize = 5;

/// One benchmark shape: how the operand pair is generated.
struct Shape {
    name: &'static str,
    n1: usize,
    n2: usize,
    universe: u32,
    zipf: bool,
    /// Intersect `[1..]` subslices: remainder-hostile lengths and pointers
    /// off the lane alignment.
    offset: bool,
}

const SHAPES: [Shape; 5] = [
    Shape {
        name: "balanced-sparse",
        n1: 100_000,
        n2: 100_000,
        universe: 8_000_000,
        zipf: false,
        offset: false,
    },
    Shape {
        name: "balanced-dense",
        n1: 150_000,
        n2: 150_000,
        universe: 1_000_000,
        zipf: false,
        offset: false,
    },
    Shape {
        name: "skewed-1:64",
        n1: 4_000,
        n2: 256_000,
        universe: 8_000_000,
        zipf: false,
        offset: false,
    },
    Shape {
        name: "zipf-clustered",
        n1: 120_000,
        n2: 120_000,
        universe: 2_000_000,
        zipf: true,
        offset: false,
    },
    Shape {
        name: "ragged-unaligned",
        n1: 99_991,
        n2: 100_003,
        universe: 1_200_000,
        zipf: false,
        offset: true,
    },
];

/// Draws a set of `n` distinct values (uniform or Zipf rank-skewed).
fn draw_set(rng: &mut StdRng, n: usize, universe: u32, zipf: bool) -> SortedSet {
    if zipf {
        let z = Zipf::new(universe as usize, 1.0);
        let mut vals: Vec<u32> = (0..4 * n).map(|_| z.sample(rng) as u32).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.truncate(n);
        SortedSet::from_sorted_unchecked(vals)
    } else {
        (0..n).map(|_| rng.gen_range(0..universe)).collect()
    }
}

struct Row {
    kernel: &'static str,
    scalar_us: f64,
    simd_us: f64,
}

fn main() {
    let args = HarnessArgs::parse("BENCH_simd.json");
    let reps = args.pick(FULL_REPS, SMOKE_REPS);
    let active = SimdLevel::active();
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let mut rng = StdRng::seed_from_u64(fsi_bench::HARNESS_SEED);
    let mut shape_json: Vec<String> = Vec::new();

    println!(
        "SIMD tier: {} (hardware {}), lanes32={}, lanes64={}",
        active.name(),
        SimdLevel::detect().name(),
        active.lanes32(),
        active.lanes64()
    );

    for shape in &SHAPES {
        let a_full = draw_set(&mut rng, shape.n1, shape.universe, shape.zipf);
        let b_full = draw_set(&mut rng, shape.n2, shape.universe, shape.zipf);
        let skip = usize::from(shape.offset);
        let (a, b) = (&a_full.as_slice()[skip..], &b_full.as_slice()[skip..]);
        println!(
            "\n== {} (n1={}, n2={}, universe={}{}) ==",
            shape.name,
            a.len(),
            b.len(),
            shape.universe,
            if shape.offset { ", offset slices" } else { "" }
        );

        // Prepared forms, built outside the timed region on the (possibly
        // offset) slices the timed kernels see.
        let sa = SortedSet::from_sorted_unchecked(a.to_vec());
        let sb = SortedSet::from_sorted_unchecked(b.to_vec());
        let (bm_a, bm_b) = (BitmapSet::build(&sa), BitmapSet::build(&sb));
        let (sf_a, sf_b) = (
            SigFilterSet::build(&ctx, &sa),
            SigFilterSet::build(&ctx, &sb),
        );

        let mut expect: Vec<u32> = Vec::new();
        simd::merge_into_at(SimdLevel::Scalar, a, b, &mut expect);

        let mut rows: Vec<Row> = Vec::new();
        // Times one closure at a clamped dispatch level, verifying output.
        let timed = |level: SimdLevel, f: &mut dyn FnMut(&mut Vec<u32>)| -> f64 {
            simd::with_level(level, || {
                let mut out: Vec<u32> = Vec::new();
                let d = min_time(reps, || {
                    out.clear();
                    f(&mut out);
                    out.len()
                });
                out.sort_unstable();
                assert_eq!(out, expect, "kernel diverged on {}", shape.name);
                d.as_secs_f64() * 1e6
            })
        };
        let bench =
            |kernel: &'static str, rows: &mut Vec<Row>, f: &mut dyn FnMut(&mut Vec<u32>)| {
                let scalar_us = timed(SimdLevel::Scalar, f);
                let simd_us = timed(active, f);
                rows.push(Row {
                    kernel,
                    scalar_us,
                    simd_us,
                });
            };

        bench("Merge", &mut rows, &mut |out| simd::merge_into(a, b, out));
        bench("Bitmap", &mut rows, &mut |out| {
            bm_a.intersect_pair_into(&bm_b, out)
        });
        bench("SigFilter", &mut rows, &mut |out| {
            sf_a.intersect_pair_into(&sf_b, out)
        });

        let mut table = Table::new(vec!["kernel", "scalar us", "simd us", "speedup"]);
        let kernel_json: Vec<String> = rows
            .iter()
            .map(|row| {
                let speedup = if row.simd_us > 0.0 {
                    row.scalar_us / row.simd_us
                } else {
                    0.0
                };
                table.row(vec![
                    row.kernel.to_string(),
                    format!("{:.1}", row.scalar_us),
                    format!("{:.1}", row.simd_us),
                    format!("{speedup:.2}x"),
                ]);
                format!(
                    "        {{\"kernel\": \"{}\", \"scalar_us\": {:.2}, \
                     \"simd_us\": {:.2}, \"speedup_vs_scalar\": {speedup:.3}}}",
                    row.kernel, row.scalar_us, row.simd_us
                )
            })
            .collect();
        table.print();

        shape_json.push(format!(
            "    {{\n      \"shape\": \"{}\",\n      \"n1\": {},\n      \"n2\": {},\n      \
             \"universe\": {},\n      \"zipf\": {},\n      \"offset\": {},\n      \"r\": {},\n      \
             \"kernels\": [\n{}\n      ]\n    }}",
            shape.name,
            a.len(),
            b.len(),
            shape.universe,
            shape.zipf,
            shape.offset,
            expect.len(),
            kernel_json.join(",\n")
        ));
    }

    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"simd\",\n  \"reps\": {reps},\n  \"smoke\": {},\n  {env},\n  \
         \"active_level\": \"{}\",\n  \"shapes\": [\n{}\n  ]\n}}\n",
        args.smoke,
        active.name(),
        shape_json.join(",\n")
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
