//! Kernel-layer throughput benchmark: the `fsi-kernels` primitives against
//! the scalar merge baseline, on synthetic and Zipf-shaped pairs.
//!
//! Structures are prepared outside the timed region (what a serving shard
//! amortizes across queries); each row reports microseconds per
//! intersection, million input elements scanned per second, and the
//! speedup over the scalar merge on the same pair. Results land in
//! `BENCH_kernels.json` (hand-rolled JSON: the reference environment has
//! no registry access, so no serde).
//!
//! Usage: `cargo run --release -p fsi-bench --bin kernels -- [out.json] [--smoke]`
//! (`--smoke` keeps the shapes but cuts reps — sizes stay identical so the
//! CI regression gate compares like with like).

use fsi_bench::{median_time, HarnessArgs, Table};
use fsi_core::{HashContext, PairIntersect, SortedSet};
use fsi_kernels::{
    branchless_merge_into, galloping_into, BitmapSet, Kernel, ScalarMerge, SigFilterSet,
};
use fsi_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FULL_REPS: usize = 15;
const SMOKE_REPS: usize = 3;

/// One benchmark shape: how the operand pair is generated.
struct Shape {
    name: &'static str,
    n1: usize,
    n2: usize,
    universe: u32,
    zipf: bool,
}

const SHAPES: [Shape; 4] = [
    Shape {
        name: "balanced-sparse",
        n1: 100_000,
        n2: 100_000,
        universe: 8_000_000,
        zipf: false,
    },
    Shape {
        name: "balanced-dense",
        n1: 150_000,
        n2: 150_000,
        universe: 1_000_000,
        zipf: false,
    },
    Shape {
        name: "skewed-1:64",
        n1: 4_000,
        n2: 256_000,
        universe: 8_000_000,
        zipf: false,
    },
    Shape {
        name: "zipf-clustered",
        n1: 120_000,
        n2: 120_000,
        universe: 2_000_000,
        zipf: true,
    },
];

/// Draws a set of `n` distinct values: uniform over the universe, or (for
/// Zipf shapes) rank-skewed so values cluster at the low end — dense head,
/// sparse tail, the document-frequency shape real posting lists have.
fn draw_set(rng: &mut StdRng, n: usize, universe: u32, zipf: bool) -> SortedSet {
    if zipf {
        let z = Zipf::new(universe as usize, 1.0);
        let mut vals: Vec<u32> = (0..4 * n).map(|_| z.sample(rng) as u32).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.truncate(n);
        SortedSet::from_sorted_unchecked(vals)
    } else {
        (0..n).map(|_| rng.gen_range(0..universe)).collect()
    }
}

struct Row {
    kernel: &'static str,
    us: f64,
    melems_s: f64,
    speedup: f64,
}

fn main() {
    let args = HarnessArgs::parse("BENCH_kernels.json");
    let reps = args.pick(FULL_REPS, SMOKE_REPS);
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let mut rng = StdRng::seed_from_u64(fsi_bench::HARNESS_SEED);
    let mut shape_json: Vec<String> = Vec::new();

    for shape in &SHAPES {
        let a = draw_set(&mut rng, shape.n1, shape.universe, shape.zipf);
        let b = draw_set(&mut rng, shape.n2, shape.universe, shape.zipf);
        let total = (a.len() + b.len()) as f64;
        println!(
            "\n== {} (n1={}, n2={}, universe={}) ==",
            shape.name,
            a.len(),
            b.len(),
            shape.universe
        );

        // Prepared forms, built outside the timed region.
        let (ba, bb) = (BitmapSet::build(&a), BitmapSet::build(&b));
        let (sa, sb) = (SigFilterSet::build(&ctx, &a), SigFilterSet::build(&ctx, &b));
        let (small, large) = if a.len() <= b.len() {
            (&a, &b)
        } else {
            (&b, &a)
        };

        let mut out: Vec<u32> = Vec::new();
        let mut expect: Vec<u32> = Vec::new();
        ScalarMerge.intersect_pair(a.as_slice(), b.as_slice(), &mut expect);
        let r = expect.len();

        let mut rows: Vec<Row> = Vec::new();
        let mut bench =
            |kernel: &'static str, rows: &mut Vec<Row>, f: &mut dyn FnMut(&mut Vec<u32>)| {
                let d = median_time(reps, || {
                    out.clear();
                    f(&mut out);
                    out.len()
                });
                let mut check = std::mem::take(&mut out);
                check.sort_unstable();
                assert_eq!(check, expect, "kernel {kernel} diverged on {}", shape.name);
                out = check;
                let us = d.as_secs_f64() * 1e6;
                rows.push(Row {
                    kernel,
                    us,
                    melems_s: total / d.as_secs_f64() / 1e6,
                    speedup: 0.0, // filled once the merge row exists
                });
            };

        bench("Merge", &mut rows, &mut |out| {
            ScalarMerge.intersect_pair(a.as_slice(), b.as_slice(), out)
        });
        bench("BranchlessMerge", &mut rows, &mut |out| {
            branchless_merge_into(a.as_slice(), b.as_slice(), out)
        });
        bench("Galloping", &mut rows, &mut |out| {
            galloping_into(small.as_slice(), large.as_slice(), out)
        });
        bench("Bitmap", &mut rows, &mut |out| {
            ba.intersect_pair_into(&bb, out)
        });
        bench("SigFilter", &mut rows, &mut |out| {
            sa.intersect_pair_into(&sb, out)
        });

        let merge_us = rows[0].us;
        for row in &mut rows {
            row.speedup = if row.us > 0.0 { merge_us / row.us } else { 0.0 };
        }

        let mut table = Table::new(vec!["kernel", "us/op", "Melems/s", "speedup vs Merge"]);
        let kernel_json: Vec<String> = rows
            .iter()
            .map(|row| {
                table.row(vec![
                    row.kernel.to_string(),
                    format!("{:.1}", row.us),
                    format!("{:.1}", row.melems_s),
                    format!("{:.2}x", row.speedup),
                ]);
                format!(
                    "        {{\"kernel\": \"{}\", \"us_per_op\": {:.2}, \
                     \"melems_per_s\": {:.2}, \"speedup_vs_merge\": {:.3}}}",
                    row.kernel, row.us, row.melems_s, row.speedup
                )
            })
            .collect();
        table.print();

        shape_json.push(format!(
            "    {{\n      \"shape\": \"{}\",\n      \"n1\": {},\n      \"n2\": {},\n      \
             \"universe\": {},\n      \"zipf\": {},\n      \"r\": {},\n      \
             \"kernels\": [\n{}\n      ]\n    }}",
            shape.name,
            a.len(),
            b.len(),
            shape.universe,
            shape.zipf,
            r,
            kernel_json.join(",\n")
        ));
    }

    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"reps\": {reps},\n  \"smoke\": {},\n  {env},\n  \
         \"shapes\": [\n{}\n  ]\n}}\n",
        args.smoke,
        shape_json.join(",\n")
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
