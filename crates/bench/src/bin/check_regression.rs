//! The CI bench-regression gate: compares a fresh (smoke) benchmark run
//! against the committed `BENCH_*.json` baselines and fails on large
//! regressions.
//!
//! The tolerance is deliberately generous — micro-benchmarks on shared CI
//! hardware jitter, and smoke runs cut reps — so the gate only catches
//! *cliffs*: a metric
//! must fall below `baseline / tolerance` (default tolerance 2.0, i.e. a
//! >2x regression) to fail. Checked metrics:
//!
//! * `kernels` files — `speedup_vs_merge` per (shape, kernel);
//! * `multiway` files — `speedup_vs_fold` per (shape, k, algo);
//! * `simd` files — `speedup_vs_scalar` per (shape, kernel). A run whose
//!   `active_level` is `Scalar` (no SIMD hardware, or a `force-scalar`
//!   build) declines all of its rows instead of reporting fake 1.0x
//!   speedups — the gate skips them the way it skips oversubscribed serve
//!   rows;
//! * `boolean` files — `qps` per query-stream shape plus the canonical
//!   cache-keying `hit_rate` (deterministic in the seeded stream);
//! * `obs` files — the untraced throughput `untraced_qps` and the
//!   traced/untraced `qps_ratio` (higher = cheaper tracing). The obs
//!   binary additionally hard-asserts its overhead budget in-process, so
//!   the gate here only has to catch cliffs that assertion's slack admits;
//! * `compress` files — `compression_ratio` per (shape, codec) — the
//!   flat-u32-bytes over compressed-bytes ratio, higher = smaller — and
//!   `qps` per (shape, algo) for the flat, decode-then-intersect, and
//!   compressed-domain intersection variants;
//! * `serve` files — the cache-fronted `cold_qps` and `warm_qps` (the
//!   closed-loop worker-scaling rows were retired in favor of the `slo`
//!   bench, which measures serving under load properly);
//! * `slo` files — `capacity_qps`, the hard `response_accounting`
//!   conservation check, and per-row `goodput_fraction` for rows offered
//!   *below* saturation (`offered_mult < 1.0`). Rows at or past
//!   saturation are explicitly declined: goodput there measures where the
//!   shedding knee lands on the CI box's core count, which legitimately
//!   differs from the baseline box — the row exists to eyeball degradation
//!   shape, not to gate. Also gated: `lifecycle/qps_ratio`
//!   (instrumented-over-stripped capacity — higher = cheaper lifecycle
//!   instrumentation; the binary hard-asserts the overhead budget in
//!   process, so this only catches cliffs that slack admits) and
//!   `attribution/shed_retained` clamped to 1.0 (presence of retained
//!   slow-log records for shed requests — how *many* the ring holds at
//!   scrape time depends on row volume, so the gate pins only that
//!   retention works at all).
//!
//! Ratios are speedups/throughputs (higher = better), so the check is
//! one-sided: getting faster never fails. A metric present in the baseline
//! but missing from the current run fails — a silently dropped shape or
//! kernel must not pass the gate. A baseline (or current) file that does
//! not exist or does not parse fails the gate with a nonzero exit, never a
//! silent skip: a missing baseline means a new benchmark was added without
//! committing its reference.
//!
//! Usage:
//! `check_regression [--tolerance 2.0] <baseline.json> <current.json> [<baseline> <current> ...]`

use fsi_bench::json::Json;
use std::process::ExitCode;

/// One comparable metric extracted from a benchmark file.
struct Metric {
    /// Stable identity across runs, e.g. `balanced-dense/k=3/Planned`.
    key: String,
    value: f64,
}

/// Reads and parses one benchmark file. Errors are returned, not panicked:
/// `main` turns them into a clean `FAIL` + nonzero exit so a missing or
/// corrupt baseline can never look like a passing (or crashed) gate.
fn load(path: &str) -> Result<Json, String> {
    let src = std::fs::read_to_string(path).map_err(|e| {
        format!("cannot read {path}: {e} (new benchmark without a committed baseline? regenerate it in full mode and commit it)")
    })?;
    Json::parse(&src).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field {key:?}"))
}

fn text<'j>(v: &'j Json, key: &str) -> &'j str {
    v.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string field {key:?}"))
}

/// Extracts the gated metrics of one benchmark file, dispatching on its
/// `"bench"` tag. The second list holds `(key, reason)` pairs the file
/// *explicitly* declined to gate (oversubscribed serve rows, SIMD rows of
/// a scalar-tier run) — only those may be tolerated when absent from the
/// comparison; any other missing key is a silently dropped metric and
/// must fail.
fn metrics(doc: &Json, path: &str) -> (Vec<Metric>, Vec<(String, &'static str)>) {
    let mut out = Vec::new();
    let mut declined = Vec::new();
    match text(doc, "bench") {
        "kernels" => {
            for shape in doc.get("shapes").and_then(Json::as_array).unwrap_or(&[]) {
                let shape_name = text(shape, "shape");
                for row in shape.get("kernels").and_then(Json::as_array).unwrap_or(&[]) {
                    let kernel = text(row, "kernel");
                    if kernel == "Merge" {
                        continue; // its speedup vs itself is 1.0 by construction
                    }
                    out.push(Metric {
                        key: format!("{shape_name}/{kernel}/speedup_vs_merge"),
                        value: num(row, "speedup_vs_merge"),
                    });
                }
            }
        }
        "simd" => {
            // A Scalar-tier run measured nothing vectorized: decline every
            // row instead of gating 1.0x "speedups" (the CI box need not
            // share the baseline box's instruction sets).
            let scalar_only = text(doc, "active_level") == "Scalar";
            for shape in doc.get("shapes").and_then(Json::as_array).unwrap_or(&[]) {
                let shape_name = text(shape, "shape");
                for row in shape.get("kernels").and_then(Json::as_array).unwrap_or(&[]) {
                    let key = format!("{shape_name}/{}/speedup_vs_scalar", text(row, "kernel"));
                    if scalar_only {
                        declined.push((key, "no SIMD tier in this run"));
                    } else {
                        out.push(Metric {
                            key,
                            value: num(row, "speedup_vs_scalar"),
                        });
                    }
                }
            }
        }
        "multiway" => {
            for shape in doc.get("shapes").and_then(Json::as_array).unwrap_or(&[]) {
                let shape_name = text(shape, "shape");
                let k = num(shape, "k");
                for row in shape.get("algos").and_then(Json::as_array).unwrap_or(&[]) {
                    let algo = text(row, "algo");
                    if algo == "PairwiseFold(Merge)" {
                        continue; // the 1.0x baseline row
                    }
                    out.push(Metric {
                        key: format!("{shape_name}/k={k}/{algo}/speedup_vs_fold"),
                        value: num(row, "speedup_vs_fold"),
                    });
                }
            }
        }
        "boolean" => {
            for shape in doc.get("shapes").and_then(Json::as_array).unwrap_or(&[]) {
                out.push(Metric {
                    key: format!("{}/qps", text(shape, "shape")),
                    value: num(shape, "qps"),
                });
            }
            if let Some(cache) = doc.get("cache") {
                // The canonical-keying demonstration: deterministic in the
                // seeded stream, so a hit-rate drop means canonicalization
                // (or cache keying) regressed, not hardware jitter.
                out.push(Metric {
                    key: "cache/hit_rate".to_string(),
                    value: num(cache, "hit_rate"),
                });
            }
        }
        "obs" => {
            let overhead = doc
                .get("overhead")
                .unwrap_or_else(|| panic!("{path}: obs file without an overhead object"));
            out.push(Metric {
                key: "overhead/untraced_qps".to_string(),
                value: num(overhead, "untraced_qps"),
            });
            out.push(Metric {
                key: "overhead/qps_ratio".to_string(),
                value: num(overhead, "qps_ratio"),
            });
        }
        "compress" => {
            for shape in doc.get("shapes").and_then(Json::as_array).unwrap_or(&[]) {
                let shape_name = text(shape, "shape");
                for row in shape.get("codecs").and_then(Json::as_array).unwrap_or(&[]) {
                    // Gate the ratio, not raw bytes: higher = smaller files,
                    // so improving compression can never fail the one-sided
                    // check.
                    out.push(Metric {
                        key: format!("{shape_name}/{}/compression_ratio", text(row, "codec")),
                        value: num(row, "compression_ratio"),
                    });
                }
                for row in shape.get("algos").and_then(Json::as_array).unwrap_or(&[]) {
                    out.push(Metric {
                        key: format!("{shape_name}/{}/qps", text(row, "algo")),
                        value: num(row, "qps"),
                    });
                }
            }
        }
        "serve" => {
            if let Some(cache) = doc.get("cache") {
                out.push(Metric {
                    key: "cache/cold_qps".to_string(),
                    value: num(cache, "cold_qps"),
                });
                out.push(Metric {
                    key: "cache/warm_qps".to_string(),
                    value: num(cache, "warm_qps"),
                });
            }
        }
        "slo" => {
            out.push(Metric {
                key: "capacity_qps".to_string(),
                value: num(doc, "capacity_qps"),
            });
            // Conservation is binary: the binary hard-asserts it in
            // process, and the gate pins it so a baseline or current file
            // can never carry anything but 1.0.
            out.push(Metric {
                key: "response_accounting".to_string(),
                value: num(doc, "response_accounting"),
            });
            for row in doc.get("rows").and_then(Json::as_array).unwrap_or(&[]) {
                let mult = num(row, "offered_mult");
                let key = format!("offered={mult}x/goodput_fraction");
                if mult >= 1.0 {
                    // Where the shedding knee lands at/past saturation
                    // depends on the box's core count; the row informs,
                    // the gate skips it.
                    declined.push((key, "at/past saturation"));
                    continue;
                }
                out.push(Metric {
                    key,
                    value: num(row, "goodput_fraction"),
                });
            }
            let lifecycle = doc
                .get("lifecycle")
                .unwrap_or_else(|| panic!("{path}: slo file without a lifecycle object"));
            out.push(Metric {
                key: "lifecycle/qps_ratio".to_string(),
                value: num(lifecycle, "qps_ratio"),
            });
            let attribution = doc
                .get("attribution")
                .unwrap_or_else(|| panic!("{path}: slo file without an attribution object"));
            // Presence, not magnitude: 1.0 if any shed request left a
            // retained slow-log record, which the binary also asserts.
            out.push(Metric {
                key: "attribution/shed_retained".to_string(),
                value: num(attribution, "shed_retained").min(1.0),
            });
        }
        other => panic!("{path}: unknown bench tag {other:?}"),
    }
    (out, declined)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 2.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            tolerance = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--tolerance needs a number");
        } else {
            paths.push(arg);
        }
    }
    assert!(
        !paths.is_empty() && paths.len().is_multiple_of(2),
        "usage: check_regression [--tolerance X] <baseline.json> <current.json> ..."
    );
    assert!(tolerance >= 1.0, "tolerance must be >= 1.0");

    let mut failures = 0usize;
    let mut checked = 0usize;
    for pair in paths.chunks(2) {
        let (base_path, cur_path) = (&pair[0], &pair[1]);
        let (baseline, current) = match (load(base_path), load(cur_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (b, c) => {
                for err in [b.err(), c.err()].into_iter().flatten() {
                    println!("  FAIL  {err}");
                }
                failures += 1;
                continue;
            }
        };
        // The binaries stamp `"smoke": true` into reduced-effort runs so
        // one can never silently become the reference the gate measures
        // against (docs/benchmarks.md: committed baselines must be full).
        assert!(
            baseline.get("smoke").and_then(Json::as_bool) != Some(true),
            "{base_path}: baseline was produced by a --smoke run; regenerate it in full mode"
        );
        let tag = text(&baseline, "bench").to_string();
        assert_eq!(
            tag,
            text(&current, "bench"),
            "{base_path} vs {cur_path}: mismatched bench tags"
        );
        println!("\n== {tag}: {cur_path} vs baseline {base_path} (tolerance {tolerance}x) ==");
        // Declined rows are skipped per-file; drop a metric when either
        // side skipped it.
        let (base_metrics, _) = metrics(&baseline, base_path);
        let (cur_metrics, cur_declined) = metrics(&current, cur_path);
        for m in &base_metrics {
            let Some(cur) = cur_metrics.iter().find(|c| c.key == m.key) else {
                if let Some((_, reason)) = cur_declined.iter().find(|(k, _)| *k == m.key) {
                    // The CI box decides which rows it can gate (its core
                    // count, its instruction sets); a row the current run
                    // *explicitly* declined is not a dropped metric.
                    // Anything else missing is — it must not pass silently.
                    println!("  skip  {:<55} (current run: {reason})", m.key);
                    continue;
                }
                println!("  FAIL  {:<55} missing from current run", m.key);
                failures += 1;
                continue;
            };
            checked += 1;
            let floor = m.value / tolerance;
            let verdict = if cur.value >= floor { "ok  " } else { "FAIL" };
            if cur.value < floor {
                failures += 1;
            }
            println!(
                "  {verdict}  {:<55} baseline {:>10.2}  current {:>10.2}",
                m.key, m.value, cur.value
            );
        }
    }
    println!("\n{checked} metrics checked, {failures} regression(s) beyond {tolerance}x");
    if failures > 0 {
        println!("bench-regression gate: FAIL");
        ExitCode::FAILURE
    } else {
        println!("bench-regression gate: PASS");
        ExitCode::SUCCESS
    }
}
