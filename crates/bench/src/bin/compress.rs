//! Compressed-domain execution benchmark: skip-augmented block postings
//! (`fsi_compress::BlockPostings`) against the flat kernels and against the
//! decode-everything-first strawman.
//!
//! For each standard shape, the harness reports two metric families:
//!
//! * **space** — bytes per posting for every [`BlockCodec`], and the
//!   compression ratio against the 4-byte flat `u32` representation
//!   (`compression_ratio = 4.0 / bytes_per_posting`, higher is better —
//!   what the regression gate checks, so shrinking files never fails it);
//! * **speed** — microseconds and queries/second per pair intersection for
//!   `FlatGallop` (the uncompressed adaptive kernel),
//!   `DecodeThenIntersect_<codec>` (bulk-decode both lists, then the SIMD
//!   merge — what a system without compressed-domain kernels must do), and
//!   `CompressedGallop_<codec>` (cursors seek across the skip tables and
//!   decode at most the blocks they touch).
//!
//! Every timed variant is asserted byte-identical to the scalar reference
//! before its row is recorded. Results land in `BENCH_compress.json`
//! (hand-rolled JSON — the reference environment has no registry access).
//!
//! Usage: `cargo run --release -p fsi-bench --bin compress -- [out.json] [--smoke]`

use fsi_bench::{min_time, HarnessArgs, Table};
use fsi_compress::{BlockCodec, BlockPostings};
use fsi_core::elem::reference_intersection;
use fsi_core::{PairIntersect, SetIndex, SortedSet};
use fsi_kernels::GallopingSet;
use fsi_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One benchmark shape: the two operand lists of a pair intersection.
struct Shape {
    name: &'static str,
    small: usize,
    large: usize,
    universe: u32,
    zipf: bool,
}

const SHAPES: [Shape; 5] = [
    Shape {
        name: "balanced-sparse",
        small: 100_000,
        large: 100_000,
        universe: 8_000_000,
        zipf: false,
    },
    Shape {
        name: "balanced-dense",
        small: 150_000,
        large: 150_000,
        universe: 1_000_000,
        zipf: false,
    },
    Shape {
        name: "skewed-1:64",
        small: 4_000,
        large: 256_000,
        universe: 8_000_000,
        zipf: false,
    },
    // Ratio beyond BLOCK_LEN: the driver touches only a fraction of the
    // large list's blocks, so the skip table pays for itself even under the
    // near-free bulk decode of the Packed codec.
    Shape {
        name: "skewed-1:512",
        small: 500,
        large: 256_000,
        universe: 8_000_000,
        zipf: false,
    },
    Shape {
        name: "zipf-clustered",
        small: 120_000,
        large: 120_000,
        universe: 2_000_000,
        zipf: true,
    },
];

/// Draws a set of `n` distinct values: uniform over the universe, or (for
/// Zipf shapes) rank-skewed so values cluster at the low end — the dense
/// head yields tiny gaps, the regime compression exists for.
fn draw_set(rng: &mut StdRng, n: usize, universe: u32, zipf: bool) -> SortedSet {
    if zipf {
        let z = Zipf::new(universe as usize, 1.0);
        let mut vals: Vec<u32> = (0..4 * n).map(|_| z.sample(rng) as u32).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.truncate(n);
        SortedSet::from_sorted_unchecked(vals)
    } else {
        (0..n).map(|_| rng.gen_range(0..universe)).collect()
    }
}

struct AlgoRow {
    algo: String,
    us: f64,
    qps: f64,
}

fn main() {
    let args = HarnessArgs::parse("BENCH_compress.json");
    // Sizes stay identical in smoke mode — shrinking the lists would change
    // gap widths and block counts, making the space metrics incomparable to
    // the committed baseline. Smoke only cuts repetitions.
    let reps = args.pick(15, 3);
    let mut rng = StdRng::seed_from_u64(fsi_bench::HARNESS_SEED);
    let mut shape_json: Vec<String> = Vec::new();

    for shape in &SHAPES {
        let a = draw_set(&mut rng, shape.small, shape.universe, shape.zipf);
        let b = draw_set(&mut rng, shape.large, shape.universe, shape.zipf);
        let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
        let n_total = a.len() + b.len();
        println!(
            "\n== {} (sizes [{}, {}], universe {}) ==",
            shape.name,
            a.len(),
            b.len(),
            shape.universe
        );

        // Space: bytes per posting for every codec, against flat u32.
        let mut space_table = Table::new(vec!["codec", "bytes/posting", "ratio vs u32"]);
        let codec_json: Vec<String> = BlockCodec::ALL
            .iter()
            .map(|&codec| {
                let bytes = BlockPostings::from_slice(codec, a.as_slice()).size_in_bytes()
                    + BlockPostings::from_slice(codec, b.as_slice()).size_in_bytes();
                let bpp = bytes as f64 / n_total as f64;
                let ratio = 4.0 / bpp;
                space_table.row(vec![
                    codec.label().to_string(),
                    format!("{bpp:.3}"),
                    format!("{ratio:.2}x"),
                ]);
                format!(
                    "        {{\"codec\": \"{}\", \"bytes_per_posting\": {bpp:.4}, \
                     \"compression_ratio\": {ratio:.4}}}",
                    codec.label()
                )
            })
            .collect();
        space_table.print();

        // Speed: every variant asserted against the reference, timed via
        // the amortized-minimum estimator (see the multiway harness for the
        // rationale — µs-scale ops are too noisy to gate one call at a
        // time).
        let mut out: Vec<u32> = Vec::new();
        let mut rows: Vec<AlgoRow> = Vec::new();
        let mut bench =
            |algo: String, rows: &mut Vec<AlgoRow>, f: &mut dyn FnMut(&mut Vec<u32>)| {
                let once = fsi_bench::time_once(|| {
                    out.clear();
                    f(&mut out);
                    out.len()
                });
                assert_eq!(out, expect, "algo {algo} diverged on {}", shape.name);
                let inner = (1_000_000 / once.as_nanos().max(1)).clamp(1, 256) as usize;
                let d = min_time(reps, || {
                    let mut len = 0;
                    for _ in 0..inner {
                        out.clear();
                        f(&mut out);
                        len = out.len();
                    }
                    len
                }) / inner as u32;
                let us = d.as_secs_f64() * 1e6;
                rows.push(AlgoRow {
                    algo,
                    us,
                    qps: if us > 0.0 { 1e6 / us } else { 0.0 },
                });
            };

        let flat_a = GallopingSet::build(&a);
        let flat_b = GallopingSet::build(&b);
        bench("FlatGallop".to_string(), &mut rows, &mut |out| {
            flat_a.intersect_pair_into(&flat_b, out)
        });
        for &codec in &BlockCodec::ALL {
            let ca = BlockPostings::from_slice(codec, a.as_slice());
            let cb = BlockPostings::from_slice(codec, b.as_slice());
            let mut buf_a: Vec<u32> = Vec::new();
            let mut buf_b: Vec<u32> = Vec::new();
            bench(
                format!("DecodeThenIntersect_{}", codec.label()),
                &mut rows,
                &mut |out| {
                    buf_a.clear();
                    buf_b.clear();
                    ca.decode_into(&mut buf_a);
                    cb.decode_into(&mut buf_b);
                    fsi_kernels::simd::merge_into(&buf_a, &buf_b, out);
                },
            );
            bench(
                format!("CompressedGallop_{}", codec.label()),
                &mut rows,
                &mut |out| ca.intersect_pair_into(&cb, out),
            );
        }

        let mut speed_table = Table::new(vec!["algo", "us/op", "qps"]);
        let algo_json: Vec<String> = rows
            .iter()
            .map(|row| {
                speed_table.row(vec![
                    row.algo.clone(),
                    format!("{:.1}", row.us),
                    format!("{:.0}", row.qps),
                ]);
                format!(
                    "        {{\"algo\": \"{}\", \"us_per_op\": {:.2}, \"qps\": {:.1}}}",
                    row.algo, row.us, row.qps
                )
            })
            .collect();
        speed_table.print();

        shape_json.push(format!(
            "    {{\n      \"shape\": \"{}\",\n      \"sizes\": [{}, {}],\n      \
             \"universe\": {},\n      \"zipf\": {},\n      \"r\": {},\n      \
             \"codecs\": [\n{}\n      ],\n      \"algos\": [\n{}\n      ]\n    }}",
            shape.name,
            a.len(),
            b.len(),
            shape.universe,
            shape.zipf,
            expect.len(),
            codec_json.join(",\n"),
            algo_json.join(",\n")
        ));
    }

    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"compress\",\n  \"reps\": {reps},\n  \"smoke\": {},\n  {env},\n  \
         \"shapes\": [\n{}\n  ]\n}}\n",
        args.smoke,
        shape_json.join(",\n")
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
