//! `paper` — regenerates every figure and table of "Fast Set Intersection in
//! Memory" (VLDB 2011).
//!
//! ```text
//! cargo run --release -p fsi-bench --bin paper -- <experiment> [options]
//!
//! experiments:
//!   fig4        intersection time vs. set size (2 sets, r = 1%)
//!   fig5        intersection time vs. intersection size (crossover plot)
//!   ratio       intersection time vs. set-size ratio (Section 4 text)
//!   fig6        intersection time vs. number of keywords k = 2,3,4
//!   space       structure sizes vs. uncompressed posting lists
//!   fig7        real-workload normalized times + best-algorithm shares
//!   fig8        compressed variants: time and space vs. set size
//!   fig9        word-filtering probability vs. m (+ Lemma A.1/A.3 theory)
//!   fig10       preprocessing time vs. set size (uncompressed)
//!   fig11       preprocessing time vs. set size (compressed)
//!   fig12       fig7 broken down by keyword count
//!   compressed_real  compressed variants on the real workload (+ tail latency)
//!   intro_stat  the introduction's Bing-Shopping statistic
//!   ablation_group_size  sweep IntGroup width / RanGroupScan level offset
//!   ablation_m  sweep RanGroupScan hash-image count m
//!   all         everything above, in order
//!
//! options:
//!   --scale N    divide the paper's set sizes by N (default 8; 1 = paper scale)
//!   --reps N     timing repetitions per point (default 3)
//!   --queries N  query count for workload experiments (default 60)
//!   --seed N     harness seed
//!   --smoke      CI mode: scale >= 64, 1 rep, few queries; experiment
//!                defaults to `all` — proves every path runs, times nothing
//! ```

use fsi_bench::{fmt_ms, median_time, ms, run_strategy, Table, HARNESS_SEED};
use fsi_compress::{CompressedPostings, CompressedRgsIndex, EliasCode, GroupCoding};
use fsi_core::elem::SortedSet;
use fsi_core::hash::HashContext;
use fsi_core::traits::SetIndex;
use fsi_core::{filtering_stats, HashBinIndex, IntGroupIndex, RanGroupIndex, RanGroupScanIndex};
use fsi_index::strategy::{intersect_into, PreparedList, Strategy};
use fsi_workloads::querylog::{self, QueryLogConfig, WorkloadProfile};
use fsi_workloads::synthetic::{k_sets_uniform, pair_with_intersection};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Opts {
    scale: usize,
    reps: usize,
    queries: usize,
    seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale: 8,
            reps: 3,
            queries: 60,
            seed: HARNESS_SEED,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::new();
    let mut opts = Opts::default();
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => opts.scale = parse_num(it.next(), "--scale"),
            "--reps" => opts.reps = parse_num(it.next(), "--reps"),
            "--queries" => opts.queries = parse_num(it.next(), "--queries"),
            "--seed" => opts.seed = parse_num(it.next(), "--seed") as u64,
            "--smoke" => smoke = true,
            other if experiment.is_empty() && !other.starts_with('-') => {
                experiment = other.to_string();
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        // CI mode: prove every experiment's code path end-to-end at a
        // fraction of the paper's sizes. Defaults to the full experiment
        // list; an explicit experiment narrows it.
        opts.scale = opts.scale.max(64);
        opts.reps = 1;
        opts.queries = opts.queries.min(12);
        if experiment.is_empty() {
            experiment = "all".to_string();
        }
        println!(
            "paper --smoke: scale 1/{}, reps {}, queries {}",
            opts.scale, opts.reps, opts.queries
        );
    }
    if experiment.is_empty() {
        eprintln!("usage: paper <experiment> [--scale N] [--reps N] [--queries N] [--smoke]");
        eprintln!("run `paper all` for the full suite; see the source header for the list");
        std::process::exit(2);
    }
    run(&experiment, &opts);
}

fn parse_num(v: Option<&String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric argument");
        std::process::exit(2);
    })
}

fn run(experiment: &str, opts: &Opts) {
    match experiment {
        "fig4" => fig4(opts),
        "fig5" => fig5(opts),
        "ratio" => ratio(opts),
        "fig6" => fig6(opts),
        "space" => space(opts),
        "fig7" => fig7(opts),
        "fig8" => fig8(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "fig11" => fig11(opts),
        "fig12" => fig12(opts),
        "compressed_real" => compressed_real(opts),
        "intro_stat" => intro_stat(opts),
        "ablation_group_size" => ablation_group_size(opts),
        "ablation_m" => ablation_m(opts),
        "ablation_bucket_width" => ablation_bucket_width(opts),
        "planner_eval" => planner_eval(opts),
        "verify" => verify(opts),
        "all" => {
            for e in [
                "intro_stat",
                "fig4",
                "fig5",
                "ratio",
                "fig6",
                "space",
                "fig7",
                "fig12",
                "fig8",
                "compressed_real",
                "fig9",
                "fig10",
                "fig11",
                "ablation_group_size",
                "ablation_m",
                "ablation_bucket_width",
                "planner_eval",
            ] {
                run(e, opts);
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn ctx(opts: &Opts) -> HashContext {
    HashContext::with_family_size(opts.seed, 8)
}

fn header(title: &str, opts: &Opts) {
    println!("== {title} (scale 1/{}, reps {}) ==", opts.scale, opts.reps);
}

/// Times one lineup over one set collection, appending a table row.
fn lineup_row(
    table: &mut Table,
    label: String,
    lineup: &[Strategy],
    ctx: &HashContext,
    sets: &[&SortedSet],
    reps: usize,
) {
    let mut cells = vec![label];
    for &s in lineup {
        let (d, _, _) = run_strategy(s, ctx, sets, reps);
        cells.push(fmt_ms(ms(d)));
    }
    table.row(cells);
}

// ---------------------------------------------------------------- fig4

fn fig4(opts: &Opts) {
    header(
        "Figure 4: varying the set size (2 sets, equal size, r = 1%)",
        opts,
    );
    let ctx = ctx(opts);
    let lineup = [
        Strategy::Merge,
        Strategy::SkipList,
        Strategy::Hash,
        Strategy::Bpp,
        Strategy::Adaptive,
        Strategy::Lookup,
        Strategy::IntGroup,
        Strategy::RanGroup,
        Strategy::RanGroupScan { m: 4 },
    ];
    let mut t = Table::new(
        std::iter::once("set size".to_string())
            .chain(lineup.iter().map(|s| s.name()))
            .collect::<Vec<_>>(),
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for step in 1..=10usize {
        let n = step * 1_000_000 / opts.scale;
        let r = n / 100;
        let (a, b) = pair_with_intersection(&mut rng, n, n, r, universe_for(2 * n));
        lineup_row(&mut t, format!("{n}"), &lineup, &ctx, &[&a, &b], opts.reps);
    }
    t.print();
    println!("(paper: RanGroupScan 40-50% faster than Merge; Hash/SkipList/BPP slowest; ordering stable in n)");
}

/// A universe comfortably larger than the data (paper: uniform IDs).
fn universe_for(total: usize) -> u64 {
    ((total as u64) * 20).max(1 << 20)
}

// ---------------------------------------------------------------- fig5

fn fig5(opts: &Opts) {
    header(
        "Figure 5: varying the intersection size (2 sets of 10M)",
        opts,
    );
    let ctx = ctx(opts);
    let n = 10_000_000 / opts.scale;
    let lineup = [
        Strategy::Merge,
        Strategy::SkipList,
        Strategy::Hash,
        Strategy::Adaptive,
        Strategy::Svs,
        Strategy::Lookup,
        Strategy::IntGroup,
        Strategy::RanGroup,
        Strategy::RanGroupScan { m: 4 },
    ];
    let mut t = Table::new(
        std::iter::once("r/n".to_string())
            .chain(lineup.iter().map(|s| s.name()))
            .collect::<Vec<_>>(),
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for r_frac in [0.00005, 0.01, 0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let r = ((n as f64) * r_frac) as usize;
        let (a, b) = pair_with_intersection(&mut rng, n, n, r, universe_for(2 * n));
        lineup_row(
            &mut t,
            format!("{r_frac:.2}"),
            &lineup,
            &ctx,
            &[&a, &b],
            opts.reps,
        );
    }
    t.print();
    println!("(paper: RanGroupScan/IntGroup best for r < 0.7n; Merge best beyond, RanGroupScan 2nd and close)");
}

// ---------------------------------------------------------------- ratio

fn ratio(opts: &Opts) {
    header("Size-ratio experiment (|L2| = 10M, r = 1% of |L1|)", opts);
    let ctx = ctx(opts);
    let n2 = 10_000_000 / opts.scale;
    let lineup = [
        Strategy::Merge,
        Strategy::Hash,
        Strategy::Lookup,
        Strategy::Svs,
        Strategy::Adaptive,
        Strategy::SmallAdaptive,
        Strategy::BaezaYates,
        Strategy::IntGroupOpt,
        Strategy::RanGroupScan { m: 4 },
        Strategy::HashBin,
        Strategy::Auto,
    ];
    let mut t = Table::new(
        std::iter::once("sr".to_string())
            .chain(lineup.iter().map(|s| s.name()))
            .chain(std::iter::once("winner".to_string()))
            .collect::<Vec<_>>(),
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for sr in [1usize, 2, 8, 32, 100, 200, 625] {
        let n1 = (n2 / sr).max(16);
        let r = (n1 / 100).max(1);
        let (a, b) = pair_with_intersection(&mut rng, n1, n2, r, universe_for(n1 + n2));
        let mut cells = vec![format!("{sr}")];
        let mut best = (f64::INFINITY, String::new());
        for &s in &lineup {
            let (d, _, _) = run_strategy(s, &ctx, &[&a, &b], opts.reps);
            let v = ms(d);
            if v < best.0 {
                best = (v, s.name());
            }
            cells.push(fmt_ms(v));
        }
        cells.push(best.1);
        t.row(cells);
    }
    t.print();
    println!("(paper: RanGroupScan best for sr<32; Lookup/Hash for 32≤sr<100; Hash for sr≥100, then Lookup and HashBin; HashBin/RanGroupScan always close to the winner)");
}

// ---------------------------------------------------------------- fig6

fn fig6(opts: &Opts) {
    header(
        "Figure 6: varying the number of keywords (|Li| = 10M, uniform IDs)",
        opts,
    );
    let ctx = ctx(opts);
    let n = 10_000_000 / opts.scale;
    let universe = (200_000_000 / opts.scale) as u64;
    let lineup = [
        Strategy::Merge,
        Strategy::SkipList,
        Strategy::Hash,
        Strategy::Lookup,
        Strategy::Adaptive,
        Strategy::Svs,
        Strategy::SmallAdaptive,
        Strategy::BaezaYates,
        Strategy::RanGroup,
        Strategy::RanGroupScan { m: 2 },
    ];
    let mut t = Table::new(
        std::iter::once("k".to_string())
            .chain(lineup.iter().map(|s| s.name()))
            .collect::<Vec<_>>(),
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for k in 2..=4usize {
        let sets = k_sets_uniform(&mut rng, k, n, universe);
        let refs: Vec<&SortedSet> = sets.iter().collect();
        lineup_row(&mut t, format!("{k}"), &lineup, &ctx, &refs, opts.reps);
    }
    t.print();
    println!("(paper: RanGroupScan fastest, lead grows with k; RanGroup next; Merge beats the sophisticated baselines)");
}

// ---------------------------------------------------------------- space

fn space(opts: &Opts) {
    header(
        "Structure sizes (Section 4 'Size of the Data Structure')",
        opts,
    );
    let ctx = ctx(opts);
    let n = 4_000_000 / opts.scale;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (a, _) = pair_with_intersection(&mut rng, n, n, n / 100, universe_for(2 * n));
    let base = n * 4; // uncompressed posting list, 4 bytes per ID
    let mut t = Table::new(vec![
        "structure",
        "bytes",
        "overhead vs posting list",
        "paper",
    ]);
    let entries: Vec<(String, usize, &str)> = vec![
        ("posting list (Merge)".into(), base, "—"),
        (
            "IntGroup".into(),
            IntGroupIndex::build(&ctx, &a).size_in_bytes(),
            "+75%",
        ),
        (
            "RanGroup".into(),
            RanGroupIndex::build(&ctx, &a).size_in_bytes(),
            "+87% (64-bit words)",
        ),
        (
            "RanGroupScan(m=2)".into(),
            RanGroupScanIndex::with_m(&ctx, &a, 2).size_in_bytes(),
            "+37% (64-bit words)",
        ),
        (
            "RanGroupScan(m=4)".into(),
            RanGroupScanIndex::with_m(&ctx, &a, 4).size_in_bytes(),
            "+63% (64-bit words)",
        ),
    ];
    for (name, bytes, paper) in entries {
        let overhead = bytes as f64 / base as f64 - 1.0;
        t.row(vec![
            name,
            format!("{bytes}"),
            format!("{:+.0}%", overhead * 100.0),
            paper.to_string(),
        ]);
    }
    t.print();
    println!("(the paper counted one machine word per element; with 4-byte IDs the m hash words weigh relatively more — see EXPERIMENTS.md)");
}

// ---------------------------------------------------------------- fig7 / fig12

struct WorkloadRun {
    lineup: Vec<Strategy>,
    /// per query: (k, per-strategy median ms)
    times: Vec<(usize, Vec<f64>)>,
}

fn run_workload(opts: &Opts, lineup: Vec<Strategy>) -> WorkloadRun {
    let ctx = ctx(opts);
    let cfg = QueryLogConfig {
        num_queries: opts.queries,
        scale: opts.scale,
        // A dense document space, as in the paper's 8M-page corpus: 8x the
        // longest posting list the model can emit.
        universe: (64_000_000 / opts.scale as u64).max(1 << 22),
        seed: opts.seed,
        profile: WorkloadProfile::WebSearch,
    };
    let plans = querylog::plan(&cfg);
    let mut times = Vec::with_capacity(plans.len());
    for p in &plans {
        let q = p.materialize(cfg.universe);
        let refs: Vec<&SortedSet> = q.sets.iter().collect();
        let row: Vec<f64> = lineup
            .iter()
            .map(|&s| ms(run_strategy(s, &ctx, &refs, opts.reps).0))
            .collect();
        times.push((q.k(), row));
    }
    WorkloadRun { lineup, times }
}

fn workload_lineup() -> Vec<Strategy> {
    vec![
        Strategy::Merge,
        Strategy::SkipList,
        Strategy::Hash,
        Strategy::Bpp,
        Strategy::Lookup,
        Strategy::Svs,
        Strategy::Adaptive,
        Strategy::BaezaYates,
        Strategy::SmallAdaptive,
        Strategy::IntGroup,
        Strategy::RanGroup,
        Strategy::RanGroupScan { m: 4 },
        Strategy::HashBin,
        Strategy::Auto,
    ]
}

fn print_normalized(run: &WorkloadRun, filter_k: Option<usize>) {
    let merge_col = run
        .lineup
        .iter()
        .position(|s| *s == Strategy::Merge)
        .expect("Merge in lineup");
    let mut t = Table::new(vec!["algorithm", "normalized time (Merge = 1)", "best on"]);
    let rows: Vec<&(usize, Vec<f64>)> = run
        .times
        .iter()
        .filter(|(k, _)| filter_k.is_none_or(|want| *k == want))
        .collect();
    if rows.is_empty() {
        println!("(no queries with this keyword count in the sample)");
        return;
    }
    let mut wins = vec![0usize; run.lineup.len()];
    for (_, row) in &rows {
        let best = row
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        wins[best] += 1;
    }
    for (i, s) in run.lineup.iter().enumerate() {
        let norm: f64 = rows
            .iter()
            .map(|(_, row)| row[i] / row[merge_col].max(1e-9))
            .sum::<f64>()
            / rows.len() as f64;
        t.row(vec![
            s.name(),
            format!("{norm:.3}"),
            format!("{:.1}%", 100.0 * wins[i] as f64 / rows.len() as f64),
        ]);
    }
    t.print();
}

fn fig7(opts: &Opts) {
    header("Figure 7: real workload, normalized execution time", opts);
    let run = run_workload(opts, workload_lineup());
    print_normalized(&run, None);
    println!("(paper: RanGroupScan best overall — winner on 61.6% of queries, then RanGroup 16%, HashBin 7.7%; Lookup 6.4%, SvS 3.6%)");
}

fn fig12(opts: &Opts) {
    header(
        "Figure 12: real workload broken down by keyword count",
        opts,
    );
    let run = run_workload(opts, workload_lineup());
    for k in 2..=4usize {
        println!("-- {k}-keyword queries --");
        print_normalized(&run, Some(k));
    }
    println!("(paper: Merge degrades with k; Hash improves but stays near-worst; RanGroup edges RanGroupScan at k=4)");
}

// ---------------------------------------------------------------- fig8

fn fig8(opts: &Opts) {
    header("Figure 8: compressed structures, time and space", opts);
    let ctx = ctx(opts);
    let lineup = [
        Strategy::MergeCompressed(EliasCode::Delta),
        Strategy::LookupCompressed(EliasCode::Delta),
        Strategy::RgsCompressed(GroupCoding::Lowbits),
        Strategy::RgsCompressed(GroupCoding::Elias(EliasCode::Delta)),
        Strategy::Merge, // uncompressed reference
    ];
    let mut time_t = Table::new(
        std::iter::once("postings".to_string())
            .chain(lineup.iter().map(|s| s.name()))
            .collect::<Vec<_>>(),
    );
    let mut space_t = Table::new(
        std::iter::once("postings".to_string())
            .chain(lineup.iter().map(|s| s.name()))
            .collect::<Vec<_>>(),
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let scale = opts.scale.min(8);
    let mut n = 131_072 / scale;
    while n <= 8_388_608 / scale {
        let r = n / 100;
        let (a, b) = pair_with_intersection(&mut rng, n, n, r, universe_for(2 * n));
        let mut time_cells = vec![format!("{n}")];
        let mut space_cells = vec![format!("{n}")];
        for &s in &lineup {
            let (d, _, bytes) = run_strategy(s, &ctx, &[&a, &b], opts.reps);
            time_cells.push(fmt_ms(ms(d)));
            space_cells.push(format!("{}", bytes / 8)); // words, as the paper plots
        }
        time_t.row(time_cells);
        space_t.row(space_cells);
        n *= 2;
    }
    println!("-- intersection time (ms) --");
    time_t.print();
    println!("-- structure size (64-bit words, both sets) --");
    space_t.print();
    println!("(paper: RanGroupScan_Lowbits 7.6-15x faster than compressed Merge at 1.3-1.9x its size; γ ≈ δ for the baselines)");
}

// ---------------------------------------------------------------- compressed_real

fn compressed_real(opts: &Opts) {
    header(
        "Compressed variants on the real workload (Section 4.1)",
        opts,
    );
    let lineup = vec![
        Strategy::MergeCompressed(EliasCode::Delta),
        Strategy::MergeCompressed(EliasCode::Gamma),
        Strategy::LookupCompressed(EliasCode::Delta),
        Strategy::LookupCompressed(EliasCode::Gamma),
        Strategy::RgsCompressed(GroupCoding::Lowbits),
        Strategy::Merge,
    ];
    let run = run_workload(opts, lineup.clone());
    let low_col = lineup
        .iter()
        .position(|s| *s == Strategy::RgsCompressed(GroupCoding::Lowbits))
        .expect("lowbits in lineup");
    let mean_low: f64 =
        run.times.iter().map(|(_, row)| row[low_col]).sum::<f64>() / run.times.len() as f64;
    let worst_low = run
        .times
        .iter()
        .map(|(_, row)| row[low_col])
        .fold(0.0f64, f64::max);
    let mut t = Table::new(vec![
        "algorithm",
        "mean time / Lowbits",
        "worst-case latency / Lowbits",
        "paper (mean)",
    ]);
    let paper_mean = ["8.4x", "9.1x", "5.7x", "6.2x", "1x", "—"];
    for (i, s) in lineup.iter().enumerate() {
        let mean: f64 =
            run.times.iter().map(|(_, row)| row[i]).sum::<f64>() / run.times.len() as f64;
        let worst = run
            .times
            .iter()
            .map(|(_, row)| row[i])
            .fold(0.0f64, f64::max);
        t.row(vec![
            s.name(),
            format!("{:.2}x", mean / mean_low),
            format!("{:.2}x", worst / worst_low),
            paper_mean[i].to_string(),
        ]);
    }
    t.print();
    println!(
        "(paper also reports worst-case latency 4.4-5.6x higher for the compressed baselines)"
    );
}

// ---------------------------------------------------------------- fig9

fn fig9(opts: &Opts) {
    header("Figure 9: probability of successful filtering vs. m", opts);
    let ctx = HashContext::with_family_size(opts.seed, 8);
    let m_max = 8usize;
    // Synthetic: the Figure 4 workload (r = 1%).
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = 1_000_000 / opts.scale;
    let (a, b) = pair_with_intersection(&mut rng, n, n, n / 100, universe_for(2 * n));
    let ia = RanGroupScanIndex::with_m(&ctx, &a, m_max);
    let ib = RanGroupScanIndex::with_m(&ctx, &b, m_max);
    let syn = filtering_stats(&[&ia, &ib], m_max);
    // "Real": 2-keyword queries from the workload model.
    let cfg = QueryLogConfig {
        num_queries: opts.queries.min(30),
        scale: opts.scale,
        universe: (64_000_000 / opts.scale as u64).max(1 << 22),
        seed: opts.seed,
        profile: WorkloadProfile::WebSearch,
    };
    let mut real_empty = 0u64;
    let mut real_filtered = vec![0u64; m_max];
    for p in querylog::plan(&cfg).iter().filter(|p| p.k() == 2) {
        let q = p.materialize(cfg.universe);
        let idx: Vec<RanGroupScanIndex> = q
            .sets
            .iter()
            .map(|s| RanGroupScanIndex::with_m(&ctx, s, m_max))
            .collect();
        let refs: Vec<&RanGroupScanIndex> = idx.iter().collect();
        let st = filtering_stats(&refs, m_max);
        real_empty += st.empty_tuples;
        for (acc, v) in real_filtered.iter_mut().zip(&st.filtered_by_m) {
            *acc += v;
        }
    }
    let p1_theory = (1.0 - 1.0 / 8.0f64).powi(8); // Lemma A.1, w = 64
    let mut t = Table::new(vec![
        "m",
        "measured (synthetic)",
        "measured (query log)",
        "theory >= 1-(1-0.3436)^m",
    ]);
    for m in [1usize, 2, 4, 6, 8] {
        let syn_p = syn.probability(m);
        let real_p = if real_empty == 0 {
            1.0
        } else {
            real_filtered[m - 1] as f64 / real_empty as f64
        };
        let theory = 1.0 - (1.0 - p1_theory).powi(m as i32);
        t.row(vec![
            format!("{m}"),
            format!("{syn_p:.3}"),
            format!("{real_p:.3}"),
            format!("{theory:.3}"),
        ]);
    }
    t.print();
    println!("(paper: measured probabilities exceed the Lemma A.1/A.3 lower bounds and are similar on both datasets)");
}

// ---------------------------------------------------------------- fig10 / fig11

fn preprocessing_sets(opts: &Opts) -> Vec<(usize, Vec<u32>)> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    (1..=5usize)
        .map(|step| {
            let n = step * 2_000_000 / opts.scale;
            let mut v = fsi_workloads::sample_distinct(&mut rng, n, universe_for(n));
            v.shuffle(&mut rng); // builders receive unsorted input; sorting is part of the cost
            (n, v)
        })
        .collect()
}

fn time_build<T>(reps: usize, f: impl Fn() -> T) -> Duration {
    median_time(reps, &f)
}

fn fig10(opts: &Opts) {
    header(
        "Figure 10: preprocessing overhead (uncompressed structures)",
        opts,
    );
    let ctx = ctx(opts);
    let mut t = Table::new(vec![
        "set size",
        "Sorting",
        "HashBin",
        "IntGroup",
        "RanGroup",
        "RanGroupScan(m=4)",
    ]);
    for (n, raw) in preprocessing_sets(opts) {
        let sort_d = time_build(opts.reps, || {
            let mut v = raw.clone();
            v.sort_unstable();
            v
        });
        let sorted = SortedSet::from_unsorted(raw.clone());
        let hashbin_d = time_build(opts.reps, || HashBinIndex::build(&ctx, &sorted));
        let intgroup_d = time_build(opts.reps, || IntGroupIndex::build(&ctx, &sorted));
        let rangroup_d = time_build(opts.reps, || RanGroupIndex::build(&ctx, &sorted));
        let rgs_d = time_build(opts.reps, || RanGroupScanIndex::with_m(&ctx, &sorted, 4));
        t.row(vec![
            format!("{n}"),
            fmt_ms(ms(sort_d)),
            fmt_ms(ms(sort_d) + ms(hashbin_d)),
            fmt_ms(ms(sort_d) + ms(intgroup_d)),
            fmt_ms(ms(sort_d) + ms(rangroup_d)),
            fmt_ms(ms(sort_d) + ms(rgs_d)),
        ]);
    }
    t.print();
    println!("(columns include the sort, as in the paper; extra construction cost is a small multiple of sorting)");
}

fn fig11(opts: &Opts) {
    header(
        "Figure 11: preprocessing overhead (compressed structures)",
        opts,
    );
    let ctx = ctx(opts);
    let mut t = Table::new(vec![
        "set size",
        "Sorting",
        "RanGroupScan_Lowbits",
        "RanGroupScan_Gamma",
        "RanGroupScan_Delta",
        "Merge_Gamma",
        "Merge_Delta",
    ]);
    for (n, raw) in preprocessing_sets(opts) {
        let sort_d = time_build(opts.reps, || {
            let mut v = raw.clone();
            v.sort_unstable();
            v
        });
        let sorted = SortedSet::from_unsorted(raw.clone());
        let lowbits = time_build(opts.reps, || {
            CompressedRgsIndex::build(&ctx, &sorted, GroupCoding::Lowbits)
        });
        let rgs_gamma = time_build(opts.reps, || {
            CompressedRgsIndex::build(&ctx, &sorted, GroupCoding::Elias(EliasCode::Gamma))
        });
        let rgs_delta = time_build(opts.reps, || {
            CompressedRgsIndex::build(&ctx, &sorted, GroupCoding::Elias(EliasCode::Delta))
        });
        let merge_gamma = time_build(opts.reps, || {
            CompressedPostings::build(EliasCode::Gamma, &sorted)
        });
        let merge_delta = time_build(opts.reps, || {
            CompressedPostings::build(EliasCode::Delta, &sorted)
        });
        t.row(vec![
            format!("{n}"),
            fmt_ms(ms(sort_d)),
            fmt_ms(ms(sort_d) + ms(lowbits)),
            fmt_ms(ms(sort_d) + ms(rgs_gamma)),
            fmt_ms(ms(sort_d) + ms(rgs_delta)),
            fmt_ms(ms(sort_d) + ms(merge_gamma)),
            fmt_ms(ms(sort_d) + ms(merge_delta)),
        ]);
    }
    t.print();
    println!("(paper: Lowbits construction is significantly cheaper than the γ/δ alternatives)");
}

// ---------------------------------------------------------------- intro_stat

fn intro_stat(opts: &Opts) {
    header("Introduction statistic: Bing Shopping workload", opts);
    let cfg = QueryLogConfig {
        num_queries: 10_000,
        scale: opts.scale,
        universe: 1 << 31,
        seed: opts.seed,
        profile: WorkloadProfile::Shopping,
    };
    let plans = querylog::plan(&cfg);
    let stats = querylog::measure(&plans);
    let mut t = Table::new(vec!["statistic", "measured", "paper"]);
    t.row(vec![
        "queries with r <= n1/10".to_string(),
        format!("{:.1}%", stats.frac_r_le_tenth * 100.0),
        "94%".to_string(),
    ]);
    t.row(vec![
        "queries with r <= n1/100".to_string(),
        format!("{:.1}%", stats.frac_r_le_hundredth * 100.0),
        "76%".to_string(),
    ]);
    t.print();
}

// ---------------------------------------------------------------- ablations

fn ablation_group_size(opts: &Opts) {
    header("Ablation: group size (Appendix A.1.1)", opts);
    let ctx = ctx(opts);
    let n = 2_000_000 / opts.scale;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (a, b) = pair_with_intersection(&mut rng, n, n, n / 100, universe_for(2 * n));
    let mut t = Table::new(vec!["IntGroup width s", "time (ms)"]);
    for s in [2usize, 4, 8, 16, 32, 64] {
        let ia = IntGroupIndex::with_group_size(&ctx, &a, s);
        let ib = IntGroupIndex::with_group_size(&ctx, &b, s);
        let mut out = Vec::new();
        let d = median_time(opts.reps, || {
            out.clear();
            ia.intersect_pair_into(&ib, &mut out);
            out.len()
        });
        t.row(vec![format!("{s}"), fmt_ms(ms(d))]);
    }
    t.print();
    println!("(theory: s = sqrt(w) = 8 balances group-pair count against hash collisions)");

    // Theorem 3.4 payoff: optimal unequal widths vs fixed sqrt(w) on skew.
    let mut t = Table::new(vec!["sr", "IntGroup (s=8)", "IntGroupOpt (Thm 3.4)"]);
    for sr in [1usize, 8, 64, 512] {
        let n1 = (n / sr).max(16);
        let (a, b) =
            pair_with_intersection(&mut rng, n1, n, (n1 / 100).max(1), universe_for(n1 + n));
        let ia = IntGroupIndex::build(&ctx, &a);
        let ib = IntGroupIndex::build(&ctx, &b);
        let oa = fsi_core::IntGroupOptIndex::build(&ctx, &a);
        let ob = fsi_core::IntGroupOptIndex::build(&ctx, &b);
        let mut out = Vec::new();
        let d_fixed = median_time(opts.reps, || {
            out.clear();
            ia.intersect_pair_into(&ib, &mut out);
            out.len()
        });
        let d_opt = median_time(opts.reps, || {
            out.clear();
            fsi_core::traits::PairIntersect::intersect_pair_into(&oa, &ob, &mut out);
            out.len()
        });
        t.row(vec![
            format!("{sr}"),
            fmt_ms(ms(d_fixed)),
            fmt_ms(ms(d_opt)),
        ]);
    }
    t.print();
    println!("(Appendix A.1.1: optimal widths s* = sqrt(w*n1/n2) pay off as the size ratio grows)");

    let mut t = Table::new(vec!["RanGroupScan level offset", "groups", "time (ms)"]);
    let base_t = fsi_core::partition_level(n);
    for offset in -2i32..=2 {
        let t_level = (base_t as i32 + offset).clamp(0, 31) as u32;
        let ia = RanGroupScanIndex::with_m_and_level(&ctx, &a, 2, t_level);
        let ib = RanGroupScanIndex::with_m_and_level(&ctx, &b, 2, t_level);
        let mut out = Vec::new();
        let d = median_time(opts.reps, || {
            out.clear();
            fsi_core::traits::PairIntersect::intersect_pair_into(&ia, &ib, &mut out);
            out.len()
        });
        t.row(vec![
            format!("{offset:+}"),
            format!("2^{t_level}"),
            fmt_ms(ms(d)),
        ]);
    }
    t.print();
}

fn ablation_m(opts: &Opts) {
    header("Ablation: number of hash images m (Section 3.3)", opts);
    let ctx = HashContext::with_family_size(opts.seed, 8);
    let n = 2_000_000 / opts.scale;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (a, b) = pair_with_intersection(&mut rng, n, n, n / 1000, universe_for(2 * n));
    let four: Vec<SortedSet> = k_sets_uniform(&mut rng, 4, n, universe_for(4 * n));
    let mut t = Table::new(vec![
        "m",
        "2-set time (ms)",
        "4-set time (ms)",
        "bytes/elem",
    ]);
    for m in [1usize, 2, 4, 6, 8] {
        let ia = RanGroupScanIndex::with_m(&ctx, &a, m);
        let ib = RanGroupScanIndex::with_m(&ctx, &b, m);
        let mut out = Vec::new();
        let d2 = median_time(opts.reps, || {
            out.clear();
            fsi_core::traits::PairIntersect::intersect_pair_into(&ia, &ib, &mut out);
            out.len()
        });
        let idx4: Vec<RanGroupScanIndex> = four
            .iter()
            .map(|s| RanGroupScanIndex::with_m(&ctx, s, m))
            .collect();
        let refs4: Vec<&RanGroupScanIndex> = idx4.iter().collect();
        let d4 = median_time(opts.reps, || {
            out.clear();
            fsi_core::traits::KIntersect::intersect_k_into(&refs4, &mut out);
            out.len()
        });
        t.row(vec![
            format!("{m}"),
            fmt_ms(ms(d2)),
            fmt_ms(ms(d4)),
            format!("{:.2}", ia.size_in_bytes() as f64 / n as f64),
        ]);
    }
    t.print();
    println!("(more images filter more empty groups but cost m word-ANDs per tuple and m words per group)");
}

fn ablation_bucket_width(opts: &Opts) {
    header(
        "Ablation: Lookup bucket width B (Section 4: 'B = 32 ... best value')",
        opts,
    );
    let n = 2_000_000 / opts.scale;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (a, b) = pair_with_intersection(&mut rng, n, n, n / 100, universe_for(2 * n));
    let (s1, s2) = pair_with_intersection(&mut rng, n / 100, n, n / 10_000, universe_for(n));
    let mut t = Table::new(vec![
        "B",
        "balanced (ms)",
        "skewed 1:100 (ms)",
        "dir bytes/elem",
    ]);
    for log2b in [2u32, 3, 4, 5, 6, 7, 8] {
        let ia = fsi_baselines::LookupIndex::with_bucket_log2(&a, log2b);
        let ib = fsi_baselines::LookupIndex::with_bucket_log2(&b, log2b);
        let mut out = Vec::new();
        let d_bal = median_time(opts.reps, || {
            out.clear();
            fsi_core::traits::PairIntersect::intersect_pair_into(&ia, &ib, &mut out);
            out.len()
        });
        let ja = fsi_baselines::LookupIndex::with_bucket_log2(&s1, log2b);
        let jb = fsi_baselines::LookupIndex::with_bucket_log2(&s2, log2b);
        let d_skew = median_time(opts.reps, || {
            out.clear();
            fsi_core::traits::PairIntersect::intersect_pair_into(&ja, &jb, &mut out);
            out.len()
        });
        let dir_per_elem = (ia.size_in_bytes() as f64 - (ia.n() * 4) as f64) / ia.n() as f64;
        t.row(vec![
            format!("{}", 1u32 << log2b),
            fmt_ms(ms(d_bal)),
            fmt_ms(ms(d_skew)),
            format!("{dir_per_elem:.2}"),
        ]);
    }
    t.print();
    println!("(small B: directory dominates; large B: in-bucket merges dominate; the paper and [21] land on B = 32)");
}

fn planner_eval(opts: &Opts) {
    header(
        "Planner: per-query physical-plan choice vs fixed strategies",
        opts,
    );
    let ctx = ctx(opts);
    let cfg = QueryLogConfig {
        num_queries: opts.queries,
        scale: opts.scale,
        universe: (64_000_000 / opts.scale as u64).max(1 << 22),
        seed: opts.seed,
        profile: WorkloadProfile::WebSearch,
    };
    let planner = fsi_index::Planner::default();
    let (mut t_planner, mut t_rgs, mut t_hash, mut t_merge) = (0f64, 0f64, 0f64, 0f64);
    let mut plans = [0usize; 5];
    for p in querylog::plan(&cfg) {
        let q = p.materialize(cfg.universe);
        let lists: Vec<fsi_index::PlannedList> = q
            .sets
            .iter()
            .map(|s| fsi_index::PlannedList::build(&ctx, s))
            .collect();
        let refs: Vec<&fsi_index::PlannedList> = lists.iter().collect();
        let mut out = Vec::new();
        let d = median_time(opts.reps, || {
            out.clear();
            let plan = planner.intersect(&refs, &mut out);
            (plan, out.len())
        });
        t_planner += ms(d);
        match planner
            .plan_for_sets(&q.sets.iter().collect::<Vec<_>>())
            .kind
        {
            fsi_index::PlanKind::RanGroupScan => plans[0] += 1,
            fsi_index::PlanKind::HashProbe => plans[1] += 1,
            fsi_index::PlanKind::BitmapAnd => plans[2] += 1,
            fsi_index::PlanKind::GallopProbe => plans[3] += 1,
            _ => plans[4] += 1,
        }
        let sets: Vec<&SortedSet> = q.sets.iter().collect();
        t_rgs += ms(run_strategy(Strategy::RanGroupScan { m: 2 }, &ctx, &sets, opts.reps).0);
        t_hash += ms(run_strategy(Strategy::Hash, &ctx, &sets, opts.reps).0);
        t_merge += ms(run_strategy(Strategy::Merge, &ctx, &sets, opts.reps).0);
    }
    let nq = opts.queries as f64;
    let mut t = Table::new(vec!["executor", "mean ms/query", "note"]);
    t.row(vec![
        "Planner".to_string(),
        fmt_ms(t_planner / nq),
        format!(
            "{} RanGroupScan / {} HashProbe / {} BitmapAnd / {} GallopProbe / {} other",
            plans[0], plans[1], plans[2], plans[3], plans[4]
        ),
    ]);
    t.row(vec![
        "RanGroupScan(m=2) always".to_string(),
        fmt_ms(t_rgs / nq),
        String::new(),
    ]);
    t.row(vec![
        "Hash always".to_string(),
        fmt_ms(t_hash / nq),
        String::new(),
    ]);
    t.row(vec![
        "Merge always".to_string(),
        fmt_ms(t_merge / nq),
        String::new(),
    ]);
    t.print();
    println!("(the conclusion's robustness claim: the per-query choice should track the best fixed strategy)");
}

/// Differential fuzzing: every strategy vs the reference on random inputs.
fn verify(opts: &Opts) {
    header("Differential verification across all strategies", opts);
    let ctx = ctx(opts);
    let mut strategies = Strategy::uncompressed_lineup();
    strategies.push(Strategy::Auto);
    strategies.push(Strategy::IntGroupOpt);
    strategies.push(Strategy::Treap);
    strategies.extend(Strategy::compressed_lineup());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let trials = opts.queries.max(20);
    for trial in 0..trials {
        let k = rng.gen_range(2..=4usize);
        let u = rng.gen_range(1..50_000u32) as u64;
        let sets: Vec<SortedSet> = (0..k)
            .map(|_| {
                let n = rng.gen_range(0..3000usize).min(u as usize);
                SortedSet::from_sorted_unchecked(fsi_workloads::sample_distinct(&mut rng, n, u))
            })
            .collect();
        let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let expect = fsi_core::reference_intersection(&slices);
        for &strat in &strategies {
            let prepared: Vec<PreparedList> = sets.iter().map(|s| strat.prepare(&ctx, s)).collect();
            let refs: Vec<&PreparedList> = prepared.iter().collect();
            let got = fsi_index::strategy::intersect_sorted(&refs);
            assert_eq!(got, expect, "{} diverged on trial {trial}", strat.name());
        }
        if (trial + 1) % 10 == 0 {
            println!("  {} / {trials} trials verified", trial + 1);
        }
    }
    println!(
        "all {} strategies agree with the reference on {trials} random k-way inputs",
        strategies.len()
    );
}

// ---------------------------------------------------------------- shared helpers

#[allow(dead_code)]
fn check(lists: &[&PreparedList]) -> usize {
    let mut out = Vec::new();
    intersect_into(lists, &mut out);
    out.len()
}
