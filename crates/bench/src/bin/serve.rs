//! Serving-layer cache benchmark.
//!
//! Builds a Zipf corpus, shards it, and replays a Zipf-skewed query
//! stream through the worker pool twice — cold, then warm — recording
//! the result cache's throughput effect and hit rate into
//! `BENCH_serve.json` (hand-rolled JSON: this environment has no registry
//! access, so no serde).
//!
//! The closed-loop worker-scaling rows this file used to carry are gone:
//! a closed-loop generator collapses offered load to whatever the server
//! sustains, so the rows measured OS timeslicing on small CI boxes and
//! said nothing about overload. Serving behavior under real load —
//! goodput against a deadline, shed rate, past-saturation degradation —
//! is `BENCH_slo.json`'s job (`fsi-bench --bin slo`), which drives the
//! TCP front door open-loop.
//!
//! Usage: `cargo run --release -p fsi-bench --bin serve -- [out.json] [--smoke]`

use fsi_bench::{ms, HarnessArgs};
use fsi_core::HashContext;
use fsi_index::{Corpus, CorpusConfig, SearchEngine, Strategy};
use fsi_serve::{ExecMode, QueryCache, QueryPool, ShardedEngine};
use fsi_workloads::stream::{generate_stream, repeat_rate, QueryStreamConfig};

const NUM_SHARDS: usize = 4;
const NUM_WORKERS: usize = 4;

fn main() {
    let args = HarnessArgs::parse("BENCH_serve.json");
    // Smoke keeps the full corpus and stream (the whole run takes seconds):
    // a smaller corpus would shorten every posting list and inflate qps,
    // leaving the one-sided regression gate comparing unlike numbers — a
    // real throughput cliff could hide above the full-size baseline's
    // floor. The --smoke flag still stamps `"smoke": true` so the output
    // can never be committed as a baseline.
    let num_docs: u32 = 400_000;
    let num_terms: usize = 1 << 11;
    let num_queries: usize = 4_000;

    println!(
        "corpus: {num_docs} docs x {num_terms} terms, {NUM_SHARDS} shards; \
         stream: {num_queries} Zipf queries{}",
        if args.smoke { " [smoke]" } else { "" }
    );
    let corpus = Corpus::generate(CorpusConfig {
        num_docs,
        num_terms,
        ..CorpusConfig::default()
    });
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let stream = generate_stream(&QueryStreamConfig {
        num_queries,
        num_terms,
        ..QueryStreamConfig::default()
    });
    let stream_repeat_rate = repeat_rate(&stream);
    println!("stream repeat rate: {stream_repeat_rate:.3}\n");

    let strategy = Strategy::RanGroupScan { m: 2 };
    // One prepared sharded engine for both passes: only the cache state
    // varies, so the compared runs measure the identical index.
    let engine = SearchEngine::from_corpus(ctx, corpus);
    let sharded = ShardedEngine::build(&engine, NUM_SHARDS, ExecMode::Fixed(strategy));

    let cache = QueryCache::new(8192, 8);
    let pool = QueryPool::new(NUM_WORKERS);
    // Warm-up pass (cache off) settles the allocator before measuring.
    let _ = pool.run_batch(&sharded, None, &stream[..stream.len() / 4]);
    let cold = pool.run_batch(&sharded, Some(&cache), &stream);
    let warm = pool.run_batch(&sharded, Some(&cache), &stream);
    let cache_stats = cache.stats();
    println!(
        "cache: cold {:.0} q/s ({:.1} ms, hits {}), warm {:.0} q/s ({:.1} ms, hits {}), \
         hit rate {:.3}",
        cold.throughput_qps,
        ms(cold.wall),
        cold.cache_hits,
        warm.throughput_qps,
        ms(warm.wall),
        warm.cache_hits,
        cache_stats.hit_rate()
    );

    let env = fsi_bench::env_json();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {},\n  {env},\n  \"config\": {{\n    \
         \"num_docs\": {num_docs},\n    \"num_terms\": {num_terms},\n    \
         \"num_queries\": {num_queries},\n    \
         \"num_shards\": {NUM_SHARDS},\n    \"available_cores\": {cores},\n    \
         \"strategy\": \"{}\",\n    \
         \"stream_repeat_rate\": {stream_repeat_rate:.4}\n  }},\n  \
         \"cache\": {{\n    \"capacity\": 8192,\n    \"workers\": {NUM_WORKERS},\n    \
         \"cold_qps\": {:.1},\n    \"warm_qps\": {:.1},\n    \"warm_hits\": {},\n    \
         \"hit_rate\": {:.4},\n    \"evictions\": {}\n  }}\n}}\n",
        args.smoke,
        strategy.name(),
        cold.throughput_qps,
        warm.throughput_qps,
        warm.cache_hits,
        cache_stats.hit_rate(),
        cache_stats.evictions,
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
