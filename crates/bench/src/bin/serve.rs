//! Serving-layer throughput benchmark.
//!
//! Builds a Zipf corpus, shards it, replays a Zipf-skewed query stream
//! through the worker pool at 1/2/4 workers, and records the scaling
//! baseline plus cache behaviour into `BENCH_serve.json` (hand-rolled
//! JSON: this environment has no registry access, so no serde).
//!
//! Usage: `cargo run --release -p fsi-bench --bin serve -- [out.json]`

use fsi_bench::{ms, Table};
use fsi_core::HashContext;
use fsi_index::{Corpus, CorpusConfig, SearchEngine, Strategy};
use fsi_serve::{ExecMode, QueryCache, QueryPool, ShardedEngine};
use fsi_workloads::stream::{generate_stream, repeat_rate, QueryStreamConfig};

const NUM_DOCS: u32 = 400_000;
const NUM_TERMS: usize = 1 << 11;
const NUM_QUERIES: usize = 4_000;
const NUM_SHARDS: usize = 4;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct ScalingRow {
    workers: usize,
    qps: f64,
    wall_ms: f64,
    p50_us: f64,
    p99_us: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    println!(
        "corpus: {NUM_DOCS} docs x {NUM_TERMS} terms, {NUM_SHARDS} shards; \
         stream: {NUM_QUERIES} Zipf queries"
    );
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: NUM_DOCS,
        num_terms: NUM_TERMS,
        ..CorpusConfig::default()
    });
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let stream = generate_stream(&QueryStreamConfig {
        num_queries: NUM_QUERIES,
        num_terms: NUM_TERMS,
        ..QueryStreamConfig::default()
    });
    let stream_repeat_rate = repeat_rate(&stream);
    println!("stream repeat rate: {stream_repeat_rate:.3}\n");

    let strategy = Strategy::RanGroupScan { m: 2 };
    // One prepared sharded engine shared by every run: only the pool width
    // and cache vary, so the expensive preprocessing happens once and all
    // compared runs measure the identical index.
    let engine = SearchEngine::from_corpus(ctx, corpus);
    let sharded = ShardedEngine::build(&engine, NUM_SHARDS, ExecMode::Fixed(strategy));

    // Scaling baseline: cache disabled so every query exercises the shards.
    let mut scaling = Vec::new();
    let mut table = Table::new(vec!["workers", "qps", "batch ms", "p50 us", "p99 us"]);
    for &workers in &WORKER_COUNTS {
        let pool = QueryPool::new(workers);
        // Warm-up pass, then the measured pass.
        let _ = pool.run_batch(&sharded, None, &stream[..stream.len() / 4]);
        let outcome = pool.run_batch(&sharded, None, &stream);
        table.row(vec![
            workers.to_string(),
            format!("{:.0}", outcome.throughput_qps),
            format!("{:.1}", ms(outcome.wall)),
            format!("{:.1}", outcome.latency.p50_us),
            format!("{:.1}", outcome.latency.p99_us),
        ]);
        scaling.push(ScalingRow {
            workers,
            qps: outcome.throughput_qps,
            wall_ms: ms(outcome.wall),
            p50_us: outcome.latency.p50_us,
            p99_us: outcome.latency.p99_us,
        });
    }
    table.print();

    // Cache-fronted run at the widest worker count, same engine.
    let workers = *WORKER_COUNTS.last().expect("non-empty");
    let cache = QueryCache::new(8192, 8);
    let pool = QueryPool::new(workers);
    let cold = pool.run_batch(&sharded, Some(&cache), &stream);
    let warm = pool.run_batch(&sharded, Some(&cache), &stream);
    let cache_stats = cache.stats();
    println!(
        "\ncache: cold {:.0} q/s (hits {}), warm {:.0} q/s (hits {}), hit rate {:.3}",
        cold.throughput_qps,
        cold.cache_hits,
        warm.throughput_qps,
        warm.cache_hits,
        cache_stats.hit_rate()
    );

    // Percentiles are NaN for an empty batch (LatencySummary's "never a
    // silent 0" contract) and `{:.2}` would write a bare NaN token, which
    // is not valid JSON — emit null for anything non-finite.
    let json_f64 = |v: f64| {
        if v.is_finite() {
            format!("{v:.2}")
        } else {
            "null".to_string()
        }
    };
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"qps\": {:.1}, \"batch_ms\": {:.2}, \
                 \"p50_us\": {}, \"p99_us\": {}}}",
                r.workers,
                r.qps,
                r.wall_ms,
                json_f64(r.p50_us),
                json_f64(r.p99_us)
            )
        })
        .collect();
    // Scaling numbers are only meaningful relative to the cores actually
    // available (CI containers are often single-core).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"config\": {{\n    \"num_docs\": {NUM_DOCS},\n    \
         \"num_terms\": {NUM_TERMS},\n    \"num_queries\": {NUM_QUERIES},\n    \
         \"num_shards\": {NUM_SHARDS},\n    \"available_cores\": {cores},\n    \
         \"strategy\": \"{}\",\n    \
         \"stream_repeat_rate\": {stream_repeat_rate:.4}\n  }},\n  \"scaling\": [\n{}\n  ],\n  \
         \"cache\": {{\n    \"capacity\": 8192,\n    \"workers\": {workers},\n    \
         \"cold_qps\": {:.1},\n    \"warm_qps\": {:.1},\n    \"warm_hits\": {},\n    \
         \"hit_rate\": {:.4},\n    \"evictions\": {}\n  }}\n}}\n",
        strategy.name(),
        scaling_json.join(",\n"),
        cold.throughput_qps,
        warm.throughput_qps,
        warm.cache_hits,
        cache_stats.hit_rate(),
        cache_stats.evictions,
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    println!("\nwrote {out_path}");
}
