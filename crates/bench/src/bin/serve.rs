//! Serving-layer throughput benchmark.
//!
//! Builds a Zipf corpus, shards it, replays a Zipf-skewed query stream
//! through the worker pool at 1/2/4 workers, and records the scaling
//! baseline plus cache behaviour into `BENCH_serve.json` (hand-rolled
//! JSON: this environment has no registry access, so no serde).
//!
//! Worker counts above the machine's available parallelism are
//! **annotated** (`"oversubscribed": true`): latencies are measured from
//! query pickup, so with more workers than cores the OS timeslices the
//! workers and tail latencies inflate by queue-wait-in-disguise — a 10x
//! p99 "regression" from 1→4 workers on a 1-core box is scheduling, not
//! algorithmic. Consumers (docs/benchmarks.md, the CI regression gate)
//! must not read latency fields of oversubscribed rows as meaningful.
//!
//! Usage: `cargo run --release -p fsi-bench --bin serve -- [out.json] [--smoke]`

use fsi_bench::{ms, HarnessArgs, Table};
use fsi_core::HashContext;
use fsi_index::{Corpus, CorpusConfig, SearchEngine, Strategy};
use fsi_serve::{ExecMode, QueryCache, QueryPool, ShardedEngine};
use fsi_workloads::stream::{generate_stream, repeat_rate, QueryStreamConfig};

const NUM_SHARDS: usize = 4;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct ScalingRow {
    workers: usize,
    qps: f64,
    wall_ms: f64,
    p50_us: f64,
    p99_us: f64,
    max_queue_depth: usize,
    oversubscribed: bool,
}

fn main() {
    let args = HarnessArgs::parse("BENCH_serve.json");
    // Smoke keeps the full corpus and stream (the whole run takes seconds):
    // a smaller corpus would shorten every posting list and inflate qps,
    // leaving the one-sided regression gate comparing unlike numbers — a
    // real throughput cliff could hide above the full-size baseline's
    // floor. The --smoke flag still stamps `"smoke": true` so the output
    // can never be committed as a baseline.
    let num_docs: u32 = 400_000;
    let num_terms: usize = 1 << 11;
    let num_queries: usize = 4_000;

    println!(
        "corpus: {num_docs} docs x {num_terms} terms, {NUM_SHARDS} shards; \
         stream: {num_queries} Zipf queries{}",
        if args.smoke { " [smoke]" } else { "" }
    );
    let corpus = Corpus::generate(CorpusConfig {
        num_docs,
        num_terms,
        ..CorpusConfig::default()
    });
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let stream = generate_stream(&QueryStreamConfig {
        num_queries,
        num_terms,
        ..QueryStreamConfig::default()
    });
    let stream_repeat_rate = repeat_rate(&stream);
    println!("stream repeat rate: {stream_repeat_rate:.3}\n");

    let strategy = Strategy::RanGroupScan { m: 2 };
    // One prepared sharded engine shared by every run: only the pool width
    // and cache vary, so the expensive preprocessing happens once and all
    // compared runs measure the identical index.
    let engine = SearchEngine::from_corpus(ctx, corpus);
    let sharded = ShardedEngine::build(&engine, NUM_SHARDS, ExecMode::Fixed(strategy));

    // Scaling numbers are only meaningful relative to the cores actually
    // available (CI containers are often single-core).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Scaling baseline: cache disabled so every query exercises the shards.
    let mut scaling = Vec::new();
    let mut table = Table::new(vec![
        "workers",
        "qps",
        "batch ms",
        "p50 us",
        "p99 us",
        "max depth",
        "note",
    ]);
    for &workers in &WORKER_COUNTS {
        let pool = QueryPool::new(workers);
        // Warm-up pass, then the measured pass.
        let _ = pool.run_batch(&sharded, None, &stream[..stream.len() / 4]);
        let outcome = pool.run_batch(&sharded, None, &stream);
        let oversubscribed = workers > cores;
        let max_queue_depth = outcome.queue_depths.iter().copied().max().unwrap_or(0);
        table.row(vec![
            workers.to_string(),
            format!("{:.0}", outcome.throughput_qps),
            format!("{:.1}", ms(outcome.wall)),
            format!("{:.1}", outcome.latency.p50_us),
            format!("{:.1}", outcome.latency.p99_us),
            max_queue_depth.to_string(),
            if oversubscribed {
                format!("oversubscribed ({workers} workers > {cores} cores)")
            } else {
                String::new()
            },
        ]);
        scaling.push(ScalingRow {
            workers,
            qps: outcome.throughput_qps,
            wall_ms: ms(outcome.wall),
            p50_us: outcome.latency.p50_us,
            p99_us: outcome.latency.p99_us,
            max_queue_depth,
            oversubscribed,
        });
    }
    table.print();
    if scaling.iter().any(|r| r.oversubscribed) {
        println!(
            "note: rows flagged oversubscribed ran more workers than the {cores} available \
             core(s); their latency percentiles measure OS timeslicing, not the algorithms."
        );
    }

    // Cache-fronted run at the widest worker count, same engine.
    let workers = *WORKER_COUNTS.last().expect("non-empty");
    let cache = QueryCache::new(8192, 8);
    let pool = QueryPool::new(workers);
    let cold = pool.run_batch(&sharded, Some(&cache), &stream);
    let warm = pool.run_batch(&sharded, Some(&cache), &stream);
    let cache_stats = cache.stats();
    println!(
        "\ncache: cold {:.0} q/s (hits {}), warm {:.0} q/s (hits {}), hit rate {:.3}",
        cold.throughput_qps,
        cold.cache_hits,
        warm.throughput_qps,
        warm.cache_hits,
        cache_stats.hit_rate()
    );

    // Percentiles are NaN for an empty batch (LatencySummary's "never a
    // silent 0" contract) and `{:.2}` would write a bare NaN token, which
    // is not valid JSON — emit null for anything non-finite.
    let json_f64 = |v: f64| {
        if v.is_finite() {
            format!("{v:.2}")
        } else {
            "null".to_string()
        }
    };
    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"qps\": {:.1}, \"batch_ms\": {:.2}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"max_queue_depth\": {}, \
                 \"oversubscribed\": {}}}",
                r.workers,
                r.qps,
                r.wall_ms,
                json_f64(r.p50_us),
                json_f64(r.p99_us),
                r.max_queue_depth,
                r.oversubscribed
            )
        })
        .collect();
    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {},\n  {env},\n  \"config\": {{\n    \
         \"num_docs\": {num_docs},\n    \"num_terms\": {num_terms},\n    \
         \"num_queries\": {num_queries},\n    \
         \"num_shards\": {NUM_SHARDS},\n    \"available_cores\": {cores},\n    \
         \"strategy\": \"{}\",\n    \
         \"stream_repeat_rate\": {stream_repeat_rate:.4}\n  }},\n  \"scaling\": [\n{}\n  ],\n  \
         \"cache\": {{\n    \"capacity\": 8192,\n    \"workers\": {workers},\n    \
         \"cold_qps\": {:.1},\n    \"warm_qps\": {:.1},\n    \"warm_hits\": {},\n    \
         \"hit_rate\": {:.4},\n    \"evictions\": {}\n  }}\n}}\n",
        args.smoke,
        strategy.name(),
        scaling_json.join(",\n"),
        cold.throughput_qps,
        warm.throughput_qps,
        warm.cache_hits,
        cache_stats.hit_rate(),
        cache_stats.evictions,
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
