//! Multiway-layer throughput benchmark: true k-way intersection (the
//! `fsi-kernels` multiway layer and the `fsi-index` cost-model planner)
//! against the pairwise-fold baseline that materializes every intermediate
//! result.
//!
//! For each shape and k ∈ {2, 3, 5, 8}, all prepared structures are built
//! outside the timed region (what a serving shard amortizes across
//! queries); each row reports microseconds per k-way intersection and the
//! speedup over `PairwiseFold(Merge)` — sort by length, intersect the two
//! smallest with a scalar merge, fold each remaining list in — on the same
//! operands. Results land in `BENCH_multiway.json` (hand-rolled JSON: the
//! reference environment has no registry access, so no serde).
//!
//! Usage: `cargo run --release -p fsi-bench --bin multiway -- [out.json] [--smoke]`

use fsi_bench::{min_time, HarnessArgs, Table};
use fsi_core::{HashContext, KIntersect, SortedSet};
use fsi_index::{PlannedList, Planner};
use fsi_kernels::{
    gallop_probe_into, heap_merge_into, pairwise_fold_into, AutoKernel, BitmapSet, ScalarMerge,
};
use fsi_workloads::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KS: [usize; 4] = [2, 3, 5, 8];

/// One benchmark shape: how the k operand lists are generated.
struct Shape {
    name: &'static str,
    /// Size of list `i` of `k` (index 0 is the smallest).
    size: fn(i: usize) -> usize,
    universe: u32,
    zipf: bool,
}

const SHAPES: [Shape; 4] = [
    Shape {
        name: "balanced-sparse",
        size: |_| 60_000,
        universe: 8_000_000,
        zipf: false,
    },
    Shape {
        name: "balanced-dense",
        size: |_| 80_000,
        universe: 600_000,
        zipf: false,
    },
    Shape {
        name: "skewed-1:64",
        size: |i| if i == 0 { 2_000 } else { 128_000 },
        universe: 8_000_000,
        zipf: false,
    },
    Shape {
        name: "zipf-clustered",
        size: |_| 60_000,
        universe: 2_000_000,
        zipf: true,
    },
];

/// Draws a set of `n` distinct values: uniform over the universe, or (for
/// Zipf shapes) rank-skewed so values cluster at the low end — dense head,
/// sparse tail, the document-frequency shape real posting lists have.
fn draw_set(rng: &mut StdRng, n: usize, universe: u32, zipf: bool) -> SortedSet {
    if zipf {
        let z = Zipf::new(universe as usize, 1.0);
        let mut vals: Vec<u32> = (0..4 * n).map(|_| z.sample(rng) as u32).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.truncate(n);
        SortedSet::from_sorted_unchecked(vals)
    } else {
        (0..n).map(|_| rng.gen_range(0..universe)).collect()
    }
}

struct Row {
    algo: String,
    us: f64,
    speedup: f64,
}

fn main() {
    let args = HarnessArgs::parse("BENCH_multiway.json");
    // Smoke keeps the full configuration (the whole run takes seconds):
    // shrinking the lists would change their *density*, moving shapes
    // across kernel regimes, and fewer reps leaves the cache-sensitive
    // hash-probe medians on cold samples — both would make the regression
    // gate compare unlike numbers.
    let reps = 11;
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let mut rng = StdRng::seed_from_u64(fsi_bench::HARNESS_SEED);
    let planner = Planner::auto();
    let mut shape_json: Vec<String> = Vec::new();

    for shape in &SHAPES {
        for &k in &KS {
            let sets: Vec<SortedSet> = (0..k)
                .map(|i| draw_set(&mut rng, (shape.size)(i), shape.universe, shape.zipf))
                .collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            let sizes: Vec<usize> = sets.iter().map(|s| s.len()).collect();
            println!(
                "\n== {} k={k} (sizes {:?}, universe {}) ==",
                shape.name, sizes, shape.universe
            );

            // Prepared forms, built outside the timed region.
            let planned: Vec<PlannedList> =
                sets.iter().map(|s| PlannedList::build(&ctx, s)).collect();
            let planned_refs: Vec<&PlannedList> = planned.iter().collect();
            let bitmaps: Vec<BitmapSet> = sets.iter().map(BitmapSet::build).collect();
            let bitmap_refs: Vec<&BitmapSet> = bitmaps.iter().collect();

            let mut expect: Vec<u32> = Vec::new();
            pairwise_fold_into(&ScalarMerge, &slices, &mut expect);
            let r = expect.len();
            let plan = planner.plan_for_lists(&planned_refs);

            let auto = AutoKernel::default();
            let mut out: Vec<u32> = Vec::new();
            let mut rows: Vec<Row> = Vec::new();
            let mut bench = |algo: &str, rows: &mut Vec<Row>, f: &mut dyn FnMut(&mut Vec<u32>)| {
                // Microsecond-scale ops (the planned path on skewed
                // shapes runs in single-digit µs) are too noisy to gate at
                // one call per timing: amortize each timing over enough
                // inner iterations to reach ~1ms, and report the *minimum*
                // across reps — the classical steady-state estimator,
                // immune to scheduling and cold-cache outliers that would
                // trip the 2x regression gate.
                let once = fsi_bench::time_once(|| {
                    out.clear();
                    f(&mut out);
                    out.len()
                });
                let inner = (1_000_000 / once.as_nanos().max(1)).clamp(1, 256) as usize;
                let d = min_time(reps, || {
                    let mut len = 0;
                    for _ in 0..inner {
                        out.clear();
                        f(&mut out);
                        len = out.len();
                    }
                    len
                });
                let d = d / inner as u32;
                let mut check = std::mem::take(&mut out);
                check.sort_unstable();
                assert_eq!(
                    check, expect,
                    "algo {algo} diverged on {} k={k}",
                    shape.name
                );
                out = check;
                rows.push(Row {
                    algo: algo.to_string(),
                    us: d.as_secs_f64() * 1e6,
                    speedup: 0.0, // filled once the fold row exists
                });
            };

            bench("PairwiseFold(Merge)", &mut rows, &mut |out| {
                pairwise_fold_into(&ScalarMerge, &slices, out)
            });
            bench("PairwiseFold(Auto)", &mut rows, &mut |out| {
                pairwise_fold_into(&auto, &slices, out)
            });
            bench("GallopProbe", &mut rows, &mut |out| {
                gallop_probe_into(&slices, out)
            });
            bench("HeapMerge", &mut rows, &mut |out| {
                heap_merge_into(&slices, out)
            });
            bench("BitmapAnd", &mut rows, &mut |out| {
                BitmapSet::intersect_k_into(&bitmap_refs, out)
            });
            // Fixed label (the chosen kind is recorded in the shape's
            // "plan" field) so the regression checker can match rows
            // across runs whose sizes lead to different plans.
            bench("Planned", &mut rows, &mut |out| {
                planner.execute(&plan, &planned_refs, out);
            });

            let fold_us = rows[0].us;
            for row in &mut rows {
                row.speedup = if row.us > 0.0 { fold_us / row.us } else { 0.0 };
            }

            let mut table = Table::new(vec!["algo", "us/op", "speedup vs fold"]);
            let algo_json: Vec<String> = rows
                .iter()
                .map(|row| {
                    table.row(vec![
                        row.algo.clone(),
                        format!("{:.1}", row.us),
                        format!("{:.2}x", row.speedup),
                    ]);
                    format!(
                        "        {{\"algo\": \"{}\", \"us_per_op\": {:.2}, \
                         \"speedup_vs_fold\": {:.3}}}",
                        row.algo, row.us, row.speedup
                    )
                })
                .collect();
            table.print();

            shape_json.push(format!(
                "    {{\n      \"shape\": \"{}\",\n      \"k\": {k},\n      \
                 \"sizes\": {sizes:?},\n      \"universe\": {},\n      \
                 \"zipf\": {},\n      \"r\": {r},\n      \
                 \"plan\": \"{:?}\",\n      \"algos\": [\n{}\n      ]\n    }}",
                shape.name,
                shape.universe,
                shape.zipf,
                plan.kind,
                algo_json.join(",\n")
            ));
        }
    }

    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"multiway\",\n  \"reps\": {reps},\n  \"smoke\": {},\n  {env},\n  \
         \"shapes\": [\n{}\n  ]\n}}\n",
        args.smoke,
        shape_json.join(",\n")
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
