//! Observability-overhead benchmark.
//!
//! The tracing contract of `fsi-obs` is "cheap enough to leave on": a
//! traced query allocates a handful of spans and formats a few attribute
//! strings, all dwarfed by the intersection work itself. This binary puts
//! a number on that claim. It builds the boolean-bench Zipf corpus, replays
//! an AND-only query stream through a planned `Server` twice — once via
//! `query_expr` (untraced) and once via `query_expr_traced` — with the
//! result cache disabled so every query exercises parse → rewrite → plan →
//! per-shard exec, and records min-over-reps throughput for both paths.
//!
//! `overhead_pct` is asserted at most 5% in full mode (10% in smoke, where
//! single-rep jitter on shared CI hardware is the dominant term) and the
//! regression gate checks `untraced_qps` and `qps_ratio` one-sidedly, so
//! tracing can never silently grow a throughput cliff.
//!
//! The run also drains the always-on global registry — plan-kind
//! distribution and the planner's misprediction histogram
//! (`|log2(observed/estimated)|` in millilog2) — into the JSON, making the
//! file a provenance record of what the cost model actually chose.
//!
//! Usage: `cargo run --release -p fsi-bench --bin obs -- [out.json] [--smoke]`

use fsi_bench::{HarnessArgs, Table};
use fsi_core::HashContext;
use fsi_index::{Corpus, CorpusConfig, SearchEngine};
use fsi_obs::{Registry, SnapshotValue};
use fsi_serve::{PlannerProfile, Request, ServeConfig, Server};
use fsi_workloads::stream::{generate_boolean_stream, BooleanStreamConfig};

const NUM_SHARDS: usize = 4;

fn main() {
    let args = HarnessArgs::parse("BENCH_obs.json");
    // Like the boolean bench, smoke keeps the full corpus and stream (the
    // run takes seconds) and only cuts repetitions: the overhead ratio is
    // only meaningful when both paths do full-size work.
    let num_docs: u32 = 400_000;
    let num_terms: usize = 1 << 10;
    let num_queries: usize = 2_000;
    let reps = args.pick(5, 2);

    println!(
        "corpus: {num_docs} docs x {num_terms} terms, {NUM_SHARDS} shards; \
         {num_queries} AND-only queries, {reps} rep(s){}",
        if args.smoke { " [smoke]" } else { "" }
    );
    let corpus = Corpus::generate(CorpusConfig {
        num_docs,
        num_terms,
        ..CorpusConfig::default()
    });
    let ctx = HashContext::new(fsi_bench::HARNESS_SEED);
    let engine = SearchEngine::from_corpus(ctx, corpus);
    let server = Server::new(
        &engine,
        ServeConfig {
            num_shards: NUM_SHARDS,
            cache_capacity: 0, // every query must run the full pipeline
            mode: PlannerProfile::auto().mode(),
            ..ServeConfig::default()
        },
    );

    let stream = generate_boolean_stream(&BooleanStreamConfig {
        num_queries,
        num_terms,
        or_probability: 0.0,
        not_probability: 0.0,
        seed: 0xb0b5,
        ..BooleanStreamConfig::default()
    });
    let n = stream.len();

    // Measure the untraced production path and its traced twin in
    // INTERLEAVED pairs: one untraced stream pass, then one traced pass,
    // `reps` times, taking the min of each. Back-to-back blocks would let
    // a box-speed drift between them masquerade as (or mask) tracing
    // overhead — on a shared single-core runner that drift alone exceeds
    // the budget this binary enforces.
    let mut rows = 0usize;
    let mut traced_rows = 0usize;
    let mut spans = 0usize;
    let mut run_untraced = || {
        rows = 0;
        for q in &stream {
            rows += server
                .execute(&Request::expr(q.as_str()))
                .expect("generated queries are valid")
                .docs
                .len();
        }
        rows
    };
    let mut run_traced = || {
        traced_rows = 0;
        spans = 0;
        for q in &stream {
            let resp = server
                .execute(&Request::expr(q.as_str()).traced())
                .expect("generated queries are valid");
            traced_rows += resp.docs.len();
            spans += resp.trace.expect("traced").spans.len();
        }
        (traced_rows, spans)
    };
    let (untraced, traced) = {
        std::hint::black_box(run_untraced());
        std::hint::black_box(run_traced());
        let mut best_u = None;
        let mut best_t = None;
        for _ in 0..reps.max(1) {
            let u = fsi_bench::time_once(&mut run_untraced);
            let t = fsi_bench::time_once(&mut run_traced);
            best_u = Some(best_u.map_or(u, |b: std::time::Duration| b.min(u)));
            best_t = Some(best_t.map_or(t, |b: std::time::Duration| b.min(t)));
        }
        (best_u.expect("reps >= 1"), best_t.expect("reps >= 1"))
    };
    assert_eq!(rows, traced_rows, "tracing must not change results");

    let untraced_qps = n as f64 / untraced.as_secs_f64();
    let traced_qps = n as f64 / traced.as_secs_f64();
    let qps_ratio = traced_qps / untraced_qps;
    let overhead_pct = (untraced_qps / traced_qps - 1.0) * 100.0;
    let spans_per_query = spans as f64 / n as f64;

    let mut table = Table::new(vec!["path", "qps", "us/q"]);
    let us = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e6 / n as f64);
    table.row(vec![
        "untraced".to_string(),
        format!("{untraced_qps:.0}"),
        us(untraced),
    ]);
    table.row(vec![
        "traced".to_string(),
        format!("{traced_qps:.0}"),
        us(traced),
    ]);
    table.print();
    println!(
        "overhead: {overhead_pct:.2}% ({spans_per_query:.1} spans/query, \
         {rows} total result rows)"
    );

    // The contract this benchmark exists to enforce. Smoke runs get slack:
    // at 1-2 reps on a timesliced CI core the min estimator still carries
    // scheduler noise the full run's 5 reps iron out.
    let limit = args.pick(5.0, 10.0);
    assert!(
        overhead_pct <= limit,
        "tracing overhead {overhead_pct:.2}% exceeds the {limit}% budget"
    );

    // Always-on planner telemetry accumulated by both paths above.
    let snap = Registry::global().snapshot();
    let mut plan_kinds: Vec<(String, u64)> = snap
        .entries
        .iter()
        .filter(|e| e.name == "fsi_plan_kind_total")
        .filter_map(|e| match e.value {
            SnapshotValue::Counter(v) => {
                let kind = e
                    .labels
                    .iter()
                    .find(|(k, _)| k == "kind")
                    .map(|(_, v)| v.clone())?;
                Some((kind, v))
            }
            _ => None,
        })
        .collect();
    plan_kinds.sort();
    let mispred = snap.histogram("fsi_plan_misprediction_millilog2", &[]);
    let (mis_count, mis_p50, mis_p99) = match mispred {
        Some(h) => (h.count, h.percentile(0.50), h.percentile(0.99)),
        None => (0, f64::NAN, f64::NAN),
    };
    println!(
        "plan kinds: {}",
        plan_kinds
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "misprediction: {mis_count} samples, p50 {mis_p50:.0} millilog2, \
         p99 {mis_p99:.0} millilog2"
    );

    let json_f64 = |v: f64| {
        if v.is_finite() {
            format!("{v:.1}")
        } else {
            "null".to_string()
        }
    };
    let plan_kind_json = plan_kinds
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(", ");
    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"smoke\": {},\n  {env},\n  \"config\": {{\n    \
         \"num_docs\": {num_docs},\n    \"num_terms\": {num_terms},\n    \
         \"num_queries\": {num_queries},\n    \"num_shards\": {NUM_SHARDS},\n    \
         \"reps\": {reps}\n  }},\n  \"overhead\": {{\n    \
         \"untraced_qps\": {untraced_qps:.1},\n    \"traced_qps\": {traced_qps:.1},\n    \
         \"qps_ratio\": {qps_ratio:.4},\n    \"overhead_pct\": {overhead_pct:.2},\n    \
         \"spans_per_query\": {spans_per_query:.2}\n  }},\n  \
         \"plan_kinds\": {{{plan_kind_json}}},\n  \"misprediction\": {{\n    \
         \"count\": {mis_count},\n    \"p50_millilog2\": {},\n    \
         \"p99_millilog2\": {}\n  }}\n}}\n",
        args.smoke,
        json_f64(mis_p50),
        json_f64(mis_p99),
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
