//! Open-loop SLO benchmark for the TCP serving stack.
//!
//! Closed-loop benchmarks (like the worker-scaling rows `BENCH_serve.json`
//! used to carry) hide overload: the load generator waits for each
//! response, so offered load politely collapses to whatever the server
//! sustains and tail latencies look flat. This harness drives the real
//! loopback socket **open-loop**: request arrival times are drawn up front
//! as a Poisson-like process (exponential inter-arrivals from a seeded
//! RNG, so the schedule is reproducible) and senders hit those instants
//! whether or not earlier responses came back.
//!
//! The run first calibrates capacity closed-loop, then replays the
//! schedule at multiples of capacity — below (0.5x), at (1.0x), and far
//! past (4.0x) saturation — with a fixed per-request deadline. Reported
//! per row:
//!
//! * `goodput_qps` / `goodput_fraction` — responses that were both `Ok`
//!   and inside the deadline, measured from the *scheduled* arrival (queue
//!   wait counts, as it does for a real client);
//! * `shed_rate` — explicit `Shed`/`Overloaded` responses. Past
//!   saturation the server must degrade by shedding loudly, not by
//!   slowing everyone down or dropping silently;
//! * `p50_ms` / `p99_ms` over served responses;
//! * a hard in-process assertion that every request got exactly one
//!   response (`response_accounting == 1.0`), the conservation invariant
//!   the net layer promises.
//!
//! After the open-loop rows, two more sections exercise the lifecycle
//! observability layer:
//!
//! * `lifecycle` — closed-loop capacity with the always-on lifecycle
//!   instrumentation (stage timestamps, per-tenant histograms, tail
//!   sampling) versus a stripped front door (`lifecycle: false`) over the
//!   same serving engine. Calibration reps interleave between the two
//!   servers so machine drift hits both sides evenly; the overhead budget
//!   is hard-asserted in process;
//! * `attribution` — the p99 queue-wait vs service-time split from the
//!   per-tenant lifecycle histograms (where did the tail go: waiting or
//!   executing?), plus a deterministic shed probe — a pipelined burst
//!   with a 1µs deadline — whose retained slow-log records are scraped
//!   back over the in-band `SlowLog` admin op.
//!
//! Usage: `cargo run --release -p fsi-bench --bin slo -- [out.json] [--smoke]`

use fsi_bench::json::Json;
use fsi_bench::{HarnessArgs, Table};
use fsi_core::HashContext;
use fsi_index::{Corpus, CorpusConfig};
use fsi_net::{Client, NetConfig, NetServer, ObsConfig, RequestFrame, Status};
use fsi_serve::{ServeConfig, Server};
use fsi_workloads::stream::{generate_boolean_stream, BooleanStreamConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NUM_SHARDS: usize = 4;
const CONNS: usize = 4;
const DEADLINE_MS: u64 = 20;
const OFFERED_MULTS: [f64; 3] = [0.5, 1.0, 4.0];

struct Row {
    offered_mult: f64,
    offered_qps: f64,
    requests: usize,
    served: usize,
    good: usize,
    shed: usize,
    errors: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_send_lag_ms: f64,
}

impl Row {
    fn goodput_fraction(&self) -> f64 {
        self.good as f64 / self.requests as f64
    }
    fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.requests as f64
    }
}

/// Closed-loop capacity estimate: `CONNS` clients keep a window of
/// requests pipelined (send `CAL_WINDOW`, drain `CAL_WINDOW`, repeat).
/// One-at-a-time `call`s would measure loopback round trips, not the
/// server — the window keeps the workers fed so wall-clock measures the
/// drain rate the open-loop rows are scaled against.
const CAL_WINDOW: usize = 32;

fn calibrate(addr: SocketAddr, stream: &[String], total: usize) -> f64 {
    let per_conn = total.div_ceil(CONNS);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CONNS {
            let stream = &stream;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut sent = 0usize;
                while sent < per_conn {
                    let burst = CAL_WINDOW.min(per_conn - sent);
                    for i in 0..burst {
                        let k = c * per_conn + sent + i;
                        let q = &stream[k % stream.len()];
                        client
                            .send(&RequestFrame::query(k as u64, q.as_str()))
                            .expect("send");
                    }
                    for _ in 0..burst {
                        let resp = client.recv().expect("recv").expect("response");
                        assert_eq!(resp.status, Status::Ok, "calibration: {}", resp.message);
                    }
                    sent += burst;
                }
            });
        }
    });
    (per_conn * CONNS) as f64 / start.elapsed().as_secs_f64()
}

/// Sleep to an absolute instant. Deliberately NO spin-waiting: on a small
/// CI box the sender threads share cores with the server, and a spinning
/// sender starves the very workers it is benchmarking. OS sleep overshoot
/// (tens of microseconds) is measured and reported as send lag instead.
fn wait_until(t: Instant) {
    loop {
        let Some(remaining) = t.checked_duration_since(Instant::now()) else {
            return;
        };
        std::thread::sleep(remaining);
    }
}

/// One open-loop row: replay `requests` arrivals at `offered_qps` against
/// the server and account for every response.
fn run_row(
    addr: SocketAddr,
    stream: &[String],
    offered_mult: f64,
    offered_qps: f64,
    requests: usize,
    seed: u64,
) -> Row {
    // The arrival schedule, drawn up front: exponential gaps at rate
    // `offered_qps`. Seeded, so a given (capacity, mult, count) replays
    // the identical schedule shape.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schedule = Vec::with_capacity(requests);
    let mut t = 0.0f64;
    for _ in 0..requests {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / offered_qps;
        schedule.push(Duration::from_secs_f64(t));
    }
    let schedule = &schedule;
    let deadline = Duration::from_millis(DEADLINE_MS);

    // Requests deal round-robin onto `CONNS` connections; each connection
    // splits into a paced sender thread and a receiver thread that drains
    // exactly its share of responses.
    let origin = Instant::now() + Duration::from_millis(50);
    let per_conn: Vec<Vec<(usize, Duration)>> = (0..CONNS)
        .map(|c| {
            (c..requests)
                .step_by(CONNS)
                .map(|k| (k, schedule[k]))
                .collect()
        })
        .collect();
    // Per connection: the (id, status, receive time) of every response it
    // drained, plus the sender's worst pacing lag in milliseconds.
    type ConnResult = (Vec<(u64, Status, Instant)>, f64);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|mine| {
                scope.spawn(move || {
                    let client = Client::connect(addr).expect("connect");
                    let mut sender = client.try_clone().expect("clone");
                    let expected = mine.len();
                    let mut receiver = client;
                    let reader = std::thread::spawn(move || {
                        let mut seen = Vec::with_capacity(expected);
                        for _ in 0..expected {
                            let resp = receiver.recv().expect("recv").expect("response");
                            seen.push((resp.id, resp.status, Instant::now()));
                        }
                        seen
                    });
                    let mut max_lag = 0.0f64;
                    for &(k, at) in mine {
                        wait_until(origin + at);
                        max_lag = max_lag.max((Instant::now() - (origin + at)).as_secs_f64() * 1e3);
                        let q = &stream[k % stream.len()];
                        sender
                            .send(
                                &RequestFrame::query(k as u64, q.as_str())
                                    .with_deadline_us(deadline.as_micros() as u32),
                            )
                            .expect("send");
                    }
                    (reader.join().expect("reader thread"), max_lag)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn thread"))
            .collect()
    });

    let mut served = 0usize;
    let mut good = 0usize;
    let mut shed = 0usize;
    let mut errors = 0usize;
    let mut latencies_ms = Vec::new();
    let mut responses = 0usize;
    let mut max_send_lag_ms = 0.0f64;
    for (seen, lag) in results {
        max_send_lag_ms = max_send_lag_ms.max(lag);
        for (id, status, at) in seen {
            responses += 1;
            // Latency from the *scheduled* arrival: if the generator fell
            // behind, that lateness is the server's queue in spirit — a
            // real open-loop client would have sent on time.
            let lat = at.saturating_duration_since(origin + schedule[id as usize]);
            match status {
                Status::Ok => {
                    served += 1;
                    latencies_ms.push(lat.as_secs_f64() * 1e3);
                    if lat <= deadline {
                        good += 1;
                    }
                }
                Status::Shed | Status::Overloaded => shed += 1,
                Status::InvalidQuery | Status::BadFrame => errors += 1,
            }
        }
    }
    // The conservation invariant, hard-asserted: every request gets
    // exactly one explicit response, even past saturation.
    assert_eq!(
        responses, requests,
        "response accounting broke at {offered_mult}x offered load"
    );
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies_ms.is_empty() {
            return f64::NAN;
        }
        let rank = ((p * latencies_ms.len() as f64).ceil().max(1.0) as usize) - 1;
        latencies_ms[rank.min(latencies_ms.len() - 1)]
    };
    Row {
        offered_mult,
        offered_qps,
        requests,
        served,
        good,
        shed,
        errors,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        max_send_lag_ms,
    }
}

fn main() {
    let args = HarnessArgs::parse("BENCH_slo.json");
    let num_docs: u32 = args.pick(400_000, 60_000);
    let num_terms: usize = 1 << 10;
    let cal_queries: usize = args.pick(4_000, 400);
    let row_secs: f64 = args.pick(1.0, 0.2);
    let max_requests: usize = args.pick(40_000, 2_000);

    println!(
        "corpus: {num_docs} docs x {num_terms} terms, {NUM_SHARDS} shards; \
         deadline {DEADLINE_MS} ms, {CONNS} conns{}",
        if args.smoke { " [smoke]" } else { "" }
    );
    let corpus = Corpus::generate(CorpusConfig {
        num_docs,
        num_terms,
        ..CorpusConfig::default()
    });
    let serve = Arc::new(Server::from_corpus(
        HashContext::new(fsi_bench::HARNESS_SEED),
        corpus,
        ServeConfig {
            num_shards: NUM_SHARDS,
            cache_capacity: 8192,
            ..ServeConfig::default()
        },
    ));
    // The server under test runs the default (instrumented) lifecycle
    // config plus 1-in-64 head sampling — the production posture.
    let net = NetServer::start(
        Arc::clone(&serve),
        NetConfig {
            obs: ObsConfig {
                head_sample_every: 64,
                ..ObsConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = net.local_addr();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let stream = generate_boolean_stream(&BooleanStreamConfig {
        num_queries: 2_000,
        num_terms,
        seed: fsi_bench::HARNESS_SEED,
        ..BooleanStreamConfig::default()
    });

    // Warm the cache and the allocator, then measure capacity closed-loop.
    let _ = calibrate(addr, &stream, cal_queries / 4);
    let capacity_qps = calibrate(addr, &stream, cal_queries);
    println!("closed-loop capacity: {capacity_qps:.0} q/s over {CONNS} conns ({cores} cores)\n");

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "offered",
        "q/s",
        "requests",
        "goodput q/s",
        "good frac",
        "shed rate",
        "p50 ms",
        "p99 ms",
    ]);
    for (i, &mult) in OFFERED_MULTS.iter().enumerate() {
        let offered_qps = capacity_qps * mult;
        let requests = ((offered_qps * row_secs) as usize).clamp(CONNS, max_requests);
        let row = run_row(
            addr,
            &stream,
            mult,
            offered_qps,
            requests,
            fsi_bench::HARNESS_SEED ^ (i as u64),
        );
        let wall = row.requests as f64 / row.offered_qps;
        let goodput_qps = row.good as f64 / wall;
        table.row(vec![
            format!("{mult:.1}x"),
            format!("{offered_qps:.0}"),
            row.requests.to_string(),
            format!("{goodput_qps:.0}"),
            format!("{:.3}", row.goodput_fraction()),
            format!("{:.3}", row.shed_rate()),
            format!("{:.2}", row.p50_ms),
            format!("{:.2}", row.p99_ms),
        ]);
        if row.max_send_lag_ms > 1.0 {
            println!(
                "note: {mult:.1}x generator fell up to {:.1} ms behind schedule",
                row.max_send_lag_ms
            );
        }
        rows.push(row);
    }
    table.print();

    // ---- lifecycle overhead: instrumented vs stripped capacity --------
    // Same serving engine behind a second, stripped front door
    // (`lifecycle: false`: no stage stamps, no per-tenant series, no
    // retention). Calibration reps interleave between the two servers so
    // drift (thermal, CI neighbors) lands on both sides evenly, and each
    // side keeps its best rep — peaks compare capacity, not noise.
    let stripped = NetServer::start(
        Arc::clone(&serve),
        NetConfig {
            obs: ObsConfig {
                lifecycle: false,
                slowlog_capacity: 0,
                ..ObsConfig::default()
            },
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let _ = calibrate(stripped.local_addr(), &stream, cal_queries / 4);
    let mut instrumented_qps = 0.0f64;
    let mut stripped_qps = 0.0f64;
    for _ in 0..3 {
        instrumented_qps = instrumented_qps.max(calibrate(addr, &stream, cal_queries));
        stripped_qps = stripped_qps.max(calibrate(stripped.local_addr(), &stream, cal_queries));
    }
    stripped.stop();
    let qps_ratio = instrumented_qps / stripped_qps;
    let overhead_pct = (1.0 - qps_ratio) * 100.0;
    let overhead_budget_pct: f64 = args.pick(5.0, 10.0);
    println!(
        "\nlifecycle overhead: instrumented {instrumented_qps:.0} q/s vs stripped \
         {stripped_qps:.0} q/s ({overhead_pct:+.2}%, budget {overhead_budget_pct:.0}%)"
    );
    assert!(
        overhead_pct <= overhead_budget_pct,
        "always-on lifecycle instrumentation costs {overhead_pct:.2}% of closed-loop \
         capacity (budget {overhead_budget_pct:.0}%)"
    );

    // ---- queue-wait attribution + shed-retention probe ----------------
    // A pipelined burst with a 1µs deadline is dead by dequeue time on
    // any box: the sheds are deterministic, and each must leave a
    // retained slow-log record observable over the in-band admin op.
    const SHED_BURST: u64 = 32;
    let mut prober = Client::connect(addr).expect("connect");
    for id in 0..SHED_BURST {
        prober
            .send(&RequestFrame::query((1 << 40) | id, stream[0].as_str()).with_deadline_us(1))
            .expect("send");
    }
    let mut shed_responses = 0u64;
    for _ in 0..SHED_BURST {
        let resp = prober.recv().expect("recv").expect("response");
        if matches!(resp.status, Status::Shed | Status::Overloaded) {
            shed_responses += 1;
        }
    }
    assert!(shed_responses > 0, "the 1µs-deadline burst must shed");
    // Retention lands on the worker just after the response write: poll
    // the wire op until the records show up.
    let mut shed_retained = 0u64;
    for _ in 0..500 {
        let dump = prober.slowlog().expect("slowlog");
        let doc = Json::parse(&dump).expect("slowlog json");
        shed_retained = doc
            .get("entries")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter(|e| {
                e.get("outcome").and_then(Json::as_str) == Some("shed")
                    && e.get("stages")
                        .and_then(Json::as_array)
                        .is_some_and(|s| !s.is_empty())
            })
            .count() as u64;
        if shed_retained >= shed_responses {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        shed_retained > 0,
        "a shed request must leave a slow-log record with stage timestamps"
    );

    // Where did the p99 go — waiting in the queue, or executing? The
    // per-tenant lifecycle histograms answer without any per-request log.
    let snap = net.metrics();
    let p99_ms = |name: &str| {
        snap.histogram(name, &[("tenant", "anon")])
            .map_or(f64::NAN, |h| h.percentile(0.99) / 1e6)
    };
    let wait_p99_ms = p99_ms("fsi_net_queue_wait_ns");
    let service_p99_ms = p99_ms("fsi_net_service_ns");
    let wait_share_p99 = wait_p99_ms / (wait_p99_ms + service_p99_ms);
    println!(
        "p99 attribution: wait {wait_p99_ms:.3} ms vs service {service_p99_ms:.3} ms \
         (wait share {wait_share_p99:.2}); shed probe retained {shed_retained} records \
         ({shed_responses} shed responses)"
    );
    net.stop();

    let json_f64 = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    };
    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let wall = r.requests as f64 / r.offered_qps;
            format!(
                "    {{\"offered_mult\": {:.2}, \"offered_qps\": {:.1}, \"requests\": {}, \
                 \"served\": {}, \"good\": {}, \"shed\": {}, \"errors\": {}, \
                 \"goodput_qps\": {:.1}, \"goodput_fraction\": {:.4}, \"shed_rate\": {:.4}, \
                 \"p50_ms\": {}, \"p99_ms\": {}}}",
                r.offered_mult,
                r.offered_qps,
                r.requests,
                r.served,
                r.good,
                r.shed,
                r.errors,
                r.good as f64 / wall,
                r.goodput_fraction(),
                r.shed_rate(),
                json_f64(r.p50_ms),
                json_f64(r.p99_ms),
            )
        })
        .collect();
    let env = fsi_bench::env_json();
    let json = format!(
        "{{\n  \"bench\": \"slo\",\n  \"smoke\": {},\n  {env},\n  \"config\": {{\n    \
         \"num_docs\": {num_docs},\n    \"num_terms\": {num_terms},\n    \
         \"num_shards\": {NUM_SHARDS},\n    \"conns\": {CONNS},\n    \
         \"deadline_ms\": {DEADLINE_MS},\n    \"available_cores\": {cores},\n    \
         \"calibration_queries\": {cal_queries}\n  }},\n  \
         \"capacity_qps\": {capacity_qps:.1},\n  \"response_accounting\": 1.0,\n  \
         \"lifecycle\": {{\n    \"instrumented_qps\": {instrumented_qps:.1},\n    \
         \"stripped_qps\": {stripped_qps:.1},\n    \"qps_ratio\": {qps_ratio:.4},\n    \
         \"overhead_pct\": {overhead_pct:.2},\n    \
         \"overhead_budget_pct\": {overhead_budget_pct:.1}\n  }},\n  \
         \"attribution\": {{\n    \"wait_p99_ms\": {},\n    \"service_p99_ms\": {},\n    \
         \"wait_share_p99\": {},\n    \"shed_responses\": {shed_responses},\n    \
         \"shed_retained\": {shed_retained}\n  }},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        args.smoke,
        json_f64(wait_p99_ms),
        json_f64(service_p99_ms),
        json_f64(wait_share_p99),
        rows_json.join(",\n"),
    );
    args.write_output(&json);
    println!("\nwrote {}", args.out_path);
}
