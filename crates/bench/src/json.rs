//! A minimal JSON reader for the `BENCH_*.json` files the harness emits.
//!
//! The reference environment has no registry access, so no serde: this is
//! a small recursive-descent parser covering the full JSON grammar (the
//! benchmark files only ever use a subset of it), used by the
//! `check_regression` binary to compare a fresh smoke run against the
//! committed baselines.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (the harness emits it for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always read as `f64`; the benchmark files stay well
    /// inside the 2⁵³ exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the files never repeat keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs never appear in harness
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {token:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_harness_shapes() {
        let src = r#"{
  "bench": "kernels",
  "reps": 15,
  "smoke": false,
  "shapes": [
    {"shape": "balanced-sparse", "n1": 100000, "zipf": false, "p99": null,
     "kernels": [{"kernel": "Merge", "speedup_vs_merge": 1.0}]}
  ]
}"#;
        let v = Json::parse(src).expect("parse");
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("kernels"));
        assert_eq!(v.get("reps").and_then(Json::as_f64), Some(15.0));
        assert_eq!(v.get("smoke").and_then(Json::as_bool), Some(false));
        let shapes = v.get("shapes").and_then(Json::as_array).expect("shapes");
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].get("p99"), Some(&Json::Null));
        let kernels = shapes[0]
            .get("kernels")
            .and_then(Json::as_array)
            .expect("kernels");
        assert_eq!(
            kernels[0].get("speedup_vs_merge").and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#"{"s": "a\"b\\c\nd", "n": -1.5e3, "u": "A"}"#).expect("parse");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(v.get("u").and_then(Json::as_str), Some("A"));
    }

    #[test]
    fn parses_the_committed_bench_files() {
        for path in [
            "BENCH_kernels.json",
            "BENCH_serve.json",
            "BENCH_multiway.json",
        ] {
            let full = format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"));
            if let Ok(src) = std::fs::read_to_string(&full) {
                Json::parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#"{"label": "Planned(ratio≥64)"}"#).expect("parse");
        assert_eq!(
            v.get("label").and_then(Json::as_str),
            Some("Planned(ratio≥64)")
        );
    }
}
