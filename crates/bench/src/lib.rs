//! # fsi-bench — shared measurement utilities for the paper harness
//!
//! The `paper` binary (`cargo run --release -p fsi-bench --bin paper`)
//! regenerates every figure and table of the paper's evaluation; the
//! criterion benches exercise the same code on reduced sizes. This library
//! holds what they share: timing helpers, plain-text table rendering,
//! seeded dataset construction, harness CLI conventions ([`HarnessArgs`]),
//! and a registry-free JSON reader ([`json`]) for the regression gate.

#![forbid(unsafe_code)]

pub mod json;

use fsi_core::elem::SortedSet;
use fsi_core::hash::HashContext;
use fsi_index::strategy::{intersect_into, PreparedList, Strategy};
use std::time::{Duration, Instant};

/// Runs `f` once and returns its wall-clock duration, guarding the result
/// from being optimized away.
pub fn time_once<T>(mut f: impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    std::hint::black_box(out);
    elapsed
}

/// Median wall-clock duration over `reps` runs (one warm-up run first).
pub fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..reps.max(1)).map(|_| time_once(&mut f)).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Minimum wall-clock duration over `reps` runs (one warm-up run first) —
/// the steady-state estimator for µs-scale operations, immune to the
/// scheduling and cold-cache outliers a median of few reps can land on.
pub fn min_time<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    (0..reps.max(1))
        .map(|_| time_once(&mut f))
        .min()
        .expect("reps >= 1")
}

/// Milliseconds as a float.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A plain-text (markdown-flavoured) table printer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a millisecond value for table cells.
pub fn fmt_ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prepares one strategy over several sets and times `reps` intersections;
/// returns (median duration, result size, prepared bytes).
pub fn run_strategy(
    strategy: Strategy,
    ctx: &HashContext,
    sets: &[&SortedSet],
    reps: usize,
) -> (Duration, usize, usize) {
    let prepared: Vec<PreparedList> = sets.iter().map(|s| strategy.prepare(ctx, s)).collect();
    let bytes: usize = prepared.iter().map(|p| p.size_in_bytes()).sum();
    let refs: Vec<&PreparedList> = prepared.iter().collect();
    let mut out = Vec::new();
    let d = median_time(reps, || {
        out.clear();
        intersect_into(&refs, &mut out);
        out.len()
    });
    (d, out.len(), bytes)
}

/// Standard harness seed so every experiment is reproducible.
pub const HARNESS_SEED: u64 = 0x2011_0404;

/// The `"env": {...}` JSON entry every benchmark binary stamps into its
/// output: the SIMD tier this process actually dispatches to and the
/// planner unit constants in force ([`fsi_index::Planner::auto`] /
/// [`fsi_query::ExprPlanner::auto`]). Two baseline files that disagree
/// here were measured on different effective machines — the regression
/// gate's tolerance exists for jitter, not for silently comparing an AVX2
/// box against a scalar one, so the provenance rides in the file itself.
///
/// Returned as a ready-to-splice `"env": {...}` fragment (no trailing
/// comma) matching the two-space top-level indent the binaries use.
pub fn env_json() -> String {
    let p = fsi_index::Planner::auto();
    let xp = fsi_query::ExprPlanner::auto();
    format!(
        "\"env\": {{\n    \"simd_level\": \"{}\",\n    \"planner_units\": {{\n      \
         \"gallop_unit\": {}, \"hash_unit\": {}, \"bitmap_word_unit\": {}, \
         \"rgs_unit\": {}, \"heap_unit\": {},\n      \
         \"decode_unit\": {}, \"bytes_unit\": {},\n      \
         \"union_unit\": {}, \"union_bitmap_word_unit\": {}, \"diff_unit\": {}\n    }}\n  }}",
        fsi_kernels::SimdLevel::active().name(),
        p.gallop_unit,
        p.hash_unit,
        p.bitmap_word_unit,
        p.rgs_unit,
        p.heap_unit,
        p.decode_unit,
        p.bytes_unit,
        xp.union_unit,
        xp.union_bitmap_word_unit,
        xp.diff_unit,
    )
}

/// Harness CLI conventions shared by the benchmark binaries: an optional
/// positional output path plus a `--smoke` flag (or `FSI_BENCH_SMOKE=1`)
/// that shrinks reps and problem sizes for the CI regression gate. Smoke
/// runs stamp `"smoke": true` into their JSON so a reduced-effort file can
/// never be mistaken for (or committed as) a reference baseline.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Where the JSON lands.
    pub out_path: String,
    /// Reduced-effort mode for the CI bench gate.
    pub smoke: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args`: the first non-flag argument is the output
    /// path (defaulting to `default_out`), `--smoke` anywhere (or the
    /// `FSI_BENCH_SMOKE=1` environment variable) selects smoke mode.
    pub fn parse(default_out: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let smoke = args.iter().any(|a| a == "--smoke")
            || std::env::var("FSI_BENCH_SMOKE").is_ok_and(|v| v == "1");
        let out_path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| default_out.to_string());
        Self { out_path, smoke }
    }

    /// `full` normally, `smoke` in smoke mode — for scaling rep counts and
    /// problem sizes in one place.
    pub fn pick<T>(&self, full: T, smoke: T) -> T {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// Writes the benchmark JSON to [`HarnessArgs::out_path`], creating
    /// parent directories first (CI writes into `target/smoke/`, which no
    /// prior step creates).
    pub fn write_output(&self, json: &str) {
        let path = std::path::Path::new(&self.out_path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create output directory");
            }
        }
        std::fs::write(path, json).expect("write benchmark output");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_smoke() {
        let d = median_time(3, || (0..1000u64).sum::<u64>());
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let r = t.render();
        assert!(r.contains("| 333 |"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn run_strategy_smoke() {
        let ctx = HashContext::new(1);
        let a: SortedSet = (0..1000u32).collect();
        let b: SortedSet = (500..1500u32).collect();
        let (d, r, bytes) = run_strategy(Strategy::Merge, &ctx, &[&a, &b], 2);
        assert_eq!(r, 500);
        assert!(bytes > 0);
        let _ = d;
    }

    #[test]
    fn env_json_parses_and_names_the_active_tier() {
        let doc = json::Json::parse(&format!("{{\n  {}\n}}", env_json())).expect("valid JSON");
        let env = doc.get("env").expect("env object");
        assert_eq!(
            env.get("simd_level").and_then(json::Json::as_str),
            Some(fsi_kernels::SimdLevel::active().name())
        );
        let units = env.get("planner_units").expect("planner_units");
        for key in [
            "gallop_unit",
            "hash_unit",
            "bitmap_word_unit",
            "rgs_unit",
            "heap_unit",
            "decode_unit",
            "bytes_unit",
            "union_unit",
            "union_bitmap_word_unit",
            "diff_unit",
        ] {
            assert!(
                units.get(key).and_then(json::Json::as_f64).is_some(),
                "missing unit {key}"
            );
        }
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(250.0), "250");
        assert_eq!(fmt_ms(2.5), "2.50");
        assert_eq!(fmt_ms(0.5), "0.5000");
    }
}
