//! The `SlowLog` ring buffer's concurrency and bounding contract, pinned
//! three ways:
//!
//! * **Exhaustive interleavings** (the `crates/obs/tests/interleavings.rs`
//!   DFS harness): every ordering of pushes from multiple writers plus a
//!   reader leaves the ring holding exactly the last `capacity` pushes of
//!   that ordering, oldest first, and every snapshot the reader takes is
//!   a clean prefix-consistent view — never a torn entry.
//! * **Property tests**: arbitrary (capacity, push-count) programs match
//!   a plain `VecDeque` model on contents, order, length, and the
//!   monotone `retained_total` accounting.
//! * **Real-thread stress**: concurrent writers and a racing reader on
//!   actual threads (shrunk under Miri), asserting the capacity bound and
//!   entry integrity under genuine parallelism.

use fsi_obs::{SlowLog, SlowLogEntry, Stage};
use std::collections::VecDeque;
use std::sync::Arc;

/// Calls `f` with every interleaving of `counts[t]` ops from each
/// thread `t`, as a sequence of thread ids (same visitor-driven DFS as
/// `interleavings.rs`).
fn for_each_schedule(counts: &[usize], f: &mut dyn FnMut(&[usize])) {
    fn go(rem: &mut [usize], sched: &mut Vec<usize>, f: &mut dyn FnMut(&[usize])) {
        let mut done = true;
        for t in 0..rem.len() {
            if rem[t] > 0 {
                done = false;
                rem[t] -= 1;
                sched.push(t);
                go(rem, sched, f);
                sched.pop();
                rem[t] += 1;
            }
        }
        if done {
            f(sched);
        }
    }
    go(&mut counts.to_vec(), &mut Vec::new(), f);
}

/// An entry whose fields are all derived from `id`, so a torn entry
/// (fields from two different writers) is detectable.
fn entry(id: u64) -> SlowLogEntry {
    SlowLogEntry {
        id,
        tenant: Some((id % 5) as u32),
        query: format!("{id} AND {}", id + 1),
        outcome: "shed",
        reason: "queue_full",
        queue_depth: id as usize,
        total_ns: id * 1_000,
        stages: vec![Stage {
            name: "queue",
            start_ns: id,
            dur_ns: id * 2,
        }],
        plan_summary: String::new(),
        trace: None,
    }
}

fn assert_untorn(e: &SlowLogEntry) {
    assert_eq!(e.query, format!("{} AND {}", e.id, e.id + 1));
    assert_eq!(e.tenant, Some((e.id % 5) as u32));
    assert_eq!(e.total_ns, e.id * 1_000);
    assert_eq!(e.queue_depth, e.id as usize);
    assert_eq!(e.stages[0].dur_ns, e.id * 2);
}

/// Every interleaving of two writers (2 pushes each) and one reader
/// (2 snapshots): the final ring is exactly the last `capacity` pushes
/// in schedule order, and every mid-schedule snapshot equals the ring
/// state at that point — the lock makes each push atomic at API
/// granularity, so no snapshot can ever observe a half-written entry.
#[test]
fn interleaved_pushes_keep_exactly_the_newest_in_order() {
    // Writer 0 pushes ids 10, 11; writer 1 pushes 20, 21; thread 2 reads.
    const CAPACITY: usize = 3;
    let ids = [[10u64, 11], [20, 21]];
    let mut schedules = 0u64;
    for_each_schedule(&[2, 2, 2], &mut |sched| {
        schedules += 1;
        let log = SlowLog::new(CAPACITY);
        // The model: every push in schedule order, bounded by capacity.
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut pc = [0usize; 3];
        for &t in sched {
            let i = pc[t];
            pc[t] += 1;
            if t < 2 {
                let id = ids[t][i];
                assert!(log.push(entry(id)));
                if model.len() == CAPACITY {
                    model.pop_front();
                }
                model.push_back(id);
            } else {
                // A reader step: the snapshot must equal the model state
                // exactly — same ids, same (oldest-first) order, every
                // entry internally consistent.
                let seen = log.entries();
                let got: Vec<u64> = seen.iter().map(|e| e.id).collect();
                let want: Vec<u64> = model.iter().copied().collect();
                assert_eq!(got, want, "schedule {sched:?}");
                for e in &seen {
                    assert_untorn(e);
                }
            }
        }
        let final_ids: Vec<u64> = log.entries().iter().map(|e| e.id).collect();
        let want: Vec<u64> = model.iter().copied().collect();
        assert_eq!(final_ids, want, "schedule {sched:?}");
        assert_eq!(log.len(), model.len());
        assert_eq!(log.retained_total(), 4, "every push counted");
    });
    assert_eq!(schedules, 90);
}

/// The capacity bound holds under every interleaving even when the ring
/// is much smaller than the push volume, and eviction is strictly
/// oldest-first: the survivors are always a suffix of the schedule.
#[test]
fn eviction_is_oldest_first_under_every_interleaving() {
    const CAPACITY: usize = 2;
    let ids = [[1u64, 2, 3], [4, 5, 6]];
    for_each_schedule(&[3, 3], &mut |sched| {
        let log = SlowLog::new(CAPACITY);
        let mut pushed: Vec<u64> = Vec::new();
        let mut pc = [0usize; 2];
        for &t in sched {
            let id = ids[t][pc[t]];
            pc[t] += 1;
            log.push(entry(id));
            pushed.push(id);
        }
        let got: Vec<u64> = log.entries().iter().map(|e| e.id).collect();
        let start = pushed.len() - CAPACITY;
        assert_eq!(got, &pushed[start..], "schedule {sched:?}");
    });
}

/// Real threads: writers race pushes while a reader races snapshots.
/// Entries are Arc-shared whole, so the reader can never observe fields
/// from two different pushes, and the bound holds at every observation.
#[test]
fn concurrent_writers_never_tear_and_never_exceed_capacity() {
    const CAPACITY: usize = 8;
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = if cfg!(miri) { 20 } else { 2_000 };
    let log = Arc::new(SlowLog::new(CAPACITY));
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    log.push(entry(w * PER_WRITER + i));
                }
            });
        }
        let log = Arc::clone(&log);
        s.spawn(move || {
            for _ in 0..if cfg!(miri) { 10 } else { 500 } {
                let seen = log.entries();
                assert!(seen.len() <= CAPACITY);
                for e in &seen {
                    assert_untorn(e);
                }
            }
        });
    });
    assert_eq!(log.len(), CAPACITY);
    assert_eq!(log.retained_total(), WRITERS * PER_WRITER);
    for e in log.entries() {
        assert_untorn(&e);
    }
}

// ---------------------------------------------------------------------------
// Property tests: arbitrary programs vs a VecDeque model.
// ---------------------------------------------------------------------------

// Proptest's runner machinery is interpreted far too slowly under Miri;
// the interleaving tests above cover the same invariants exhaustively
// at small sizes there.
#[cfg(not(miri))]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn ring_matches_a_vecdeque_model(
            capacity in 0usize..12,
            ids in proptest::collection::vec(0u64..1_000, 0..40),
        ) {
            let log = SlowLog::new(capacity);
            let mut model: VecDeque<u64> = VecDeque::new();
            for &id in &ids {
                let kept = log.push(entry(id));
                prop_assert_eq!(kept, capacity > 0);
                if capacity > 0 {
                    if model.len() == capacity {
                        model.pop_front();
                    }
                    model.push_back(id);
                }
                prop_assert!(log.len() <= capacity);
            }
            let got: Vec<u64> = log.entries().iter().map(|e| e.id).collect();
            let want: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
            let expected_total = if capacity > 0 { ids.len() as u64 } else { 0 };
            prop_assert_eq!(log.retained_total(), expected_total);
            prop_assert_eq!(log.is_empty(), model.is_empty());
        }

        #[test]
        fn json_dump_always_renders_every_retained_entry(
            capacity in 1usize..8,
            ids in proptest::collection::vec(0u64..100, 1..20),
        ) {
            let log = SlowLog::new(capacity);
            for &id in &ids {
                log.push(entry(id));
            }
            let json = log.to_json();
            prop_assert!(json.contains(&format!("\"capacity\": {capacity}")));
            prop_assert!(json.contains(&format!("\"retained_total\": {}", ids.len())));
            for e in log.entries() {
                prop_assert!(json.contains(&format!("\"id\": {},", e.id)));
            }
        }
    }
}
