//! Loom-style exhaustive interleaving harness for the fsi-obs
//! concurrency surface (striped counters, histogram recording, and
//! snapshot merging).
//!
//! Instead of stress-looping real threads and hoping the scheduler is
//! unkind, this harness **enumerates every interleaving** of small
//! per-thread operation sequences with a DFS over schedule prefixes
//! (the multinomial `(Σnᵢ)! / Πnᵢ!` of them) and replays each schedule
//! deterministically, asserting invariants after every run. Two
//! granularities are covered:
//!
//! * **API granularity** — each schedule step is one public call
//!   (`Counter::add`, `Histogram::record`, snapshot + merge) against
//!   the real types. Valid because every public operation is a single
//!   logical transition whose internals are lock-free atomics; this
//!   proves merge arithmetic and no-lost-update semantics for every
//!   possible ordering of calls.
//! * **Atomic-step granularity** — a model that mirrors the *exact*
//!   per-atomic order of `Histogram::record` (bucket → count → sum →
//!   max → min) interleaved with `Histogram::snapshot`'s read order
//!   (buckets → count → sum → max → min), proving the documented
//!   bounded-skew contract: a snapshot racing in-flight records may
//!   tear *between* fields, but each field is never ahead of the truth
//!   and the bucket/count skew is bounded by the number of in-flight
//!   recorders. A quiescent snapshot is exact.
//!
//! Scope note: this explores **interleavings of sequentially consistent
//! steps**, not weak-memory reorderings. All fsi-obs atomics are
//! `Relaxed` on independent cells (or single-cell RMWs, which are
//! atomic under any memory order), so interleaving coverage is the
//! meaningful axis; cross-cell reordering is additionally exercised by
//! the Miri and ThreadSanitizer CI legs.

use fsi_obs::{HistSnapshot, Histogram, Registry, Snapshot};

/// Calls `f` with every interleaving of `counts[t]` ops from each
/// thread `t`, as a sequence of thread ids. Visitor-driven so large
/// enumerations never materialize.
fn for_each_schedule(counts: &[usize], f: &mut dyn FnMut(&[usize])) {
    fn go(rem: &mut [usize], sched: &mut Vec<usize>, f: &mut dyn FnMut(&[usize])) {
        let mut done = true;
        for t in 0..rem.len() {
            if rem[t] > 0 {
                done = false;
                rem[t] -= 1;
                sched.push(t);
                go(rem, sched, f);
                sched.pop();
                rem[t] += 1;
            }
        }
        if done {
            f(sched);
        }
    }
    go(&mut counts.to_vec(), &mut Vec::new(), f);
}

fn num_schedules(counts: &[usize]) -> u64 {
    let mut n = 0;
    for_each_schedule(counts, &mut |_| n += 1);
    n
}

#[test]
fn enumerator_visits_the_full_multinomial() {
    assert_eq!(num_schedules(&[1]), 1);
    assert_eq!(num_schedules(&[2, 2]), 6);
    assert_eq!(num_schedules(&[2, 2, 2]), 90);
    assert_eq!(num_schedules(&[5, 5]), 252);
}

// ---------------------------------------------------------------------------
// API granularity: real types, every ordering of public calls.
// ---------------------------------------------------------------------------

/// The QueryPool pattern: workers record into private histograms, a
/// coordinator snapshots each worker once and merges. Under **every**
/// interleaving the merged aggregate must equal exactly the records
/// that preceded each worker's snapshot — nothing lost, nothing
/// double-counted, min/max consistent with the merged prefix.
#[test]
fn histogram_snapshot_merge_sees_exactly_the_preceding_records() {
    let w0_vals = [3u64, 5];
    let w1_vals = [70_000u64, 9];
    let prefix_sum = |vals: &[u64], n: usize| vals[..n].iter().sum::<u64>();

    let mut schedules = 0u64;
    // Thread 0: two records into H0. Thread 1: two into H1.
    // Thread 2: snapshot-merge H0, then snapshot-merge H1.
    for_each_schedule(&[2, 2, 2], &mut |sched| {
        schedules += 1;
        let (h0, h1, owner) = (Histogram::new(), Histogram::new(), Histogram::new());
        let mut pc = [0usize; 3];
        // Records that had landed when the coordinator snapshotted.
        let (mut at_snap0, mut at_snap1) = (usize::MAX, usize::MAX);
        for &t in sched {
            let i = pc[t];
            pc[t] += 1;
            match t {
                0 => h0.record(w0_vals[i]),
                1 => h1.record(w1_vals[i]),
                _ if i == 0 => {
                    at_snap0 = pc[0];
                    owner.merge_snapshot(&h0.snapshot());
                }
                _ => {
                    at_snap1 = pc[1];
                    owner.merge_snapshot(&h1.snapshot());
                }
            }
        }
        let want_count = (at_snap0 + at_snap1) as u64;
        let want_sum = prefix_sum(&w0_vals, at_snap0) + prefix_sum(&w1_vals, at_snap1);
        assert_eq!(owner.count(), want_count, "schedule {sched:?}");
        assert_eq!(owner.sum(), want_sum, "schedule {sched:?}");
        let merged: Vec<u64> = w0_vals[..at_snap0]
            .iter()
            .chain(&w1_vals[..at_snap1])
            .copied()
            .collect();
        assert_eq!(owner.max(), merged.iter().copied().max().unwrap_or(0));
        assert_eq!(owner.min(), merged.iter().copied().min());
        let snap = owner.snapshot();
        assert_eq!(
            snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            want_count,
            "bucket totals must match the aggregate count"
        );
    });
    assert_eq!(schedules, 90);
}

/// Registry-level twin of the test above: per-worker registries with a
/// counter and a histogram, a coordinator merging each worker's
/// `Snapshot` into an accumulator. Every ordering of increments vs.
/// snapshot-merges must yield exactly the pre-snapshot totals.
#[test]
fn registry_snapshot_merge_vs_concurrent_increments() {
    for_each_schedule(&[2, 2, 2], &mut |sched| {
        let (w0, w1) = (Registry::new(), Registry::new());
        let (c0, c1) = (w0.counter("ops", &[]), w1.counter("ops", &[]));
        let (h0, h1) = (w0.histogram("lat_ns", &[]), w1.histogram("lat_ns", &[]));
        let mut acc = Snapshot::default();
        let mut pc = [0usize; 3];
        let (mut at_snap0, mut at_snap1) = (usize::MAX, usize::MAX);
        for &t in sched {
            let i = pc[t];
            pc[t] += 1;
            match t {
                0 => {
                    c0.add(10);
                    h0.record(7);
                }
                1 => {
                    c1.add(1);
                    h1.record(900);
                }
                _ if i == 0 => {
                    at_snap0 = pc[0];
                    acc.merge_from(&w0.snapshot());
                }
                _ => {
                    at_snap1 = pc[1];
                    acc.merge_from(&w1.snapshot());
                }
            }
        }
        let want = 10 * at_snap0 as u64 + at_snap1 as u64;
        assert_eq!(acc.counter("ops", &[]), Some(want), "schedule {sched:?}");
        let hist = acc.histogram("lat_ns", &[]).expect("merged histogram");
        assert_eq!(hist.count, (at_snap0 + at_snap1) as u64);
        assert_eq!(hist.sum, 7 * at_snap0 as u64 + 900 * at_snap1 as u64);
    });
}

/// Merging per-worker snapshots must be insensitive to merge order and
/// grouping (the shard fan-in can combine partials in any tree shape),
/// and must equal the snapshot of one histogram that saw everything.
#[test]
fn snapshot_merge_is_order_and_grouping_invariant() {
    let groups: [&[u64]; 3] = [&[1, 2], &[1_000], &[123_456, 2, 40]];
    let snaps: Vec<HistSnapshot> = groups
        .iter()
        .map(|vals| {
            let h = Histogram::new();
            for &v in *vals {
                h.record(v);
            }
            h.snapshot()
        })
        .collect();

    let merge_in = |order: &[usize]| {
        let mut acc = HistSnapshot::default();
        for &i in order {
            acc.merge_from(&snaps[i]);
        }
        acc
    };
    let reference = merge_in(&[0, 1, 2]);
    for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        assert_eq!(merge_in(&order), reference, "order {order:?}");
    }
    // Tree grouping: (0+1) + (2) built as two partials, then combined.
    let mut left = HistSnapshot::default();
    left.merge_from(&snaps[0]);
    left.merge_from(&snaps[1]);
    let mut tree = snaps[2].clone();
    tree.merge_from(&left);
    assert_eq!(tree, reference);

    // And the flat recording of the union agrees on every aggregate.
    let all = Histogram::new();
    for vals in &groups {
        for &v in *vals {
            all.record(v);
        }
    }
    assert_eq!(all.snapshot(), reference);
}

// ---------------------------------------------------------------------------
// Atomic-step granularity: the exact field order of record() vs snapshot().
// ---------------------------------------------------------------------------

/// One atomic in `Histogram::record`, in source order.
#[derive(Clone, Copy)]
enum RecStep {
    Bucket(usize),
    Count,
    Sum(u64),
    Max(u64),
    Min(u64),
}

/// Plain-field mirror of a histogram; each step application is one
/// "atomic" transition in the interleaving model.
#[derive(Default)]
struct ModelHist {
    buckets: [u64; 2],
    count: u64,
    sum: u64,
    max: u64,
    min: Option<u64>,
}

impl ModelHist {
    fn apply(&mut self, s: RecStep) {
        match s {
            RecStep::Bucket(b) => self.buckets[b] += 1,
            RecStep::Count => self.count += 1,
            RecStep::Sum(v) => self.sum += v,
            RecStep::Max(v) => self.max = self.max.max(v),
            RecStep::Min(v) => self.min = Some(self.min.map_or(v, |m| m.min(v))),
        }
    }
}

/// Snapshot read steps, in `Histogram::snapshot` source order.
#[derive(Default)]
struct ModelSnap {
    bucket_total: u64,
    count: u64,
    sum: u64,
    max: u64,
    min: Option<u64>,
}

/// Exhaustively interleaves recorder threads (5 atomic steps each, the
/// exact order of `Histogram::record`) with one snapshotter (5 read
/// steps, the exact order of `Histogram::snapshot`) and checks, for
/// every reachable snapshot:
///
/// * no field ever runs ahead of the true totals;
/// * `sum` is always the sum of a genuine subset of recorded values;
/// * the bucket-total/count skew is bounded by the number of records
///   in flight across the snapshot window;
/// * a snapshot that overlaps no record is field-for-field exact;
/// * the **final** state is exact in every schedule — interleaving
///   can tear a racing snapshot but can never lose an update.
#[test]
fn model_record_vs_snapshot_interleavings_respect_skew_bounds() {
    // Miri runs this same enumeration; keep it to one recorder there
    // (252 schedules) and two natively (756,756 schedules).
    let vals: &[u64] = if cfg!(miri) { &[1] } else { &[1, 8] };
    let programs: Vec<Vec<RecStep>> = vals
        .iter()
        .enumerate()
        .map(|(b, &v)| {
            vec![
                RecStep::Bucket(b),
                RecStep::Count,
                RecStep::Sum(v),
                RecStep::Max(v),
                RecStep::Min(v),
            ]
        })
        .collect();
    let subset_sums: Vec<u64> = (0..1u64 << vals.len())
        .map(|mask| {
            vals.iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .sum()
        })
        .collect();
    let true_sum: u64 = vals.iter().sum();
    let snap_tid = programs.len();

    let mut counts: Vec<usize> = programs.iter().map(Vec::len).collect();
    counts.push(5); // the snapshotter
    for_each_schedule(&counts, &mut |sched| {
        let mut h = ModelHist::default();
        let mut snap = ModelSnap::default();
        let mut pc = vec![0usize; counts.len()];
        // Schedule positions of each thread's first/last step, to
        // decide which records overlap the snapshot window.
        let mut first = vec![usize::MAX; counts.len()];
        let mut last = vec![0usize; counts.len()];
        for (pos, &t) in sched.iter().enumerate() {
            first[t] = first[t].min(pos);
            last[t] = last[t].max(pos);
            let i = pc[t];
            pc[t] += 1;
            if t == snap_tid {
                match i {
                    0 => snap.bucket_total = h.buckets.iter().sum(),
                    1 => snap.count = h.count,
                    2 => snap.sum = h.sum,
                    3 => snap.max = h.max,
                    _ => snap.min = h.min,
                }
            } else {
                h.apply(programs[t][i]);
            }
        }

        // Field-wise "never ahead of the truth".
        assert!(snap.count <= vals.len() as u64, "schedule {sched:?}");
        assert!(snap.bucket_total <= vals.len() as u64);
        assert!(snap.sum <= true_sum);
        assert!(snap.max <= vals.iter().copied().max().unwrap());
        assert!(subset_sums.contains(&snap.sum), "sum tore within a record");
        if let Some(m) = snap.min {
            assert!(vals.contains(&m), "min must be a recorded value");
        }

        // Bucket/count skew is bounded by in-flight records: a record
        // entirely before (or after) the snapshot window contributes
        // equally (or not at all) to both fields.
        let in_flight = (0..programs.len())
            .filter(|&t| first[t] < last[snap_tid] && last[t] > first[snap_tid])
            .count() as u64;
        assert!(
            snap.bucket_total.abs_diff(snap.count) <= in_flight,
            "skew {} vs {} exceeds {in_flight} in-flight records: {sched:?}",
            snap.bucket_total,
            snap.count,
        );

        // A quiescent snapshot is exact: every record fully before the
        // window is reflected in every field, and nothing else is.
        if in_flight == 0 {
            let before: Vec<u64> = (0..programs.len())
                .filter(|&t| last[t] < first[snap_tid])
                .map(|t| vals[t])
                .collect();
            assert_eq!(snap.count, before.len() as u64);
            assert_eq!(snap.bucket_total, before.len() as u64);
            assert_eq!(snap.sum, before.iter().sum::<u64>());
            assert_eq!(snap.max, before.iter().copied().max().unwrap_or(0));
            assert_eq!(snap.min, before.iter().copied().min());
        }

        // No schedule loses an update: the final state is always exact.
        assert_eq!(h.count, vals.len() as u64);
        assert_eq!(h.buckets.iter().sum::<u64>(), vals.len() as u64);
        assert_eq!(h.sum, true_sum);
        assert_eq!(h.max, vals.iter().copied().max().unwrap());
        assert_eq!(h.min, vals.iter().copied().min());
    });
}
