//! The tail-sampled slow-query log: a fixed-capacity concurrent ring
//! buffer of retained request records, plus the [`TailSampler`] that
//! decides retention.
//!
//! The retention contract is **tail-based**: the always-on request path
//! collects stage timestamps only (cheap enough to leave on), and a full
//! record is kept solely for requests that matter after the fact — those
//! that breached a latency threshold, ended in any non-success outcome
//! (shed, rejected, invalid), or were head-sampled 1-in-N at admission
//! (head-sampled requests can additionally carry a full [`QueryTrace`],
//! since the sampling decision predates execution).
//!
//! The ring is bounded and evicts oldest-first, so a flood of slow or
//! shed requests can never grow memory without bound: the log always
//! holds the `capacity` most recent retained records. Entries are pushed
//! whole under one mutex and shared out as `Arc`s, so readers never see
//! a torn record and a dump never blocks writers for long
//! (`crates/obs/tests/slowlog.rs` pins the capacity bound, the
//! no-tearing guarantee, and oldest-first eviction over exhaustive
//! interleavings).

use crate::trace::QueryTrace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One timed lifecycle stage of a retained request (`decode`,
/// `admission`, `queue`, `execute`, `write`), as offsets from the moment
/// the request's frame was read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Stage name; a `&'static str` so the always-on path never
    /// allocates for a name.
    pub name: &'static str,
    /// Start offset from the request origin, nanoseconds.
    pub start_ns: u64,
    /// Stage duration, nanoseconds.
    pub dur_ns: u64,
}

/// One retained request record.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowLogEntry {
    /// The wire request id (the caller's correlation handle).
    pub id: u64,
    /// The tenant the request billed to, if any.
    pub tenant: Option<u32>,
    /// The query string as submitted.
    pub query: String,
    /// Final outcome: `ok`, `shed`, `overloaded`, or `invalid_query`.
    pub outcome: &'static str,
    /// Attribution refining the outcome: the shed reason
    /// (`deadline_expired`, `queue_full`, `admission_denied`) or the
    /// cache outcome for served requests; empty when none applies.
    pub reason: &'static str,
    /// Request-queue depth observed at admission — the backlog this
    /// request queued behind.
    pub queue_depth: usize,
    /// End-to-end wall clock from frame read to response written,
    /// nanoseconds.
    pub total_ns: u64,
    /// The lifecycle stage timeline (always-on timestamps).
    pub stages: Vec<Stage>,
    /// The executed plan kind, when execution reported one.
    pub plan_summary: String,
    /// The full execution span tree — present only for head-sampled
    /// requests, which ran traced.
    pub trace: Option<QueryTrace>,
}

impl SlowLogEntry {
    /// Renders the entry as one JSON object.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}}}",
                    escape(s.name),
                    s.start_ns,
                    s.dur_ns
                )
            })
            .collect();
        let tenant = match self.tenant {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        let trace = match &self.trace {
            Some(t) => t.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\": {}, \"tenant\": {}, \"query\": \"{}\", \"outcome\": \"{}\", \
             \"reason\": \"{}\", \"queue_depth\": {}, \"total_ns\": {}, \
             \"plan\": \"{}\", \"stages\": [{}], \"trace\": {}}}",
            self.id,
            tenant,
            escape(&self.query),
            escape(self.outcome),
            escape(self.reason),
            self.queue_depth,
            self.total_ns,
            escape(&self.plan_summary),
            stages.join(", "),
            trace
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[derive(Debug)]
struct Ring {
    items: VecDeque<Arc<SlowLogEntry>>,
}

/// A fixed-capacity concurrent ring buffer of [`SlowLogEntry`] records:
/// pushes evict oldest-first once full, and snapshots hand out `Arc`s so
/// no reader ever observes a partially written entry.
#[derive(Debug)]
pub struct SlowLog {
    inner: Mutex<Ring>,
    capacity: usize,
    /// Total entries ever retained (monotone; `retained - len` were
    /// evicted).
    retained: AtomicU64,
}

impl SlowLog {
    /// A log holding at most `capacity` entries. A capacity of `0`
    /// disables retention entirely — pushes become no-ops.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Ring {
                items: VecDeque::with_capacity(capacity),
            }),
            capacity,
            retained: AtomicU64::new(0),
        }
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retains one entry, evicting the oldest when full. Returns whether
    /// the entry was kept (`false` only for a zero-capacity log).
    pub fn push(&self, entry: SlowLogEntry) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let entry = Arc::new(entry);
        let mut ring = match self.inner.lock() {
            Ok(g) => g,
            // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
            Err(e) => panic!("slow log poisoned: {e}"),
        };
        if ring.items.len() >= self.capacity {
            ring.items.pop_front();
        }
        ring.items.push_back(entry);
        drop(ring);
        self.retained.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Current number of retained entries.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.items.len(),
            // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
            Err(e) => panic!("slow log poisoned: {e}"),
        }
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever retained (monotone, survives eviction).
    pub fn retained_total(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<Arc<SlowLogEntry>> {
        match self.inner.lock() {
            Ok(g) => g.items.iter().cloned().collect(),
            // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
            Err(e) => panic!("slow log poisoned: {e}"),
        }
    }

    /// Renders the whole log as one JSON document:
    /// `{"capacity": N, "retained_total": N, "entries": [...]}`.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries()
            .iter()
            .map(|e| format!("    {}", e.to_json()))
            .collect();
        format!(
            "{{\n  \"capacity\": {},\n  \"retained_total\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
            self.capacity,
            self.retained_total(),
            entries.join(",\n")
        )
    }
}

/// The tail-based retention policy: keep a request's record when it
/// breached the latency threshold, ended in a non-success outcome, or was
/// head-sampled 1-in-N at admission.
#[derive(Debug)]
pub struct TailSampler {
    threshold_ns: u64,
    head_every: u64,
    heads: AtomicU64,
}

impl TailSampler {
    /// A policy retaining requests slower than `threshold` plus every
    /// `head_every`-th request (`0` disables head sampling). A zero
    /// threshold retains everything with nonzero latency — useful in
    /// tests, pathological in production.
    pub fn new(threshold: Duration, head_every: u64) -> Self {
        Self {
            threshold_ns: u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX),
            head_every,
            heads: AtomicU64::new(0),
        }
    }

    /// The head-sampling decision, made once per request **at admission**
    /// (so a sampled request can run fully traced). Exactly one in
    /// `head_every` calls returns `true`; always `false` when disabled.
    pub fn sample_head(&self) -> bool {
        if self.head_every == 0 {
            return false;
        }
        self.heads
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.head_every)
    }

    /// The tail decision, made once per request at completion.
    pub fn retain(&self, total_ns: u64, success: bool, head_sampled: bool) -> bool {
        head_sampled || !success || total_ns > self.threshold_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> SlowLogEntry {
        SlowLogEntry {
            id,
            tenant: Some(7),
            query: format!("{id} AND 1"),
            outcome: "ok",
            reason: "cache_miss",
            queue_depth: 3,
            total_ns: 1_000 * id,
            stages: vec![Stage {
                name: "queue",
                start_ns: 10,
                dur_ns: 90,
            }],
            plan_summary: "SliceProbe".to_string(),
            trace: None,
        }
    }

    #[test]
    fn ring_bounds_and_evicts_oldest_first() {
        let log = SlowLog::new(3);
        for id in 0..5 {
            assert!(log.push(entry(id)));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.retained_total(), 5);
        let ids: Vec<u64> = log.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let log = SlowLog::new(0);
        assert!(!log.push(entry(1)));
        assert!(log.is_empty());
        assert_eq!(log.retained_total(), 0);
        assert!(log.to_json().contains("\"entries\": [\n\n  ]"));
    }

    #[test]
    fn json_carries_the_attribution_payload() {
        let log = SlowLog::new(4);
        log.push(entry(9));
        let json = log.to_json();
        assert!(json.contains("\"id\": 9"), "{json}");
        assert!(json.contains("\"tenant\": 7"), "{json}");
        assert!(json.contains("\"outcome\": \"ok\""), "{json}");
        assert!(json.contains("\"queue_depth\": 3"), "{json}");
        assert!(json.contains("\"name\": \"queue\""), "{json}");
        assert!(json.contains("\"trace\": null"), "{json}");
        // An anonymous entry renders a null tenant.
        let mut anon = entry(10);
        anon.tenant = None;
        log.push(anon);
        assert!(log.to_json().contains("\"tenant\": null"));
    }

    #[test]
    fn head_sampler_fires_exactly_one_in_n() {
        let s = TailSampler::new(Duration::from_millis(100), 4);
        let fired: Vec<bool> = (0..12).map(|_| s.sample_head()).collect();
        let expect: Vec<bool> = (0..12).map(|i| i % 4 == 0).collect();
        assert_eq!(fired, expect);
        let off = TailSampler::new(Duration::from_millis(100), 0);
        assert!((0..100).all(|_| !off.sample_head()));
    }

    #[test]
    fn retention_truth_table() {
        let s = TailSampler::new(Duration::from_micros(50), 0);
        assert!(!s.retain(10_000, true, false), "fast success drops");
        assert!(s.retain(60_000, true, false), "threshold breach retains");
        assert!(s.retain(10_000, false, false), "non-success retains");
        assert!(s.retain(10_000, true, true), "head sample retains");
        assert!(
            !s.retain(50_000, true, false),
            "threshold is exclusive at the boundary"
        );
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity_or_tear() {
        let log = Arc::new(SlowLog::new(8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..50 {
                        log.push(entry(t * 1_000 + i));
                    }
                });
            }
        });
        assert_eq!(log.len(), 8);
        assert_eq!(log.retained_total(), 200);
        for e in log.entries() {
            // An entry's fields are mutually consistent — never torn
            // across two writers.
            assert_eq!(e.query, format!("{} AND 1", e.id));
            assert_eq!(e.total_ns, 1_000 * e.id);
        }
    }
}
