//! A streaming log₂-bucketed histogram over `u64` samples (nanoseconds by
//! convention), built for concurrent recording and cross-worker merging.
//!
//! ## Bucket layout
//!
//! Values below [`SUB_BUCKETS`] (32) land in one exact bucket each. Above
//! that, each power-of-two octave `[2ᵉ, 2ᵉ⁺¹)` is split into
//! [`SUB_BUCKETS`] linear sub-buckets of width `2^(e-5)` — the classic
//! HDR-style layout. A bucket's *representative* value is its inclusive
//! upper edge, so reported percentiles are one-sided overestimates with
//! relative error at most `1/32` ([`Histogram::MAX_RELATIVE_ERROR`]):
//! a bucket starting at `v ≥ 32·2^(e-5)` has width `2^(e-5)`, and
//! `2^(e-5) / v ≤ 1/32`.
//!
//! `count`, `sum`, `max`, and `min` are tracked exactly alongside the
//! buckets, so `mean` and `max` carry no bucketing error at all, and
//! percentile estimates are clamped into `[min, max]` (a single-sample
//! histogram reports that sample exactly, preserving the nearest-rank
//! contract for the degenerate cases the serving tests pin).
//!
//! ## Concurrency and merging
//!
//! Every cell is a relaxed `AtomicU64`: recording is wait-free and
//! `merge_from` is plain bucket-wise addition, which makes merging
//! associative and commutative — per-worker histograms in
//! `fsi_serve::QueryPool` and per-shard histograms merge into one total in
//! any grouping with an identical result (asserted by the registry merge
//! proptests).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave (and the exact-value range `0..32`).
pub const SUB_BUCKETS: usize = 32;
/// `log₂(SUB_BUCKETS)`.
const SUB_BITS: u32 = 5;
/// Total bucket count: 32 exact low values plus 59 octaves (exponents
/// `SUB_BITS..=63`) × 32 sub-buckets covering the rest of the `u64` range.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Bucket index of a value. Exact below [`SUB_BUCKETS`]; log₂-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BITS
    let shift = e - SUB_BITS;
    let sub = (v >> shift) as usize - SUB_BUCKETS;
    ((e - SUB_BITS + 1) as usize * SUB_BUCKETS) + sub
}

/// Inclusive upper edge (the representative value) of bucket `i` — the
/// largest value that [`bucket_index`] maps to `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let group = (i / SUB_BUCKETS) as u32; // >= 1
    let sub = (i % SUB_BUCKETS) as u64;
    let shift = group - 1;
    // The very last bucket's exclusive end is 2^64: the wrapping shift
    // yields 0 and the wrapping decrement lands on u64::MAX — its correct
    // inclusive edge.
    (SUB_BUCKETS as u64 + sub + 1)
        .wrapping_shl(shift)
        .wrapping_sub(1)
}

/// A concurrent log₂-bucket histogram (see the module docs for the layout
/// and error bound).
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Stored as the raw minimum; `u64::MAX` means "no samples yet".
    min: AtomicU64,
    /// Largest value recorded with an exemplar id (0 = no exemplar yet;
    /// see [`Histogram::record_with_exemplar`]).
    exemplar_val: AtomicU64,
    /// The id recorded alongside `exemplar_val`; best-effort under races.
    exemplar_id: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// One-sided relative error bound of percentile estimates: a reported
    /// percentile `p̂` satisfies `p ≤ p̂ ≤ p · (1 + 1/32)` for the exact
    /// nearest-rank percentile `p` (before the `[min, max]` clamp, which
    /// can only tighten it).
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array through a Vec.
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            // audit:allow(hot_path_panic): the vec is built with exactly NUM_BUCKETS elements two lines up
            .unwrap_or_else(|_| unreachable!("length is NUM_BUCKETS"));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            exemplar_val: AtomicU64::new(0),
            exemplar_id: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free: four relaxed atomic ops plus two
    /// bounded CAS loops that only retry while another thread is moving
    /// the same extremum in the same direction.
    pub fn record(&self, v: u64) {
        // audit:allow(hot_path_index): bucket_index returns < NUM_BUCKETS for every u64
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating on the
    /// absurd >584-year case).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one sample and attaches `id` (by convention a request id)
    /// as the histogram's exemplar when `v` is the largest value seen so
    /// far — Prometheus-exemplar style, answering "*which* request hit
    /// the tail?". The `(value, id)` pairing is best-effort under
    /// concurrent recording: two threads racing new maxima can pair one's
    /// value with the other's id, which is acceptable for a debugging
    /// breadcrumb and keeps the hot path at two extra relaxed atomic ops.
    /// A value of 0 never becomes the exemplar (0 encodes "none").
    pub fn record_with_exemplar(&self, v: u64, id: u64) {
        self.record(v);
        self.note_exemplar(v, id);
    }

    fn note_exemplar(&self, v: u64, id: u64) {
        if v == 0 {
            return;
        }
        let prev = self.exemplar_val.fetch_max(v, Ordering::Relaxed);
        if v >= prev {
            self.exemplar_id.store(id, Ordering::Relaxed);
        }
    }

    /// The `(value, id)` exemplar of the largest sample recorded via
    /// [`Histogram::record_with_exemplar`], if any.
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        match self.exemplar_val.load(Ordering::Relaxed) {
            0 => None,
            v => Some((v, self.exemplar_id.load(Ordering::Relaxed))),
        }
    }

    /// Adds every sample of `other` into `self` (bucket-wise addition —
    /// associative and commutative, so per-worker and per-shard histograms
    /// merge in any grouping).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        if let Some((v, id)) = other.exemplar() {
            self.note_exemplar(v, id);
        }
    }

    /// Adds every sample of a point-in-time snapshot into `self` — the
    /// cross-thread half of merging: workers hand back snapshots, the
    /// owner folds them into its live histogram. Each snapshot bucket's
    /// inclusive upper edge maps back to the bucket it came from, so this
    /// loses no precision beyond the bucketing already applied.
    pub fn merge_snapshot(&self, other: &HistSnapshot) {
        for &(upper, n) in &other.buckets {
            // audit:allow(hot_path_index): bucket_index returns < NUM_BUCKETS for every u64
            self.buckets[bucket_index(upper)].fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
        if let Some(mn) = other.min {
            self.min.fetch_min(mn, Ordering::Relaxed);
        }
        if let Some((v, id)) = other.exemplar {
            self.note_exemplar(v, id);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX => None,
            v => Some(v),
        }
    }

    /// Exact mean (`NaN` when empty — a missing measurement must never
    /// read as a measured 0).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            f64::NAN
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Nearest-rank percentile estimate: the upper edge of the bucket
    /// holding the `⌈p·N⌉`-th smallest sample, clamped into `[min, max]`.
    /// `p` is a fraction in `[0, 1]` (`0.99` for p99, not `99.0`). `NaN`
    /// when empty. See [`Histogram::MAX_RELATIVE_ERROR`].
    pub fn percentile(&self, p: f64) -> f64 {
        self.snapshot().percentile(p)
    }

    /// A point-in-time copy of the buckets and exact aggregates.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper(i), n))
                })
                .collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            min: self.min(),
            exemplar: self.exemplar(),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let fresh = Histogram::new();
        fresh.merge_from(self);
        fresh
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .field("min", &self.min())
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`]: only non-empty buckets, as
/// `(inclusive upper edge, count)` pairs ascending by edge, plus the exact
/// aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Non-empty buckets, ascending: `(inclusive upper edge, count)`.
    pub buckets: Vec<(u64, u64)>,
    /// Total sample count.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
    /// Exact minimum sample (`None` when empty).
    pub min: Option<u64>,
    /// `(value, id)` of the largest exemplar-carrying sample, if any
    /// (see [`Histogram::record_with_exemplar`]).
    pub exemplar: Option<(u64, u64)>,
}

impl HistSnapshot {
    /// Exact mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile estimate over the bucketed samples (see
    /// [`Histogram::percentile`]). `p` is a fraction in `[0, 1]` — passing
    /// `50.0` for the median is a unit error that would silently clamp to
    /// the maximum, so out-of-range fractions are rejected loudly.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "percentile takes a fraction in [0, 1], got {p}"
        );
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let est = upper.min(self.max).max(self.min.unwrap_or(0));
                return est as f64;
            }
        }
        self.max as f64
    }

    /// Merges another snapshot's buckets and aggregates into this one
    /// (same semantics as [`Histogram::merge_from`]).
    pub fn merge_from(&mut self, other: &HistSnapshot) {
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ua, na)), Some(&&(ub, nb))) => {
                    if ua == ub {
                        merged.push((ua, na + nb));
                        a.next();
                        b.next();
                    } else if ua < ub {
                        merged.push((ua, na));
                        a.next();
                    } else {
                        merged.push((ub, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        // Wrapping, to match the live histogram's relaxed `fetch_add`
        // semantics exactly: a sum of adversarially large samples wraps
        // there too (nanosecond latencies never get close).
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // The merged exemplar is whichever side's carries the larger
        // value — consistent with "the exemplar tracks the max".
        self.exemplar = match (self.exemplar, other.exemplar) {
            (Some(a), Some(b)) => Some(if b.0 > a.0 { b } else { a }),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        // Every probe value must land in a bucket whose upper edge is >= it
        // and within the documented relative error.
        for v in (0u64..256).chain([
            1000,
            4095,
            4096,
            4097,
            65_535,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ]) {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "v={v} i={i} upper={upper}");
            assert!(
                upper as f64 <= v as f64 * (1.0 + Histogram::MAX_RELATIVE_ERROR) + 1.0,
                "v={v} upper={upper}"
            );
            // The upper edge itself maps back to the same bucket.
            assert_eq!(bucket_index(upper), i, "v={v}");
        }
    }

    #[test]
    fn extreme_values_record_in_bounds() {
        // Regression: the top octave (e = 63) needs its own 32 sub-buckets
        // beyond the 32 exact low values — an off-by-one in NUM_BUCKETS
        // made any sample >= 2^63 index past the bucket array.
        let h = Histogram::new();
        for v in [
            1u64 << 62,
            (1 << 63) - 1,
            1 << 63,
            (1 << 63) + 12345,
            u64::MAX,
        ] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), u64::MAX);
        let snap = h.snapshot();
        let merged = Histogram::new();
        merged.merge_snapshot(&snap); // upper edges must map back in bounds
        assert_eq!(merged.snapshot(), snap);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, SUB_BUCKETS as u64);
        for (upper, n) in snap.buckets {
            assert_eq!(n, 1);
            assert!(upper < SUB_BUCKETS as u64);
        }
    }

    #[test]
    fn empty_histogram_is_nan_not_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_nan());
        assert!(h.percentile(0.5).is_nan());
        assert_eq!(h.min(), None);
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        // The [min, max] clamp makes every percentile of a single sample
        // exactly that sample, whatever its bucket's upper edge is.
        let h = Histogram::new();
        h.record(7_000);
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 7_000.0, "p={p}");
        }
        assert_eq!(h.mean(), 7_000.0);
        assert_eq!(h.max(), 7_000);
    }

    #[test]
    fn percentiles_within_documented_bound_of_exact_nearest_rank() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * 997).collect();
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let est = h.percentile(p);
            assert!(est >= exact, "p={p} est={est} exact={exact}");
            assert!(
                est <= exact * (1.0 + Histogram::MAX_RELATIVE_ERROR),
                "p={p} est={est} exact={exact}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 50, 7_000, 1 << 30, 12, 999_999] {
            all.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // Miri executes this with real (interpreted) threads; keep the
        // per-thread volume small enough to finish while still racing.
        const PER_THREAD: u64 = if cfg!(miri) { 200 } else { 10_000 };
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4 * PER_THREAD);
        let bucket_total: u64 = h.snapshot().buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, 4 * PER_THREAD);
    }

    #[test]
    fn exemplar_tracks_the_max_and_survives_merges() {
        let h = Histogram::new();
        assert_eq!(h.exemplar(), None);
        h.record(500); // plain records never set an exemplar
        assert_eq!(h.exemplar(), None);
        h.record_with_exemplar(100, 41);
        h.record_with_exemplar(300, 42);
        h.record_with_exemplar(200, 43); // smaller: exemplar unchanged
        assert_eq!(h.exemplar(), Some((300, 42)));
        assert_eq!(h.snapshot().exemplar, Some((300, 42)));
        // Histogram merge adopts the larger exemplar.
        let other = Histogram::new();
        other.record_with_exemplar(900, 77);
        h.merge_from(&other);
        assert_eq!(h.exemplar(), Some((900, 77)));
        // Snapshot merge agrees, in either direction.
        let mut sa = h.snapshot();
        let fresh = Histogram::new();
        fresh.record_with_exemplar(50, 1);
        sa.merge_from(&fresh.snapshot());
        assert_eq!(sa.exemplar, Some((900, 77)));
        let mut sb = fresh.snapshot();
        sb.merge_from(&h.snapshot());
        assert_eq!(sb.exemplar, Some((900, 77)));
        // merge_snapshot folds the exemplar back into a live histogram.
        let folded = Histogram::new();
        folded.merge_snapshot(&h.snapshot());
        assert_eq!(folded.exemplar(), Some((900, 77)));
    }

    #[test]
    fn snapshot_merge_matches_histogram_merge() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 100, 100, 65_536, 1 << 50] {
            a.record(v);
        }
        for v in [2u64, 100, 1 << 50] {
            b.record(v);
        }
        let mut sa = a.snapshot();
        sa.merge_from(&b.snapshot());
        a.merge_from(&b);
        assert_eq!(sa, a.snapshot());
    }
}
