//! Per-query structured tracing: a flat list of named, timed spans with
//! string attributes, built cheaply while a query runs and rendered as
//! text or JSON afterwards.
//!
//! The model is deliberately flat (parse → rewrite → plan → one span per
//! shard): the serving stack's per-query stages are sequential, so a flat
//! span list with start offsets reconstructs the timeline exactly, without
//! the allocation churn of a span tree. Attributes carry the attribution
//! payload — chosen `PlanKind`, SIMD tier, estimated vs observed rows,
//! cache hit/miss/refresh — as plain strings so the trace layer has no
//! dependency on the layers it describes.

use std::time::Instant;

/// One timed stage of a traced query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`parse`, `plan`, `shard0`, …).
    pub name: String,
    /// Start offset from the trace's origin, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Attribution payload as `(key, value)` pairs. Keys are `&'static`:
    /// attribute names are always literals at the instrumentation site, and
    /// tracing sits on the per-query hot path — one avoidable allocation
    /// per attribute is exactly the overhead budget this crate promises
    /// not to spend.
    pub attrs: Vec<(&'static str, String)>,
}

impl Span {
    /// Adds one attribute (chainable).
    pub fn attr(&mut self, key: &'static str, value: impl ToString) -> &mut Self {
        self.attrs.push((key, value.to_string()));
        self
    }

    /// The value of an attribute, if set.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An opaque span start marker from [`TraceBuilder::start_span`].
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(Instant);

/// Accumulates spans while a query runs; [`TraceBuilder::finish`] seals it
/// into a [`QueryTrace`].
#[derive(Debug)]
pub struct TraceBuilder {
    origin: Instant,
    query: String,
    spans: Vec<Span>,
}

impl TraceBuilder {
    /// A new trace whose clock starts now.
    pub fn new(query: impl Into<String>) -> Self {
        Self {
            origin: Instant::now(),
            query: query.into(),
            // One span per stage plus one per shard: 8 covers the serving
            // stack's default shape without a mid-query regrow.
            spans: Vec::with_capacity(8),
        }
    }

    /// Marks the start of a stage.
    pub fn start_span(&self) -> SpanStart {
        SpanStart(Instant::now())
    }

    /// Ends a stage started with [`TraceBuilder::start_span`], recording it
    /// under `name`; the returned reference takes attributes.
    pub fn end_span(&mut self, start: SpanStart, name: &str) -> &mut Span {
        let start_ns = ns(start.0.duration_since(self.origin));
        let dur_ns = ns(start.0.elapsed());
        self.spans.push(Span {
            name: name.to_string(),
            start_ns,
            dur_ns,
            attrs: Vec::new(),
        });
        // audit:allow(hot_path_panic): an element was pushed on the line above
        self.spans.last_mut().expect("just pushed")
    }

    /// Records an instantaneous (zero-duration) event span.
    pub fn event(&mut self, name: &str) -> &mut Span {
        let at = self.start_span();
        self.end_span(at, name)
    }

    /// Seals the trace; `total_ns` covers from construction to this call.
    pub fn finish(self) -> QueryTrace {
        QueryTrace {
            total_ns: ns(self.origin.elapsed()),
            query: self.query,
            spans: self.spans,
        }
    }
}

fn ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A completed query trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// The query string as submitted.
    pub query: String,
    /// End-to-end wall clock, nanoseconds.
    pub total_ns: u64,
    /// Stages in completion order (stage pipelines are sequential, so this
    /// is also timeline order).
    pub spans: Vec<Span>,
}

impl QueryTrace {
    /// The first span with this name, if any.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// A human-readable multi-line rendering:
    ///
    /// ```text
    /// trace "0 AND 1" total 182.4µs
    ///   parse        1.2µs
    ///   plan         3.4µs  plan=And[GallopProbe]
    ///   shard0      88.0µs  plan_kind=GallopProbe est_rows=120 rows=117
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("trace {:?} total {}\n", self.query, fmt_ns(self.total_ns));
        let width = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
        for s in &self.spans {
            let attrs: Vec<String> = s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "  {:<width$}  {:>10}  {}\n",
                s.name,
                fmt_ns(s.dur_ns),
                attrs.join(" ")
            ));
        }
        out
    }

    /// A JSON document with the query, total, and every span.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                let attrs: Vec<String> = s
                    .attrs
                    .iter()
                    .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
                    .collect();
                format!(
                    "{{\"name\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}, \"attrs\": {{{}}}}}",
                    escape(&s.name),
                    s.start_ns,
                    s.dur_ns,
                    attrs.join(", ")
                )
            })
            .collect();
        format!(
            "{{\"query\": \"{}\", \"total_ns\": {}, \"spans\": [{}]}}",
            escape(&self.query),
            self.total_ns,
            spans.join(", ")
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}µs", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_within_the_total() {
        let mut tb = TraceBuilder::new("0 AND 1");
        let s = tb.start_span();
        std::hint::black_box((0..1000u64).sum::<u64>());
        tb.end_span(s, "work").attr("rows", 42);
        let trace = tb.finish();
        assert_eq!(trace.spans.len(), 1);
        let span = trace.span("work").expect("span recorded");
        assert_eq!(span.get("rows"), Some("42"));
        assert!(span.start_ns + span.dur_ns <= trace.total_ns);
    }

    #[test]
    fn spans_are_in_timeline_order() {
        let mut tb = TraceBuilder::new("q");
        for name in ["parse", "plan", "exec"] {
            let s = tb.start_span();
            tb.end_span(s, name);
        }
        let trace = tb.finish();
        let starts: Vec<u64> = trace.spans.iter().map(|s| s.start_ns).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{starts:?}");
    }

    #[test]
    fn render_and_json_carry_the_payload() {
        let mut tb = TraceBuilder::new("0 AND \"x\"");
        tb.event("cache").attr("outcome", "hit");
        let trace = tb.finish();
        let text = trace.render();
        assert!(text.contains("cache"), "{text}");
        assert!(text.contains("outcome=hit"), "{text}");
        let json = trace.to_json();
        assert!(json.contains("\\\"x\\\""), "{json}");
        assert!(json.contains("\"outcome\": \"hit\""), "{json}");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
