//! # fsi-obs — the observability substrate
//!
//! Zero-external-dependency metrics and tracing for the serving stack,
//! sitting below every other `fsi-*` crate so any layer can report without
//! dependency cycles:
//!
//! * [`Histogram`] — a streaming log₂-bucket latency histogram: wait-free
//!   concurrent recording, bucket-wise (associative, commutative) merging
//!   across `QueryPool` workers and shards, exact `count`/`sum`/`max`, and
//!   nearest-rank-compatible percentile estimates with a documented
//!   ≤ 1/32 one-sided relative error ([`Histogram::MAX_RELATIVE_ERROR`]).
//! * [`Registry`] — named, labeled counters (striped atomics), gauges, and
//!   histograms; hot paths are one relaxed atomic op on a cached handle.
//!   [`Registry::global`] hosts process-wide metrics (kernel dispatch
//!   counters, planner plan-kind counters); servers own private instances.
//!   Point-in-time [`Snapshot`]s render as Prometheus exposition text or
//!   JSON and merge like histograms do.
//! * [`TraceBuilder`] / [`QueryTrace`] — per-query structured spans
//!   (parse → rewrite → plan → per-shard exec) with string attributes for
//!   the chosen `PlanKind`/`Kernel`/`SimdLevel`, estimated vs observed
//!   cardinalities, and cache attribution.
//! * [`SlowLog`] / [`TailSampler`] — the request-lifecycle layer: a
//!   fixed-capacity concurrent ring of retained request records (stage
//!   timestamps, outcome attribution, queue depth, optional full trace)
//!   and the tail-based retention policy (latency threshold, non-success
//!   outcome, or 1-in-N head sample). [`LabelCap`] bounds per-tenant
//!   label cardinality; [`Histogram::record_with_exemplar`] attaches the
//!   request id that hit the current maximum.
//!
//! The overhead discipline: instrumentation on always-on paths is counters
//! and histogram records only (~tens of nanoseconds against multi-µs
//! queries — `BENCH_obs.json` measures the traced-vs-untraced gap and CI
//! gates it at ≤ 5%); span construction allocates, so traces are built
//! only on the explicitly traced entry points.

#![forbid(unsafe_code)]

pub mod hist;
pub mod registry;
pub mod slowlog;
pub mod trace;

pub use hist::{HistSnapshot, Histogram, NUM_BUCKETS, SUB_BUCKETS};
pub use registry::{
    Counter, Gauge, LabelCap, Labels, Registry, Snapshot, SnapshotEntry, SnapshotValue,
};
pub use slowlog::{SlowLog, SlowLogEntry, Stage, TailSampler};
pub use trace::{fmt_ns, QueryTrace, Span, SpanStart, TraceBuilder};
