//! The metrics registry: named, labeled counters, gauges, and histograms
//! with lock-free hot paths, plus point-in-time [`Snapshot`]s rendered as
//! Prometheus exposition text or JSON.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a write lock once
//! per *distinct* metric and returns an [`std::sync::Arc`] handle;
//! call sites cache the handle (usually in a `OnceLock`) so the hot path
//! is a single relaxed atomic op with no map lookup at all. Counters are
//! striped across cache-line-padded atomics selected by a thread-local
//! stripe id, so concurrent workers never contend on one cell.
//!
//! Snapshots are mergeable ([`Snapshot::merge_from`]): counters and gauges
//! add, histograms merge bucket-wise — associative and commutative, so
//! per-worker or per-shard registries can be combined in any grouping with
//! an identical result (the merge-associativity proptests pin this).

use crate::hist::{HistSnapshot, Histogram};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Stripes per counter. A power of two; 8 × 64 B = one stripe per core of
/// a typical small host without bloating every counter past 512 B.
const STRIPES: usize = 8;

/// One cache-line-padded counter stripe.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

/// A monotonically increasing counter, striped to keep concurrent
/// increments off each other's cache lines.
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

/// Round-robin stripe assignment per thread: cheap, stable within a
/// thread, and spreads a worker pool evenly across stripes.
fn thread_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

impl Counter {
    fn new() -> Self {
        Self {
            stripes: Default::default(),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // audit:allow(hot_path_index): thread_stripe() reduces modulo STRIPES, the array length
        self.stripes[thread_stripe()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A last-write-wins instantaneous value (lengths, byte footprints,
/// configuration constants).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Label pairs attached to a metric, e.g. `[("kernel", "Galloping")]`.
pub type Labels = Vec<(String, String)>;

/// A label-cardinality cap for metrics labeled by an unbounded external
/// id (tenants on the wire can be any `u32`): the first `max` distinct
/// ids keep their own label value, everything past the cap collapses
/// into [`LabelCap::OVERFLOW`]. This bounds registry growth — and scrape
/// size — under adversarial or merely chatty traffic, while an id seen
/// before the cap filled keeps its own series forever (stable identity,
/// no flapping between "own label" and "other").
#[derive(Debug, Default)]
pub struct LabelCap {
    max: usize,
    seen: Mutex<BTreeSet<u32>>,
    overflow: AtomicU64,
}

impl LabelCap {
    /// The label value every over-cap id collapses into.
    pub const OVERFLOW: &'static str = "other";

    /// A cap admitting at most `max` distinct label values.
    pub fn new(max: usize) -> Self {
        Self {
            max,
            seen: Mutex::new(BTreeSet::new()),
            overflow: AtomicU64::new(0),
        }
    }

    /// The label value for `id`: its decimal form while the cap has
    /// room (or `id` was already admitted), [`LabelCap::OVERFLOW`]
    /// afterwards.
    pub fn label(&self, id: u32) -> String {
        // audit:allow(hot_path_panic): mutex poisoning means another thread already panicked; propagating is correct
        let mut seen = self.seen.lock().expect("label cap lock");
        if seen.contains(&id) {
            return id.to_string();
        }
        if seen.len() < self.max {
            seen.insert(id);
            return id.to_string();
        }
        drop(seen);
        self.overflow.fetch_add(1, Ordering::Relaxed);
        Self::OVERFLOW.to_string()
    }

    /// Distinct ids currently admitted.
    pub fn admitted(&self) -> usize {
        // audit:allow(hot_path_panic): mutex poisoning means another thread already panicked; propagating is correct
        self.seen.lock().expect("label cap lock").len()
    }

    /// Total lookups that collapsed into [`LabelCap::OVERFLOW`].
    pub fn overflowed(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }
}

/// Fully qualified metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Labels,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Labels = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Cheap to clone handles out of, cheap to
/// snapshot, and safe to share across threads.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<MetricId, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry — where layers without an obvious owner
    /// (kernel dispatch counters, planner plan-kind counters) register.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or registers a counter.
    ///
    /// # Panics
    /// If the same (name, labels) identity is already registered as a
    /// different metric kind — that is a naming bug, not a runtime state.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            // audit:allow(hot_path_panic): re-registering a name as a different metric kind is a programming error; fail fast
            other => panic!("{name} already registered as {other:?}, wanted counter"),
        }
    }

    /// Gets or registers a gauge (same identity rules as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            // audit:allow(hot_path_panic): re-registering a name as a different metric kind is a programming error; fail fast
            other => panic!("{name} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Gets or registers a histogram (same identity rules as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            // audit:allow(hot_path_panic): re-registering a name as a different metric kind is a programming error; fail fast
            other => panic!("{name} already registered as {other:?}, wanted histogram"),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let id = MetricId::new(name, labels);
        // audit:allow(hot_path_panic): lock poisoning means a writer already panicked; propagating beats silently losing metrics
        if let Some(m) = self.metrics.read().expect("registry lock").get(&id) {
            return clone_metric(m);
        }
        // audit:allow(hot_path_panic): lock poisoning means a writer already panicked; propagating beats silently losing metrics
        let mut map = self.metrics.write().expect("registry lock");
        clone_metric(map.entry(id).or_insert_with(make))
    }

    /// A point-in-time copy of every metric, in deterministic
    /// (name, labels) order.
    pub fn snapshot(&self) -> Snapshot {
        // audit:allow(hot_path_panic): lock poisoning means a writer already panicked; propagating beats silently losing metrics
        let map = self.metrics.read().expect("registry lock");
        Snapshot {
            entries: map
                .iter()
                .map(|(id, m)| SnapshotEntry {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    value: match m {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

/// One metric's value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A monotone counter total.
    Counter(u64),
    /// An instantaneous gauge value.
    Gauge(u64),
    /// A histogram's buckets and exact aggregates.
    Histogram(HistSnapshot),
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name (`snake_case`, conventionally suffixed `_total` for
    /// counters and `_ns`/`_bytes` for unit-carrying values).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// A point-in-time copy of a registry, ordered by (name, labels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every metric, deterministic order.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotEntry> {
        let id = MetricId::new(name, labels);
        self.entries
            .iter()
            .find(|e| e.name == id.name && e.labels == id.labels)
    }

    /// The value of a counter, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SnapshotValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of a gauge, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SnapshotValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The snapshot of a histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistSnapshot> {
        match &self.find(name, labels)?.value {
            SnapshotValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter (or gauge) entry sharing `name`, across all
    /// label combinations — e.g. total dispatches over all kernels.
    pub fn sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match &e.value {
                SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => *v,
                SnapshotValue::Histogram(h) => h.count,
            })
            .sum()
    }

    /// Merges `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise, metrics present on one side only carry over.
    /// Associative and commutative — worker/shard snapshots combine in any
    /// grouping to the same total.
    pub fn merge_from(&mut self, other: &Snapshot) {
        for theirs in &other.entries {
            let mine = self
                .entries
                .iter_mut()
                .find(|e| e.name == theirs.name && e.labels == theirs.labels);
            match mine {
                None => {
                    let at = self
                        .entries
                        .partition_point(|e| (&e.name, &e.labels) < (&theirs.name, &theirs.labels));
                    self.entries.insert(at, theirs.clone());
                }
                Some(mine) => match (&mut mine.value, &theirs.value) {
                    (SnapshotValue::Counter(a), SnapshotValue::Counter(b)) => *a += b,
                    (SnapshotValue::Gauge(a), SnapshotValue::Gauge(b)) => *a += b,
                    (SnapshotValue::Histogram(a), SnapshotValue::Histogram(b)) => a.merge_from(b),
                    // audit:allow(hot_path_panic): merging snapshots from differently-typed registries is a programming error; fail fast
                    (a, b) => panic!(
                        "metric {} kind mismatch in merge: {a:?} vs {b:?}",
                        mine.name
                    ),
                },
            }
        }
    }

    /// Prometheus exposition-format text: `# TYPE` lines, labeled samples,
    /// and for histograms cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<&str> = None;
        for e in &self.entries {
            let kind = match e.value {
                SnapshotValue::Counter(_) => "counter",
                SnapshotValue::Gauge(_) => "gauge",
                SnapshotValue::Histogram(_) => "histogram",
            };
            if last_typed != Some(e.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", e.name, kind));
                last_typed = Some(e.name.as_str());
            }
            match &e.value {
                SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        prom_labels(&e.labels, None),
                        v
                    ));
                }
                SnapshotValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for &(upper, n) in &h.buckets {
                        cumulative += n;
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.name,
                            prom_labels(&e.labels, Some(&upper.to_string())),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        prom_labels(&e.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        prom_labels(&e.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        prom_labels(&e.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// A JSON document: `{"metrics": [{"name", "labels", "type", ...}]}`.
    /// Histogram entries carry buckets, exact aggregates, and p50/p95/p99
    /// estimates.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let labels: Vec<String> = e
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                .collect();
            let labels = format!("{{{}}}", labels.join(", "));
            let body = match &e.value {
                SnapshotValue::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
                SnapshotValue::Gauge(v) => format!("\"type\": \"gauge\", \"value\": {v}"),
                SnapshotValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .map(|&(u, n)| format!("[{u}, {n}]"))
                        .collect();
                    format!(
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]",
                        h.count,
                        h.sum,
                        h.max,
                        json_f64(h.percentile(0.50)),
                        json_f64(h.percentile(0.95)),
                        json_f64(h.percentile(0.99)),
                        buckets.join(", ")
                    )
                }
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"labels\": {}, {}}}{}\n",
                json_escape(&e.name),
                labels,
                body,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn prom_labels(labels: &Labels, le: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// JSON has no NaN; an empty histogram's percentiles render as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_stripe_and_sum() {
        let r = Registry::new();
        let c = r.counter("requests_total", &[]);
        // Keep the interpreted-thread volume tractable under Miri.
        const PER_THREAD: u64 = if cfg!(miri) { 200 } else { 10_000 };
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4 * PER_THREAD);
        assert_eq!(
            r.snapshot().counter("requests_total", &[]),
            Some(4 * PER_THREAD)
        );
    }

    #[test]
    fn registration_is_idempotent_and_label_order_insensitive() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("k", "v"), ("a", "b")]);
        let b = r.counter("x_total", &[("a", "b"), ("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().entries.len(), 1);
    }

    #[test]
    #[should_panic(expected = "wanted gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", &[]);
        r.gauge("x", &[]);
    }

    #[test]
    fn snapshot_merge_adds_and_carries() {
        let (r1, r2) = (Registry::new(), Registry::new());
        r1.counter("a_total", &[]).add(3);
        r2.counter("a_total", &[]).add(4);
        r2.counter("b_total", &[("k", "x")]).add(9);
        r1.histogram("lat_ns", &[]).record(100);
        r2.histogram("lat_ns", &[]).record(200);
        let mut merged = r1.snapshot();
        merged.merge_from(&r2.snapshot());
        assert_eq!(merged.counter("a_total", &[]), Some(7));
        assert_eq!(merged.counter("b_total", &[("k", "x")]), Some(9));
        assert_eq!(merged.histogram("lat_ns", &[]).map(|h| h.count), Some(2));
        // Commutativity.
        let mut flipped = r2.snapshot();
        flipped.merge_from(&r1.snapshot());
        assert_eq!(merged, flipped);
    }

    #[test]
    fn prometheus_text_has_types_buckets_and_totals() {
        let r = Registry::new();
        r.counter("hits_total", &[("seg", "0")]).add(5);
        r.gauge("len", &[]).set(2);
        let h = r.histogram("lat_ns", &[]);
        h.record(10);
        h.record(100_000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hits_total counter"), "{text}");
        assert!(text.contains("hits_total{seg=\"0\"} 5"), "{text}");
        assert!(text.contains("# TYPE len gauge"), "{text}");
        assert!(text.contains("lat_ns_bucket"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_ns_count 2"), "{text}");
    }

    #[test]
    fn json_is_structured_and_null_safe() {
        let r = Registry::new();
        r.counter("c_total", &[]).add(1);
        r.histogram("empty_ns", &[]);
        let json = r.snapshot().to_json();
        assert!(
            json.contains("\"type\": \"counter\", \"value\": 1"),
            "{json}"
        );
        assert!(json.contains("\"p50\": null"), "{json}");
    }

    #[test]
    fn sum_spans_label_combinations() {
        let r = Registry::new();
        r.counter("d_total", &[("kernel", "Merge")]).add(2);
        r.counter("d_total", &[("kernel", "Galloping")]).add(3);
        assert_eq!(r.snapshot().sum("d_total"), 5);
    }

    #[test]
    fn label_cap_bounds_cardinality_with_stable_identity() {
        let cap = LabelCap::new(3);
        assert_eq!(cap.label(10), "10");
        assert_eq!(cap.label(20), "20");
        assert_eq!(cap.label(10), "10", "repeat lookups are stable");
        assert_eq!(cap.label(30), "30");
        assert_eq!(cap.label(40), LabelCap::OVERFLOW, "cap full");
        assert_eq!(cap.label(99), LabelCap::OVERFLOW);
        assert_eq!(cap.label(20), "20", "admitted ids never demote");
        assert_eq!(cap.admitted(), 3);
        assert_eq!(cap.overflowed(), 2);
        // A zero cap sends everything to the overflow label.
        let none = LabelCap::new(0);
        assert_eq!(none.label(1), LabelCap::OVERFLOW);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global().counter("obs_selftest_total", &[]);
        a.inc();
        let b = Registry::global().counter("obs_selftest_total", &[]);
        assert!(b.get() >= 1);
    }
}
