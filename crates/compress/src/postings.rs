//! Gap-compressed posting lists and the compressed **Merge** / **Lookup**
//! variants of Section 4.1.
//!
//! A sorted list `x₁ < x₂ < …` is stored as γ/δ-coded gaps
//! `x₁+1, x₂−x₁, …` (the `+1` keeps document ID 0 encodable). Merge decodes
//! both streams on the fly; Lookup keeps its B=32 bucket directory
//! uncompressed (it is the randomly-accessed part) and compresses each
//! bucket's residues, decoding only buckets both sets populate.

use crate::bitio::{BitBuf, BitReader, BitWriter};
use crate::elias::EliasCode;
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// A γ/δ gap-compressed posting list (the compressed `Merge` structure).
#[derive(Debug, Clone)]
pub struct CompressedPostings {
    code: EliasCode,
    n: usize,
    bits: BitBuf,
}

impl CompressedPostings {
    /// Compresses `set`.
    pub fn build(code: EliasCode, set: &SortedSet) -> Self {
        let mut w = BitWriter::new();
        let mut prev: Option<Elem> = None;
        for x in set.iter() {
            let gap = match prev {
                None => x as u64 + 1,
                Some(p) => (x - p) as u64,
            };
            code.encode(&mut w, gap);
            prev = Some(x);
        }
        Self {
            code,
            n: set.len(),
            bits: w.finish(),
        }
    }

    /// The code in use.
    pub fn code(&self) -> EliasCode {
        self.code
    }

    /// Streaming decoder positioned at the first element.
    pub fn decoder(&self) -> PostingsDecoder<'_> {
        PostingsDecoder {
            code: self.code,
            reader: self.bits.reader(),
            remaining: self.n,
            prev: 0,
            first: true,
        }
    }

    /// Decompresses the whole list (tests / recovery path).
    pub fn decode_all(&self) -> Vec<Elem> {
        self.decoder().collect()
    }
}

/// Sequential decoder over a [`CompressedPostings`].
#[derive(Debug, Clone)]
pub struct PostingsDecoder<'a> {
    code: EliasCode,
    reader: BitReader<'a>,
    remaining: usize,
    prev: Elem,
    first: bool,
}

impl Iterator for PostingsDecoder<'_> {
    type Item = Elem;

    #[inline]
    fn next(&mut self) -> Option<Elem> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let gap = self.code.decode(&mut self.reader);
        let x = if self.first {
            self.first = false;
            (gap - 1) as Elem
        } else {
            self.prev + gap as Elem
        };
        self.prev = x;
        Some(x)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PostingsDecoder<'_> {}

impl SetIndex for CompressedPostings {
    fn n(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        self.bits.size_in_bytes()
    }
}

impl PairIntersect for CompressedPostings {
    /// Decode-on-the-fly linear merge (`Merge_Gamma` / `Merge_Delta`).
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        let mut da = self.decoder();
        let mut db = other.decoder();
        let (Some(mut x), Some(mut y)) = (da.next(), db.next()) else {
            return;
        };
        loop {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => match da.next() {
                    Some(v) => x = v,
                    None => return,
                },
                std::cmp::Ordering::Greater => match db.next() {
                    Some(v) => y = v,
                    None => return,
                },
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    match (da.next(), db.next()) {
                        (Some(v), Some(u)) => {
                            x = v;
                            y = u;
                        }
                        _ => return,
                    }
                }
            }
        }
    }
}

impl KIntersect for CompressedPostings {
    /// k-way candidate scan over k decoders.
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => out.extend(a.decoder()),
            [a, b] => a.intersect_pair_into(b, out),
            _ => {
                let mut decs: Vec<PostingsDecoder<'_>> =
                    indexes.iter().map(|ix| ix.decoder()).collect();
                let mut heads: Vec<Elem> = Vec::with_capacity(decs.len());
                for d in &mut decs {
                    match d.next() {
                        Some(v) => heads.push(v),
                        None => return,
                    }
                }
                'candidates: loop {
                    let mut cand = heads[0];
                    for i in 1..decs.len() {
                        while heads[i] < cand {
                            match decs[i].next() {
                                Some(v) => heads[i] = v,
                                None => return,
                            }
                        }
                        if heads[i] != cand {
                            cand = heads[i];
                            while heads[0] < cand {
                                match decs[0].next() {
                                    Some(v) => heads[0] = v,
                                    None => return,
                                }
                            }
                            continue 'candidates;
                        }
                    }
                    out.push(cand);
                    for (d, h) in decs.iter_mut().zip(heads.iter_mut()) {
                        match d.next() {
                            Some(v) => *h = v,
                            None => return,
                        }
                    }
                }
            }
        }
    }
}

/// Compressed **Lookup**: a B=32 bucket directory over γ/δ-coded per-bucket
/// residues (`Lookup_Gamma` / `Lookup_Delta`).
///
/// The directory stores only a `u32` bit offset per bucket (the randomly
/// accessed part); each non-empty bucket's stream starts with its element
/// count in unary, so empty buckets cost zero stream bits and are detected
/// by two equal directory entries.
#[derive(Debug, Clone)]
pub struct CompressedLookup {
    code: EliasCode,
    n: usize,
    first_bucket: u32,
    /// Per-bucket bit offsets into `bits` (`nb + 1` entries).
    bitpos: Vec<u32>,
    bits: BitBuf,
}

/// log2 of the bucket width, matching the uncompressed Lookup baseline.
const BUCKET_LOG2: u32 = fsi_baselines::lookup::BUCKET_LOG2;

impl CompressedLookup {
    /// Compresses `set` bucket by bucket.
    pub fn build(code: EliasCode, set: &SortedSet) -> Self {
        let elems = set.as_slice();
        if elems.is_empty() {
            return Self {
                code,
                n: 0,
                first_bucket: 0,
                bitpos: vec![0],
                bits: BitWriter::new().finish(),
            };
        }
        let first_bucket = elems[0] >> BUCKET_LOG2;
        let last_bucket = elems[elems.len() - 1] >> BUCKET_LOG2;
        let nb = (last_bucket - first_bucket + 1) as usize;
        let mut bitpos = vec![0u32; nb + 1];
        let mut w = BitWriter::new();
        let mut i = 0usize;
        #[allow(clippy::needless_range_loop)] // bitpos[b] is written, not read
        for b in 0..nb {
            // audit:allow(hot_path_panic): a >4 Gbit posting stream is a capacity misuse worth failing loudly, not a data-dependent hot-path panic
            bitpos[b] = u32::try_from(w.len()).expect("bit stream exceeds 4 Gbit");
            let bucket = first_bucket + b as u32;
            let start = i;
            while i < elems.len() && elems[i] >> BUCKET_LOG2 == bucket {
                i += 1;
            }
            if start == i {
                continue; // empty bucket: zero bits
            }
            w.write_unary((i - start) as u64);
            let mut prev: Option<u32> = None;
            for &x in &elems[start..i] {
                let residue = x & ((1 << BUCKET_LOG2) - 1);
                let gap = match prev {
                    None => residue as u64 + 1,
                    Some(p) => (residue - p) as u64,
                };
                code.encode(&mut w, gap);
                prev = Some(residue);
            }
        }
        // audit:allow(hot_path_panic): same 4 Gbit capacity bound as the per-bucket offsets above
        bitpos[nb] = u32::try_from(w.len()).expect("bit stream exceeds 4 Gbit");
        Self {
            code,
            n: elems.len(),
            first_bucket,
            bitpos,
            bits: w.finish(),
        }
    }

    /// Decodes bucket `b`'s residues into `buf`; returns `false` if the
    /// bucket is absent/empty.
    fn decode_bucket(&self, b: u32, buf: &mut Vec<u32>) -> bool {
        buf.clear();
        let Some(rel) = b.checked_sub(self.first_bucket) else {
            return false;
        };
        let rel = rel as usize;
        if rel + 1 >= self.bitpos.len() || self.bitpos[rel] == self.bitpos[rel + 1] {
            return false;
        }
        let mut r = self.bits.reader();
        r.seek(self.bitpos[rel] as usize);
        let count = r.read_unary() as usize;
        let base = b << BUCKET_LOG2;
        let mut prev = 0u32;
        for i in 0..count {
            let gap = self.code.decode(&mut r) as u32;
            prev = if i == 0 { gap - 1 } else { prev + gap };
            buf.push(base | prev);
        }
        true
    }

    /// Iterates non-empty bucket ids.
    fn non_empty_buckets(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.bitpos.len().saturating_sub(1))
            .filter(|&b| self.bitpos[b + 1] > self.bitpos[b])
            .map(move |b| self.first_bucket + b as u32)
    }
}

impl SetIndex for CompressedLookup {
    fn n(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        self.bits.size_in_bytes() + self.bitpos.len() * 4 + 4
    }
}

impl PairIntersect for CompressedLookup {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        let (small, large) = if self.n <= other.n {
            (self, other)
        } else {
            (other, self)
        };
        let mut bs = Vec::with_capacity(1 << BUCKET_LOG2);
        let mut bl = Vec::with_capacity(1 << BUCKET_LOG2);
        for b in small.non_empty_buckets() {
            if !large.decode_bucket(b, &mut bl) {
                continue;
            }
            small.decode_bucket(b, &mut bs);
            fsi_baselines::merge::intersect2_into(&bs, &bl, out);
        }
    }
}

impl KIntersect for CompressedLookup {
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => {
                let mut buf = Vec::new();
                for b in a.non_empty_buckets() {
                    a.decode_bucket(b, &mut buf);
                    out.extend_from_slice(&buf);
                }
            }
            [a, b] => a.intersect_pair_into(b, out),
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n);
                // audit:allow(hot_path_panic): the match arms above handle k < 2, so `order` is non-empty
                let (small, rest) = order.split_first().expect("k >= 2");
                let mut bufs: Vec<Vec<u32>> = vec![Vec::new(); indexes.len()];
                'buckets: for b in small.non_empty_buckets() {
                    for (ix, buf) in rest.iter().zip(bufs[1..].iter_mut()) {
                        if !ix.decode_bucket(b, buf) {
                            continue 'buckets;
                        }
                    }
                    small.decode_bucket(b, &mut bufs[0]);
                    let slices: Vec<&[u32]> = bufs.iter().map(|v| v.as_slice()).collect();
                    fsi_baselines::merge::intersect_k_into(&slices, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(rng: &mut StdRng, n: usize, u: u32) -> SortedSet {
        (0..n).map(|_| rng.gen_range(0..u)).collect()
    }

    #[test]
    fn postings_round_trip() {
        let mut rng = StdRng::seed_from_u64(70);
        for code in [EliasCode::Gamma, EliasCode::Delta] {
            for _ in 0..15 {
                let n = rng.gen_range(0..2000);
                let set = random_set(&mut rng, n, 100_000);
                let c = CompressedPostings::build(code, &set);
                assert_eq!(c.decode_all(), set.as_slice());
                assert_eq!(c.n(), set.len());
            }
            // Boundary content.
            for set in [
                SortedSet::new(),
                SortedSet::from_unsorted(vec![0]),
                SortedSet::from_unsorted(vec![0, 1, 2]),
                SortedSet::from_unsorted(vec![u32::MAX]),
                SortedSet::from_unsorted(vec![0, u32::MAX]),
            ] {
                let c = CompressedPostings::build(code, &set);
                assert_eq!(c.decode_all(), set.as_slice());
            }
        }
    }

    #[test]
    fn compression_actually_compresses_dense_lists() {
        let set: SortedSet = (0..100_000u32).map(|x| x * 3).collect();
        for code in [EliasCode::Gamma, EliasCode::Delta] {
            let c = CompressedPostings::build(code, &set);
            assert!(
                c.size_in_bytes() < set.len() * 4 / 2,
                "{code:?}: {} bytes for {} elems",
                c.size_in_bytes(),
                set.len()
            );
        }
    }

    #[test]
    fn merge_compressed_matches_reference() {
        let mut rng = StdRng::seed_from_u64(71);
        for code in [EliasCode::Gamma, EliasCode::Delta] {
            for _ in 0..15 {
                let (na, nb) = (rng.gen_range(0..800), rng.gen_range(0..800));
                let a = random_set(&mut rng, na, 3000);
                let b = random_set(&mut rng, nb, 3000);
                let ca = CompressedPostings::build(code, &a);
                let cb = CompressedPostings::build(code, &b);
                assert_eq!(
                    ca.intersect_pair_sorted(&cb),
                    reference_intersection(&[a.as_slice(), b.as_slice()])
                );
            }
        }
    }

    #[test]
    fn merge_compressed_k_way() {
        let mut rng = StdRng::seed_from_u64(72);
        for k in 2..=5usize {
            let sets: Vec<SortedSet> = (0..k).map(|_| random_set(&mut rng, 600, 1500)).collect();
            let cs: Vec<CompressedPostings> = sets
                .iter()
                .map(|s| CompressedPostings::build(EliasCode::Delta, s))
                .collect();
            let refs: Vec<&CompressedPostings> = cs.iter().collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                CompressedPostings::intersect_k_sorted(&refs),
                reference_intersection(&slices)
            );
        }
    }

    #[test]
    fn lookup_compressed_round_trip_and_intersection() {
        let mut rng = StdRng::seed_from_u64(73);
        for code in [EliasCode::Gamma, EliasCode::Delta] {
            for _ in 0..15 {
                let (na, nb) = (rng.gen_range(0..1000), rng.gen_range(0..1000));
                let a = random_set(&mut rng, na, 20_000);
                let b = random_set(&mut rng, nb, 20_000);
                let ca = CompressedLookup::build(code, &a);
                let cb = CompressedLookup::build(code, &b);
                assert_eq!(
                    ca.intersect_pair_sorted(&cb),
                    reference_intersection(&[a.as_slice(), b.as_slice()]),
                    "{code:?}"
                );
            }
        }
    }

    #[test]
    fn lookup_compressed_k_way() {
        let mut rng = StdRng::seed_from_u64(74);
        for k in 2..=4usize {
            let sets: Vec<SortedSet> = (0..k).map(|_| random_set(&mut rng, 700, 4000)).collect();
            let cs: Vec<CompressedLookup> = sets
                .iter()
                .map(|s| CompressedLookup::build(EliasCode::Gamma, s))
                .collect();
            let refs: Vec<&CompressedLookup> = cs.iter().collect();
            let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                CompressedLookup::intersect_k_sorted(&refs),
                reference_intersection(&slices)
            );
        }
    }

    #[test]
    fn lookup_compressed_empty() {
        let e = CompressedLookup::build(EliasCode::Delta, &SortedSet::new());
        let a = CompressedLookup::build(EliasCode::Delta, &(0..50).collect());
        assert_eq!(e.intersect_pair_sorted(&a), Vec::<u32>::new());
        assert_eq!(e.n(), 0);
    }
}
