//! Elias γ- and δ-codes (Witten, Moffat & Bell, *Managing Gigabytes*,
//! p. 116 — the reference the paper cites in Section 4.1) for positive
//! integers.
//!
//! * γ(x): `⌊log₂ x⌋` zeros, then the `⌊log₂ x⌋ + 1` bits of `x` (the leading
//!   one doubles as the unary terminator).
//! * δ(x): γ(`⌊log₂ x⌋ + 1`), then the `⌊log₂ x⌋` low bits of `x`.

use crate::bitio::{BitReader, BitWriter};

/// Which Elias code a structure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EliasCode {
    /// Elias γ.
    Gamma,
    /// Elias δ.
    Delta,
}

impl EliasCode {
    /// Encodes `x ≥ 1`.
    #[inline]
    pub fn encode(self, w: &mut BitWriter, x: u64) {
        match self {
            EliasCode::Gamma => encode_gamma(w, x),
            EliasCode::Delta => encode_delta(w, x),
        }
    }

    /// Decodes one value.
    #[inline]
    pub fn decode(self, r: &mut BitReader<'_>) -> u64 {
        match self {
            EliasCode::Gamma => decode_gamma(r),
            EliasCode::Delta => decode_delta(r),
        }
    }

    /// Display suffix matching the paper's figure labels
    /// (`Merge_Delta`, `RanGroupScan_Gamma`, …).
    pub fn label(self) -> &'static str {
        match self {
            EliasCode::Gamma => "Gamma",
            EliasCode::Delta => "Delta",
        }
    }
}

/// Writes γ(x); panics in debug builds if `x == 0`.
pub fn encode_gamma(w: &mut BitWriter, x: u64) {
    debug_assert!(x >= 1, "gamma is defined for positive integers");
    let nbits = 64 - x.leading_zeros(); // ⌊log₂ x⌋ + 1
    w.write_bits(0, nbits - 1);
    w.write_bits(x, nbits);
}

/// Reads γ⁻¹.
pub fn decode_gamma(r: &mut BitReader<'_>) -> u64 {
    let n = r.read_unary() as u32; // zeros consumed, terminating 1 consumed
                                   // The terminating 1 is the value's leading bit.
    (1u64 << n) | r.read_bits(n)
}

/// Writes δ(x); panics in debug builds if `x == 0`.
pub fn encode_delta(w: &mut BitWriter, x: u64) {
    debug_assert!(x >= 1, "delta is defined for positive integers");
    let nbits = 64 - x.leading_zeros(); // ⌊log₂ x⌋ + 1
    encode_gamma(w, nbits as u64);
    w.write_bits(x, nbits - 1); // low bits; the leading one is implicit
}

/// Reads δ⁻¹.
pub fn decode_delta(r: &mut BitReader<'_>) -> u64 {
    let nbits = decode_gamma(r) as u32;
    (1u64 << (nbits - 1)) | r.read_bits(nbits - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn round_trip(code: EliasCode, values: &[u64]) {
        let mut w = BitWriter::new();
        for &v in values {
            code.encode(&mut w, v);
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for &v in values {
            assert_eq!(code.decode(&mut r), v, "{code:?} {v}");
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn gamma_known_codewords() {
        // γ(1) = "1", γ(2) = "010", γ(3) = "011", γ(4) = "00100".
        let mut w = BitWriter::new();
        encode_gamma(&mut w, 1);
        encode_gamma(&mut w, 2);
        encode_gamma(&mut w, 3);
        encode_gamma(&mut w, 4);
        let buf = w.finish();
        assert_eq!(buf.len(), 1 + 3 + 3 + 5);
        let mut r = buf.reader();
        #[allow(clippy::unusual_byte_groupings)] // grouped by codeword, not nibble
        let expect = 0b1_010_011_00100;
        assert_eq!(r.read_bits(12), expect);
    }

    #[test]
    fn delta_known_codewords() {
        // δ(1) = γ(1) = "1"; δ(8) = γ(4)+"000" = "00100 000".
        let mut w = BitWriter::new();
        encode_delta(&mut w, 1);
        encode_delta(&mut w, 8);
        let buf = w.finish();
        assert_eq!(buf.len(), 1 + 8);
        let mut r = buf.reader();
        #[allow(clippy::unusual_byte_groupings)] // grouped by codeword, not nibble
        let expect = 0b1_00100_000;
        assert_eq!(r.read_bits(9), expect);
    }

    #[test]
    fn boundary_values() {
        let vals = [
            1u64,
            2,
            3,
            4,
            7,
            8,
            (1 << 16) - 1,
            1 << 16,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX >> 1,
        ];
        round_trip(EliasCode::Gamma, &vals);
        round_trip(EliasCode::Delta, &vals);
    }

    #[test]
    fn random_round_trips() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let vals: Vec<u64> = (0..500)
                .map(|_| rng.gen_range(1..=u32::MAX as u64))
                .collect();
            round_trip(EliasCode::Gamma, &vals);
            round_trip(EliasCode::Delta, &vals);
        }
    }

    #[test]
    fn delta_is_shorter_for_large_values() {
        let mut wg = BitWriter::new();
        let mut wd = BitWriter::new();
        for x in [1_000_000u64, 5_000_000, 100_000_000] {
            encode_gamma(&mut wg, x);
            encode_delta(&mut wd, x);
        }
        assert!(wd.len() < wg.len());
    }
}
