//! # fsi-compress — compressed structures of Section 4.1 and Appendix B
//!
//! * [`bitio`] — MSB-first bit streams.
//! * [`elias`] — Elias γ/δ codes (Witten–Moffat–Bell, the paper's reference
//!   compression).
//! * [`postings`] — gap-compressed posting lists: the `Merge_Gamma/Delta`
//!   and `Lookup_Gamma/Delta` variants of Figure 8.
//! * [`lowbits`] — compressed RanGroupScan: `RanGroupScan_Gamma/Delta` and
//!   the paper's own `RanGroupScan_Lowbits` codec (Appendix B).
//! * [`block`] — skip-augmented block postings ([`BlockPostings`]): the
//!   compressed-domain execution representation the kernels intersect
//!   without full decode (SIMD bulk unpack lives in `fsi-kernels`; this
//!   crate stays `forbid(unsafe_code)`).

#![forbid(unsafe_code)]

pub mod bitio;
pub mod block;
pub mod elias;
pub mod lowbits;
pub mod postings;

pub use bitio::{BitBuf, BitReader, BitWriter};
pub use block::{BlockCodec, BlockCursor, BlockPostings, SkipEntry, BLOCK_LEN};
pub use elias::EliasCode;
pub use lowbits::{CompressedRgsIndex, GroupCoding};
pub use postings::{CompressedLookup, CompressedPostings, PostingsDecoder};
