//! Skip-augmented block postings — the compressed representation the
//! kernels intersect **without full decode**.
//!
//! [`CompressedPostings`](crate::CompressedPostings) proves the space story
//! of Section 4.1 but is a one-shot stream: intersecting it means decoding
//! every element. [`BlockPostings`] restructures the same gap coding for
//! compressed-domain execution, the design space "Trie-Compressed
//! Intersectable Sets" maps (see `PAPERS.md`):
//!
//! * elements are split into fixed-cardinality blocks of [`BLOCK_LEN`]
//!   docs;
//! * each block is fronted by a [`SkipEntry`] — `first_doc`, `last_doc`,
//!   payload bit offset, element count, packed width — kept in a flat
//!   structure-of-arrays skip table;
//! * the payload stores only the `count − 1` **gaps** of each block
//!   (the first element lives in the skip entry), under one of three
//!   [`BlockCodec`]s.
//!
//! A seek by doc id binary-searches the skip table (`last_doc` is
//! monotone), so a galloping or k-way probe touches — and decodes — only
//! the blocks the other operand actually reaches. The [`BlockCodec::Packed`]
//! payload decodes through `fsi_kernels::simd::unpack_deltas`, the
//! SIMD bulk unpack (AVX2 gather + in-register prefix sum, scalar twin
//! under `force-scalar`), into a 128-element scratch buffer that feeds the
//! existing `merge_into`/k-way kernels.
//!
//! See `docs/compress.md` for the on-heap layout and the planner's
//! decode-cost model over this structure.

use crate::bitio::{BitBuf, BitWriter};
use crate::elias::EliasCode;
use fsi_core::elem::Elem;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};
use fsi_kernels::multiway::{compressed_probe_into, SkipCursor};
use fsi_kernels::GALLOP_RATIO;

/// Elements per block: 128 docs keeps a whole decoded block in two cache
/// lines' worth of `u32`s and makes the skip table 1/128th of the list.
pub const BLOCK_LEN: usize = 128;

/// How one block's gaps are stored in the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockCodec {
    /// Elias γ over gaps (bit-serial decode).
    Gamma,
    /// Elias δ over gaps (bit-serial decode).
    Delta,
    /// Per-block fixed-width binary packing of `gap − 1` (frame-of-
    /// reference): the width is the block's widest gap, so dense runs cost
    /// 0 bits per element. Decodes through the SIMD bulk unpack.
    Packed,
}

impl BlockCodec {
    /// Every codec, in the order benchmarks report them.
    pub const ALL: [BlockCodec; 3] = [BlockCodec::Gamma, BlockCodec::Delta, BlockCodec::Packed];

    /// Display suffix matching the benchmark row labels
    /// (`CompressedGallop_Packed`, …).
    pub fn label(self) -> &'static str {
        match self {
            BlockCodec::Gamma => "Gamma",
            BlockCodec::Delta => "Delta",
            BlockCodec::Packed => "Packed",
        }
    }

    /// The Elias code behind this codec, if it is bit-serial.
    fn elias(self) -> Option<EliasCode> {
        match self {
            BlockCodec::Gamma => Some(EliasCode::Gamma),
            BlockCodec::Delta => Some(EliasCode::Delta),
            BlockCodec::Packed => None,
        }
    }
}

/// The per-block directory entry galloping seeks consult. `last_doc` is
/// monotone across the skip table, so "first block that can contain
/// `target`" is one `partition_point`; a block whose range excludes the
/// target is skipped without touching its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// Smallest doc id in the block (not stored in the payload).
    pub first_doc: Elem,
    /// Largest doc id in the block.
    pub last_doc: Elem,
    /// Payload bit offset of the block's first gap field.
    pub offset: u32,
    /// Elements in the block (`1..=BLOCK_LEN`).
    pub count: u16,
    /// Packed field width in bits ([`BlockCodec::Packed`] only; 0 for a
    /// fully dense run).
    pub width: u8,
}

/// LSB-first bit packer for the [`BlockCodec::Packed`] payload (the SIMD
/// unpack gathers little-endian words, so the packed stream is LSB-first
/// unlike [`BitWriter`]'s MSB-first Elias substrate).
#[derive(Debug, Default)]
struct PackedWriter {
    bytes: Vec<u8>,
    bitlen: usize,
}

impl PackedWriter {
    /// Appends the low `width` bits of `value`.
    fn push(&mut self, value: u32, width: u32) {
        if width == 0 {
            return;
        }
        let pos = self.bitlen;
        self.bitlen += width as usize;
        self.bytes.resize(self.bitlen.div_ceil(8), 0);
        let shifted = u64::from(value) << (pos % 8);
        let byte = pos / 8;
        let span = ((pos % 8) + width as usize).div_ceil(8);
        for j in 0..span {
            self.bytes[byte + j] |= (shifted >> (8 * j)) as u8;
        }
    }

    /// Finishes the stream, appending the 8 zero tail-padding bytes the
    /// whole-word decode loads require.
    fn finish(mut self) -> Vec<u8> {
        self.bytes.extend_from_slice(&[0u8; 8]);
        self.bytes
    }
}

/// Gap-compressed postings in fixed-cardinality blocks behind a skip
/// table — sorted, duplicate-free doc ids intersectable in the compressed
/// domain. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct BlockPostings {
    codec: BlockCodec,
    n: usize,
    skips: Vec<SkipEntry>,
    /// Elias payload (empty for [`BlockCodec::Packed`]).
    bits: BitBuf,
    /// Packed payload, LSB-first with 8 tail padding bytes (empty for the
    /// Elias codecs).
    bytes: Vec<u8>,
}

impl BlockPostings {
    /// Builds from a sorted, strictly increasing slice.
    pub fn from_slice(codec: BlockCodec, set: &[Elem]) -> Self {
        debug_assert!(
            set.windows(2).all(|w| w[0] < w[1]),
            "input must be sorted and duplicate-free"
        );
        let mut skips = Vec::with_capacity(set.len().div_ceil(BLOCK_LEN));
        let mut bitw = BitWriter::new();
        let mut packed = PackedWriter::default();
        for block in set.chunks(BLOCK_LEN) {
            let offset = match codec.elias() {
                Some(_) => bitw.len(),
                None => packed.bitlen,
            };
            // audit:allow(hot_path_panic): offsets past 4 Gbit (512 MB of payload per list) are out of scope, as in postings.rs
            let offset = u32::try_from(offset).expect("bit stream exceeds 4 Gbit");
            let first_doc = block[0];
            let last_doc = block[block.len() - 1];
            let width = match codec.elias() {
                Some(code) => {
                    for gap in block.windows(2).map(|w| u64::from(w[1] - w[0])) {
                        code.encode(&mut bitw, gap);
                    }
                    0u8
                }
                None => {
                    let width = block
                        .windows(2)
                        .map(|w| 32 - (w[1] - w[0] - 1).leading_zeros())
                        .max()
                        .unwrap_or(0);
                    for delta in block.windows(2).map(|w| w[1] - w[0] - 1) {
                        packed.push(delta, width);
                    }
                    width as u8
                }
            };
            skips.push(SkipEntry {
                first_doc,
                last_doc,
                offset,
                count: block.len() as u16,
                width,
            });
        }
        BlockPostings {
            codec,
            n: set.len(),
            skips,
            bits: bitw.finish(),
            bytes: match codec.elias() {
                Some(_) => Vec::new(),
                None => packed.finish(),
            },
        }
    }

    /// The codec this list was built under.
    pub fn codec(&self) -> BlockCodec {
        self.codec
    }

    /// Number of blocks (= skip-table entries).
    pub fn block_count(&self) -> usize {
        self.skips.len()
    }

    /// The skip table, one entry per block.
    pub fn skips(&self) -> &[SkipEntry] {
        &self.skips
    }

    /// What [`BlockPostings::from_slice`] would occupy for `set` under
    /// `codec`, in bytes, **without building anything** — the planner's
    /// bytes-resident statistic. Exact: equals
    /// [`SetIndex::size_in_bytes`] of the built structure.
    pub fn measure(codec: BlockCodec, set: &[Elem]) -> usize {
        let header = set.len().div_ceil(BLOCK_LEN) * std::mem::size_of::<SkipEntry>();
        let payload_bits: usize = set
            .chunks(BLOCK_LEN)
            .map(|block| match codec.elias() {
                Some(code) => block
                    .windows(2)
                    .map(|w| elias_len(code, u64::from(w[1] - w[0])))
                    .sum(),
                None => {
                    let width = block
                        .windows(2)
                        .map(|w| 32 - (w[1] - w[0] - 1).leading_zeros())
                        .max()
                        .unwrap_or(0);
                    (block.len() - 1) * width as usize
                }
            })
            .sum();
        header
            + match codec.elias() {
                // BitBuf stores whole u64 words.
                Some(_) => payload_bits.div_ceil(64) * 8,
                // Byte-granular plus the 8 tail padding bytes.
                None => payload_bits.div_ceil(8) + 8,
            }
    }

    /// Appends block `i`'s elements to `out`, ascending. The
    /// [`BlockCodec::Packed`] path is the SIMD bulk unpack; the Elias
    /// paths are the bit-serial gap walk.
    pub fn decode_block_into(&self, i: usize, out: &mut Vec<Elem>) {
        assert!(i < self.skips.len(), "block index out of range");
        let e = self.skips[i];
        match self.codec.elias() {
            Some(code) => {
                let mut r = self.bits.reader();
                r.seek(e.offset as usize);
                out.reserve(e.count as usize);
                let mut val = e.first_doc;
                out.push(val);
                for _ in 1..e.count {
                    val += code.decode(&mut r) as u32;
                    out.push(val);
                }
            }
            None => fsi_kernels::simd::unpack_deltas(
                &self.bytes,
                e.offset as usize,
                u32::from(e.width),
                e.first_doc,
                e.count as usize,
                out,
            ),
        }
    }

    /// Appends every element to `out`, ascending — the decode-then-
    /// intersect baseline's first step.
    pub fn decode_into(&self, out: &mut Vec<Elem>) {
        out.reserve(self.n);
        for i in 0..self.skips.len() {
            self.decode_block_into(i, out);
        }
    }

    /// All elements as a fresh vector (round-trip tests, baselines).
    pub fn decode_all(&self) -> Vec<Elem> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// A [`SkipCursor`] positioned at the first element: the handle the
    /// k-way [`compressed_probe_into`] drives. Seeks consult only the skip
    /// table until they land inside a block; a block is bulk-decoded at
    /// most once per visit into the cursor's reusable scratch buffer.
    pub fn cursor(&self) -> BlockCursor<'_> {
        BlockCursor {
            post: self,
            block: 0,
            idx: 0,
            buf: Vec::new(),
            decoded: false,
        }
    }
}

/// Code length of `x ≥ 1` under an Elias code, in bits.
fn elias_len(code: EliasCode, x: u64) -> usize {
    let nbits = (64 - x.leading_zeros()) as usize; // ⌊log₂ x⌋ + 1
    match code {
        EliasCode::Gamma => 2 * nbits - 1,
        EliasCode::Delta => {
            let lbits = 64 - (nbits as u64).leading_zeros() as usize;
            (2 * lbits - 1) + nbits - 1
        }
    }
}

impl SetIndex for BlockPostings {
    fn n(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        self.skips.len() * std::mem::size_of::<SkipEntry>()
            + self.bits.size_in_bytes()
            + self.bytes.len()
    }
}

impl PairIntersect for BlockPostings {
    /// Compressed-domain pair intersection, ascending. Mirrors
    /// `GallopingSet`'s adaptivity: skewed sizes run the skip-table probe
    /// (the small side drives, the large side decodes only the blocks
    /// probes land in); balanced sizes run a block-range merge that feeds
    /// each overlapping block pair — decoded into two reusable scratch
    /// buffers — to the vectorized `merge_into`.
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        let (small, large) = if self.n <= other.n {
            (self, other)
        } else {
            (other, self)
        };
        if small.n == 0 {
            return;
        }
        if large.n / small.n >= GALLOP_RATIO {
            let mut cursors = [small.cursor(), large.cursor()];
            compressed_probe_into(&mut cursors, out);
            return;
        }
        // Balanced: sweep the two skip tables, decode each overlapping
        // block pair, and merge. An element lives in exactly one block per
        // side, so each common element is emitted by exactly one pair, in
        // ascending order.
        let (sa, sb) = (&self.skips, &other.skips);
        let (mut ia, mut ib) = (0usize, 0usize);
        let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
        let (mut dec_a, mut dec_b) = (usize::MAX, usize::MAX);
        while ia < sa.len() && ib < sb.len() {
            let (ea, eb) = (sa[ia], sb[ib]);
            if ea.last_doc < eb.first_doc {
                ia += 1;
            } else if eb.last_doc < ea.first_doc {
                ib += 1;
            } else {
                if dec_a != ia {
                    buf_a.clear();
                    self.decode_block_into(ia, &mut buf_a);
                    dec_a = ia;
                }
                if dec_b != ib {
                    buf_b.clear();
                    other.decode_block_into(ib, &mut buf_b);
                    dec_b = ib;
                }
                fsi_kernels::simd::merge_into(&buf_a, &buf_b, out);
                // Advance the block that ends first; on a tie both ranges
                // are exhausted and the next comparison skips the other.
                if ea.last_doc <= eb.last_doc {
                    ia += 1;
                } else {
                    ib += 1;
                }
            }
        }
    }
}

impl KIntersect for BlockPostings {
    /// k-way compressed-domain intersection, ascending: the adaptive pair
    /// path for `k = 2`, the skip-cursor [`compressed_probe_into`] above
    /// that (the shortest list drives; the others decode only the blocks
    /// probes reach). Operands may use different codecs.
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => a.decode_into(out),
            [a, b] => a.intersect_pair_into(b, out),
            _ => {
                let mut cursors: Vec<BlockCursor> = indexes.iter().map(|p| p.cursor()).collect();
                compressed_probe_into(&mut cursors, out);
            }
        }
    }
}

/// A streaming, seekable cursor over [`BlockPostings`] (see
/// [`BlockPostings::cursor`]). Invariant: whenever `idx > 0`, `buf` holds
/// the current block's decoded elements.
#[derive(Debug, Clone)]
pub struct BlockCursor<'a> {
    post: &'a BlockPostings,
    /// Current block index (`== skips.len()` once exhausted).
    block: usize,
    /// Position within the current block.
    idx: usize,
    /// Reusable scratch: the decoded current block (when `decoded`).
    buf: Vec<Elem>,
    decoded: bool,
}

impl BlockCursor<'_> {
    fn ensure_decoded(&mut self) {
        if !self.decoded {
            self.buf.clear();
            self.post.decode_block_into(self.block, &mut self.buf);
            self.decoded = true;
        }
    }
}

impl SkipCursor for BlockCursor<'_> {
    fn len(&self) -> usize {
        self.post.n
    }

    fn current(&self) -> Option<Elem> {
        let e = self.post.skips.get(self.block)?;
        if self.idx == 0 {
            // The block's first element lives in the skip entry: readable
            // without decoding the payload.
            Some(e.first_doc)
        } else {
            self.buf.get(self.idx).copied()
        }
    }

    fn advance(&mut self) {
        let Some(&e) = self.post.skips.get(self.block) else {
            return;
        };
        if self.idx + 1 < e.count as usize {
            // Stepping inside the block: materialize it for current().
            self.ensure_decoded();
            debug_assert_eq!(self.buf.len(), e.count as usize);
            self.idx += 1;
        } else {
            self.block += 1;
            self.idx = 0;
            self.decoded = false;
        }
    }

    fn seek(&mut self, target: Elem) -> Option<Elem> {
        match self.current() {
            None => return None,
            Some(v) if v >= target => return Some(v),
            Some(_) => {}
        }
        if self.post.skips[self.block].last_doc < target {
            // Whole-block skip: binary-search the (monotone) last_doc
            // column for the first block that can contain the target. The
            // skipped blocks' payloads are never decoded.
            let rel = self.post.skips[self.block + 1..].partition_point(|e| e.last_doc < target);
            self.block += 1 + rel;
            self.idx = 0;
            self.decoded = false;
            let e = self.post.skips.get(self.block)?;
            if target <= e.first_doc {
                return Some(e.first_doc);
            }
        }
        // The target falls inside the current block's range: decode it
        // (once) and binary-search the remainder.
        self.ensure_decoded();
        let fwd = self.buf[self.idx..].partition_point(|&x| x < target);
        self.idx += fwd;
        self.buf.get(self.idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(rng: &mut StdRng, n: usize, universe: u32) -> Vec<Elem> {
        let mut v: Vec<Elem> = (0..n * 2)
            .map(|_| rng.gen_range(0..universe.max(1)))
            .collect();
        v.sort_unstable();
        v.dedup();
        v.truncate(n);
        v
    }

    #[test]
    fn round_trips_hostile_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(11);
        for codec in BlockCodec::ALL {
            for n in [0usize, 1, 2, 127, 128, 129, 255, 256, 257, 1000] {
                let set = random_set(&mut rng, n, 1 << 20);
                let bp = BlockPostings::from_slice(codec, &set);
                assert_eq!(bp.n(), set.len());
                assert_eq!(bp.decode_all(), set, "{codec:?} n={n}");
                assert_eq!(bp.block_count(), set.len().div_ceil(BLOCK_LEN));
            }
        }
    }

    #[test]
    fn round_trips_extreme_gaps() {
        // Max-doc-id deltas: the widest possible gaps, in every codec.
        let hostile: Vec<Vec<Elem>> = vec![
            vec![u32::MAX],
            vec![0, u32::MAX],
            vec![0, 1, u32::MAX - 1, u32::MAX],
            vec![u32::MAX - 1, u32::MAX],
            (0..129u32).map(|i| i.saturating_mul(33_000_000)).collect(),
        ];
        for codec in BlockCodec::ALL {
            for set in &hostile {
                let bp = BlockPostings::from_slice(codec, set);
                assert_eq!(&bp.decode_all(), set, "{codec:?} {set:?}");
            }
        }
    }

    #[test]
    fn dense_runs_pack_to_zero_width() {
        let set: Vec<Elem> = (1000..1000 + 4 * BLOCK_LEN as u32).collect();
        let bp = BlockPostings::from_slice(BlockCodec::Packed, &set);
        assert!(bp.skips().iter().all(|e| e.width == 0));
        // Payload is only the 8 padding bytes: the whole list lives in the
        // skip table.
        assert_eq!(
            bp.size_in_bytes(),
            bp.block_count() * std::mem::size_of::<SkipEntry>() + 8
        );
        assert_eq!(bp.decode_all(), set);
    }

    #[test]
    fn measure_is_exact() {
        let mut rng = StdRng::seed_from_u64(12);
        for codec in BlockCodec::ALL {
            for n in [0usize, 1, 127, 128, 129, 1000, 5000] {
                for universe in [1u32 << 12, 1 << 20, u32::MAX] {
                    let set = random_set(&mut rng, n, universe);
                    let bp = BlockPostings::from_slice(codec, &set);
                    assert_eq!(
                        BlockPostings::measure(codec, &set),
                        bp.size_in_bytes(),
                        "{codec:?} n={n} u={universe}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_entries_describe_their_blocks() {
        let mut rng = StdRng::seed_from_u64(13);
        let set = random_set(&mut rng, 1000, 1 << 24);
        let bp = BlockPostings::from_slice(BlockCodec::Packed, &set);
        let mut total = 0usize;
        for (i, e) in bp.skips().iter().enumerate() {
            let block = &set[i * BLOCK_LEN..(i * BLOCK_LEN + e.count as usize).min(set.len())];
            assert_eq!(e.first_doc, block[0]);
            assert_eq!(e.last_doc, *block.last().unwrap());
            assert_eq!(e.count as usize, block.len());
            total += e.count as usize;
        }
        assert_eq!(total, set.len());
        // last_doc is monotone: the seek's partition_point relies on it.
        assert!(bp
            .skips()
            .windows(2)
            .all(|w| w[0].last_doc < w[1].first_doc));
    }

    #[test]
    fn cursor_walks_and_seeks() {
        let set: Vec<Elem> = (0..500u32).map(|i| i * 7).collect();
        let bp = BlockPostings::from_slice(BlockCodec::Packed, &set);
        let mut c = bp.cursor();
        assert_eq!(c.len(), 500);
        assert_eq!(c.current(), Some(0));
        c.advance();
        assert_eq!(c.current(), Some(7));
        assert_eq!(c.seek(7), Some(7), "seek to current is a no-op");
        assert_eq!(c.seek(8), Some(14));
        // Cross-block seek: element 7*450 lives in block 3.
        assert_eq!(c.seek(7 * 450 - 3), Some(7 * 450));
        assert_eq!(c.seek(7 * 499 + 1), None, "past the end exhausts");
        assert_eq!(c.current(), None);
    }

    #[test]
    fn cursor_drain_matches_decode_all_every_codec() {
        let mut rng = StdRng::seed_from_u64(14);
        for codec in BlockCodec::ALL {
            let set = random_set(&mut rng, 700, 1 << 22);
            let bp = BlockPostings::from_slice(codec, &set);
            let mut walked = Vec::new();
            let mut c = bp.cursor();
            while let Some(v) = c.current() {
                walked.push(v);
                c.advance();
            }
            assert_eq!(walked, set, "{codec:?}");
        }
    }

    #[test]
    fn pair_intersection_matches_reference_both_regimes() {
        let mut rng = StdRng::seed_from_u64(15);
        for codec in BlockCodec::ALL {
            // Balanced (block-merge path) and skewed (probe path).
            for (na, nb) in [(2000usize, 2500usize), (60, 4000)] {
                let a = random_set(&mut rng, na, 1 << 16);
                let b = random_set(&mut rng, nb, 1 << 16);
                let expect = fsi_core::elem::reference_intersection(&[&a, &b]);
                let pa = BlockPostings::from_slice(codec, &a);
                let pb = BlockPostings::from_slice(codec, &b);
                let mut out = Vec::new();
                pa.intersect_pair_into(&pb, &mut out);
                assert_eq!(out, expect, "{codec:?} {na}x{nb}");
                out.clear();
                pb.intersect_pair_into(&pa, &mut out);
                assert_eq!(out, expect, "{codec:?} {nb}x{na} (commuted)");
            }
        }
    }

    #[test]
    fn k_way_intersection_matches_reference_and_mixes_codecs() {
        let mut rng = StdRng::seed_from_u64(16);
        for k in 1..=5usize {
            let sets: Vec<Vec<Elem>> = (0..k).map(|_| random_set(&mut rng, 900, 1 << 14)).collect();
            let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
            let expect = fsi_core::elem::reference_intersection(&slices);
            // Rotate codecs across operands: cursors are codec-agnostic.
            let built: Vec<BlockPostings> = sets
                .iter()
                .enumerate()
                .map(|(i, s)| BlockPostings::from_slice(BlockCodec::ALL[i % 3], s))
                .collect();
            let refs: Vec<&BlockPostings> = built.iter().collect();
            let mut out = Vec::new();
            BlockPostings::intersect_k_into(&refs, &mut out);
            assert_eq!(out, expect, "k={k}");
        }
    }

    #[test]
    fn packed_beats_flat_on_dense_data() {
        // ~50%-dense data: gaps of 1–2 bits vs 32-bit flat words.
        let mut rng = StdRng::seed_from_u64(17);
        let set = random_set(&mut rng, 40_000, 100_000);
        let flat_bytes = set.len() * 4;
        for codec in BlockCodec::ALL {
            let bp = BlockPostings::from_slice(codec, &set);
            assert!(
                bp.size_in_bytes() * 4 < flat_bytes,
                "{codec:?}: {} vs flat {}",
                bp.size_in_bytes(),
                flat_bytes
            );
        }
    }
}
