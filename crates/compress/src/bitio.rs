//! MSB-first bit streams over `u64` words — the substrate for the γ/δ codes
//! of Witten, Moffat & Bell \[23\] and the Lowbits codec of Appendix B.
//!
//! Bit `i` of the stream is bit `63 − (i mod 64)` of word `i / 64`, so a
//! value written with [`BitWriter::write_bits`] reads back with
//! [`BitReader::read_bits`] most-significant-bit first.

/// An append-only bit stream.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    words: Vec<u64>,
    /// Total number of bits written.
    len: usize,
}

impl BitWriter {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the low `nbits` bits of `value`, MSB first. `nbits ≤ 64`.
    pub fn write_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        if nbits == 0 {
            return;
        }
        let value = if nbits == 64 {
            value
        } else {
            value & ((1u64 << nbits) - 1)
        };
        let off = (self.len % 64) as u32;
        if off == 0 {
            self.words.push(0);
        }
        // audit:allow(hot_path_panic): when off == 0 a word was just pushed, so the vec is never empty here
        let word = self.words.last_mut().expect("pushed above");
        let room = 64 - off;
        if nbits <= room {
            *word |= value << (room - nbits);
        } else {
            let hi = nbits - room;
            *word |= value >> hi;
            self.words.push(value << (64 - hi));
        }
        self.len += nbits as usize;
    }

    /// Appends `n` in unary: `n` zeros followed by a one (the paper's
    /// Appendix B example: `011` encodes 2).
    pub fn write_unary(&mut self, mut n: u64) {
        while n >= 63 {
            self.write_bits(0, 63);
            n -= 63;
        }
        self.write_bits(1, n as u32 + 1);
    }

    /// Finishes the stream.
    pub fn finish(self) -> BitBuf {
        BitBuf {
            words: self.words.into_boxed_slice(),
            len: self.len,
        }
    }
}

/// A finished, immutable bit stream.
#[derive(Debug, Clone, Default)]
pub struct BitBuf {
    words: Box<[u64]>,
    len: usize,
}

impl BitBuf {
    /// Number of bits in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap footprint in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// A reader positioned at bit 0.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader {
            words: &self.words,
            pos: 0,
            len: self.len,
        }
    }
}

/// A cursor over a [`BitBuf`].
#[derive(Debug, Clone, Copy)]
pub struct BitReader<'a> {
    words: &'a [u64],
    pos: usize,
    len: usize,
}

impl<'a> BitReader<'a> {
    /// Current bit position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Repositions the cursor.
    pub fn seek(&mut self, pos: usize) {
        debug_assert!(pos <= self.len);
        self.pos = pos;
    }

    /// Advances without reading.
    pub fn skip(&mut self, nbits: usize) {
        self.pos += nbits;
        debug_assert!(self.pos <= self.len);
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads `nbits ≤ 64` bits, MSB first.
    pub fn read_bits(&mut self, nbits: u32) -> u64 {
        debug_assert!(nbits <= 64);
        debug_assert!(self.pos + nbits as usize <= self.len, "bit stream overrun");
        if nbits == 0 {
            return 0;
        }
        let idx = self.pos / 64;
        let off = (self.pos % 64) as u32;
        self.pos += nbits as usize;
        let room = 64 - off;
        if nbits <= room {
            let shifted = self.words[idx] << off;
            shifted >> (64 - nbits)
        } else {
            let hi_bits = room;
            let lo_bits = nbits - room;
            let hi = (self.words[idx] << off) >> (64 - hi_bits);
            let lo = self.words[idx + 1] >> (64 - lo_bits);
            (hi << lo_bits) | lo
        }
    }

    /// Reads a unary-coded value: counts zeros up to the terminating one.
    pub fn read_unary(&mut self) -> u64 {
        let mut n = 0u64;
        loop {
            debug_assert!(self.pos < self.len, "unary ran off the stream");
            let idx = self.pos / 64;
            let off = (self.pos % 64) as u32;
            let window = self.words[idx] << off;
            let avail = 64 - off;
            let z = window.leading_zeros().min(avail);
            if z < avail {
                // Found the terminating one within this word.
                self.pos += z as usize + 1;
                return n + z as u64;
            }
            n += avail as u64;
            self.pos += avail as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bits_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xffff_ffff_ffff_ffff, 64);
        w.write_bits(0, 1);
        w.write_bits(0x1234, 16);
        let buf = w.finish();
        let mut r = buf.reader();
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert_eq!(r.read_bits(1), 0);
        assert_eq!(r.read_bits(16), 0x1234);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn random_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let items: Vec<(u64, u32)> = (0..200)
                .map(|_| {
                    let nbits = rng.gen_range(1..=64);
                    let v = rng.gen::<u64>()
                        & if nbits == 64 {
                            u64::MAX
                        } else {
                            (1 << nbits) - 1
                        };
                    (v, nbits)
                })
                .collect();
            let mut w = BitWriter::new();
            for &(v, n) in &items {
                w.write_bits(v, n);
            }
            let buf = w.finish();
            let mut r = buf.reader();
            for &(v, n) in &items {
                assert_eq!(r.read_bits(n), v);
            }
        }
    }

    #[test]
    fn unary_round_trip() {
        let values = [0u64, 1, 2, 5, 62, 63, 64, 200, 1000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_unary(v);
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for &v in &values {
            assert_eq!(r.read_unary(), v);
        }
    }

    #[test]
    fn unary_example_from_paper() {
        // The paper's Appendix B example encodes 2 in three bits ("011");
        // our (equivalent) convention is zeros-then-terminator: "001".
        let mut w = BitWriter::new();
        w.write_unary(2);
        let buf = w.finish();
        assert_eq!(buf.len(), 3);
        let mut r = buf.reader();
        assert_eq!(r.read_bits(3), 0b001);
    }

    #[test]
    fn seek_and_skip() {
        let mut w = BitWriter::new();
        for i in 0..32u64 {
            w.write_bits(i, 8);
        }
        let buf = w.finish();
        let mut r = buf.reader();
        r.skip(8 * 5);
        assert_eq!(r.read_bits(8), 5);
        r.seek(8 * 31);
        assert_eq!(r.read_bits(8), 31);
        r.seek(0);
        assert_eq!(r.read_bits(8), 0);
    }

    #[test]
    fn mixed_unary_and_bits() {
        let mut w = BitWriter::new();
        w.write_unary(7);
        w.write_bits(0xabcd, 16);
        w.write_unary(0);
        w.write_bits(3, 2);
        let buf = w.finish();
        let mut r = buf.reader();
        assert_eq!(r.read_unary(), 7);
        assert_eq!(r.read_bits(16), 0xabcd);
        assert_eq!(r.read_unary(), 0);
        assert_eq!(r.read_bits(2), 3);
    }
}
