//! Compressed **RanGroupScan** (Section 4.1 / Appendix B): the γ/δ variants
//! and the paper's own *Lowbits* codec.
//!
//! Appendix B's scheme, reproduced exactly:
//!
//! 1. group length `|L^z|` in **unary** (`011` = 2) instead of a length word;
//! 2. the `m` hash images stored (raw, 64 bits each) **only if** `|L^z| > 0`;
//! 3. elements stored as `lowbits_t(x) = g(x) mod 2^{w−t}` — the top `t` bits
//!    of `g(x)` are exactly the group id `z`, so nothing is lost; decoding is
//!    a shift-or (`g(x) = z‖lowbits`), *much* cheaper than γ/δ decoding.
//!    Since `g` is a bijection, intersecting the `g(·)` images is equivalent
//!    to intersecting the original sets, and results are recovered through
//!    `g⁻¹`.
//!
//! The γ/δ variants replace step 3 with Elias-coded in-group gaps; they must
//! be decoded even for groups the word-filter skips (the stream cannot be
//! advanced otherwise), whereas Lowbits skips a filtered group in O(1) by bit
//! arithmetic — this asymmetry is precisely why `RanGroupScan_Lowbits`
//! dominates Figure 8.

use crate::bitio::{BitBuf, BitReader, BitWriter};
use crate::elias::EliasCode;
use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::{
    partition_level_for_group_size, top_bits_of, HashContext, Permutation, UniversalHash,
    SQRT_WORD_BITS,
};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// Element coding inside a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupCoding {
    /// Appendix B: fixed-width low bits of `g(x)`.
    Lowbits,
    /// Elias-coded in-group gaps (γ or δ).
    Elias(EliasCode),
}

impl GroupCoding {
    /// Display suffix matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            GroupCoding::Lowbits => "Lowbits",
            GroupCoding::Elias(EliasCode::Gamma) => "Gamma",
            GroupCoding::Elias(EliasCode::Delta) => "Delta",
        }
    }
}

/// A compressed RanGroupScan structure.
#[derive(Debug, Clone)]
pub struct CompressedRgsIndex {
    t: u32,
    m: usize,
    n: usize,
    g: Permutation,
    hs: Vec<UniversalHash>,
    coding: GroupCoding,
    bits: BitBuf,
}

#[inline]
fn group_base(z: u64, t: u32) -> u32 {
    if t == 0 {
        0
    } else {
        (z as u32) << (32 - t)
    }
}

impl CompressedRgsIndex {
    /// Compresses `set` with `m = 1` hash image (the paper's choice for the
    /// compression experiments, "since we are interested in small structures
    /// here").
    pub fn build(ctx: &HashContext, set: &SortedSet, coding: GroupCoding) -> Self {
        Self::with_m(ctx, set, coding, 1)
    }

    /// Compresses `set` with an explicit number of hash images.
    pub fn with_m(ctx: &HashContext, set: &SortedSet, coding: GroupCoding, m: usize) -> Self {
        let m = m.max(1);
        assert!(m <= ctx.family().len());
        let g = *ctx.g();
        let hs: Vec<UniversalHash> = ctx.prefix(m).to_vec();
        let t = partition_level_for_group_size(set.len(), SQRT_WORD_BITS);
        let mut gvalues: Vec<u32> = set.iter().map(|x| g.apply(x)).collect();
        gvalues.sort_unstable();

        let mut w = BitWriter::new();
        let elem_width = 32 - t;
        let mut i = 0usize;
        for z in 0..(1u64 << t) {
            let start = i;
            while i < gvalues.len() && top_bits_of(gvalues[i], t) as u64 == z {
                i += 1;
            }
            let group = &gvalues[start..i];
            w.write_unary(group.len() as u64);
            if group.is_empty() {
                continue;
            }
            for h in &hs {
                let mut word = 0u64;
                for &gv in group {
                    word |= h.bit(gv);
                }
                w.write_bits(word, 64);
            }
            match coding {
                GroupCoding::Lowbits => {
                    for &gv in group {
                        w.write_bits((gv & low_mask(elem_width)) as u64, elem_width);
                    }
                }
                GroupCoding::Elias(code) => {
                    let base = group_base(z, t);
                    let mut prev: Option<u32> = None;
                    for &gv in group {
                        let off = gv - base;
                        let gap = match prev {
                            None => off as u64 + 1,
                            Some(p) => (off - p) as u64,
                        };
                        code.encode(&mut w, gap);
                        prev = Some(off);
                    }
                }
            }
        }
        Self {
            t,
            m,
            n: set.len(),
            g,
            hs,
            coding,
            bits: w.finish(),
        }
    }

    /// The partition level `t`.
    pub fn level(&self) -> u32 {
        self.t
    }

    /// Number of hash images per group.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The element coding in use.
    pub fn coding(&self) -> GroupCoding {
        self.coding
    }

    /// Decompresses the entire set (ascending element order is *not*
    /// guaranteed — this is the `g`-order walk; used by tests / recovery).
    pub fn decode_all(&self) -> Vec<Elem> {
        let mut cursor = GroupCursor::new(self);
        let mut out = Vec::with_capacity(self.n);
        for _ in 0..(1u64 << self.t) {
            cursor.advance();
            for &gv in cursor.elems() {
                out.push(self.g.invert(gv));
            }
        }
        out
    }

    fn assert_compatible(indexes: &[&Self]) {
        if let Some((first, rest)) = indexes.split_first() {
            for ix in rest {
                assert_eq!(
                    first.g, ix.g,
                    "indexes built under different permutations g"
                );
                let m = first.m.min(ix.m);
                assert!(
                    first.hs[..m] == ix.hs[..m],
                    "indexes built under different hash families"
                );
            }
        }
    }
}

#[inline]
fn low_mask(width: u32) -> u32 {
    if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

impl SetIndex for CompressedRgsIndex {
    fn n(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        self.bits.size_in_bytes() + self.hs.len() * 16 + 16
    }
}

/// Sequential cursor over a compressed group stream.
struct GroupCursor<'a> {
    idx: &'a CompressedRgsIndex,
    reader: BitReader<'a>,
    /// Current group id (valid after the first `advance`).
    z: u64,
    len: usize,
    words: Vec<u64>,
    /// Lowbits only: bit position of the element section.
    elems_pos: usize,
    elems: Vec<u32>,
    decoded: bool,
}

impl<'a> GroupCursor<'a> {
    fn new(idx: &'a CompressedRgsIndex) -> Self {
        Self {
            idx,
            reader: idx.bits.reader(),
            z: u64::MAX, // pre-first
            len: 0,
            words: vec![0; idx.m],
            elems_pos: 0,
            elems: Vec::with_capacity(4 * SQRT_WORD_BITS),
            decoded: false,
        }
    }

    /// Moves to the next group, reading its header and (γ/δ only) elements.
    fn advance(&mut self) {
        self.z = self.z.wrapping_add(1);
        self.len = self.reader.read_unary() as usize;
        self.decoded = false;
        self.elems.clear();
        if self.len == 0 {
            self.words.fill(0);
            self.decoded = true;
            return;
        }
        for w in self.words.iter_mut() {
            *w = self.reader.read_bits(64);
        }
        match self.idx.coding {
            GroupCoding::Lowbits => {
                // Skippable in O(1): fixed-width elements.
                self.elems_pos = self.reader.pos();
                self.reader.skip(self.len * (32 - self.idx.t) as usize);
            }
            GroupCoding::Elias(code) => {
                // γ/δ gaps must be decoded to find the group's end.
                let base = group_base(self.z, self.idx.t);
                let mut prev = 0u32;
                for i in 0..self.len {
                    let gap = code.decode(&mut self.reader) as u32;
                    prev = if i == 0 { gap - 1 } else { prev + gap };
                    self.elems.push(base | prev);
                }
                self.decoded = true;
            }
        }
    }

    /// Decodes the group's elements if not yet decoded (Lowbits lazy path).
    fn ensure_decoded(&mut self) {
        if !self.decoded {
            let width = 32 - self.idx.t;
            let base = group_base(self.z, self.idx.t);
            let resume = self.reader.pos();
            self.reader.seek(self.elems_pos);
            for _ in 0..self.len {
                let low = self.reader.read_bits(width) as u32;
                self.elems.push(base | low);
            }
            self.reader.seek(resume);
            self.decoded = true;
        }
    }

    /// The group's `g`-values (decodes lazily for Lowbits).
    fn elems(&mut self) -> &[u32] {
        self.ensure_decoded();
        &self.elems
    }

    /// The group's `g`-values, assuming [`Self::ensure_decoded`] ran.
    fn elems_ref(&self) -> &[u32] {
        debug_assert!(self.decoded);
        &self.elems
    }
}

impl PairIntersect for CompressedRgsIndex {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        Self::intersect_k_into(&[self, other], out);
    }
}

impl KIntersect for CompressedRgsIndex {
    /// Algorithm 5 over k compressed streams: every stream is scanned once,
    /// sequentially; a stream at level `t_i` advances every `2^{t_k−t_i}`
    /// steps of the finest stream.
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => out.extend(a.decode_all()),
            _ => {
                Self::assert_compatible(indexes);
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.t);
                let levels: Vec<u32> = order.iter().map(|ix| ix.t).collect();
                // audit:allow(hot_path_panic): the match arms above handle k < 2, so `order` has at least two entries
                let tk = *levels.last().expect("k >= 2");
                // audit:allow(hot_path_panic): same k >= 2 invariant as above
                let m = order.iter().map(|ix| ix.m).min().expect("k >= 2");
                let g = order[0].g;
                let k = order.len();
                let mut cursors: Vec<GroupCursor<'_>> =
                    order.iter().map(|ix| GroupCursor::new(ix)).collect();
                let mut merge_cursors = vec![0usize; k];
                for zk in 0..(1u64 << tk) {
                    // Advance every stream whose group id changes at this zk.
                    for (c, &ti) in cursors.iter_mut().zip(&levels) {
                        let step = tk - ti;
                        if zk & ((1u64 << step) - 1) == 0 {
                            c.advance();
                        }
                    }
                    // Word filter: skip if any h_j AND is zero.
                    let mut pass = true;
                    'filter: for j in 0..m {
                        let mut and = u64::MAX;
                        for c in &cursors {
                            and &= c.words[j];
                            if and == 0 {
                                pass = false;
                                break 'filter;
                            }
                        }
                    }
                    if !pass {
                        continue;
                    }
                    // Linear merge of the k groups.
                    for c in cursors.iter_mut() {
                        c.ensure_decoded();
                    }
                    merge_k_cursors(&cursors, &mut merge_cursors, |gv| out.push(g.invert(gv)));
                }
            }
        }
    }
}

/// Linear k-way merge of the (decoded) cursor groups.
fn merge_k_cursors(
    group_cursors: &[GroupCursor<'_>],
    cursors: &mut [usize],
    mut emit: impl FnMut(u32),
) {
    let k = group_cursors.len();
    cursors[..k].fill(0);
    let first = group_cursors[0].elems_ref();
    'candidates: loop {
        if cursors[0] >= first.len() {
            return;
        }
        let cand = first[cursors[0]];
        for (gc, c) in group_cursors[1..].iter().zip(cursors[1..].iter_mut()) {
            let s = gc.elems_ref();
            while *c < s.len() && s[*c] < cand {
                *c += 1;
            }
            if *c >= s.len() {
                return;
            }
            if s[*c] != cand {
                cursors[0] += 1;
                continue 'candidates;
            }
        }
        emit(cand);
        cursors[0] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CODINGS: [GroupCoding; 3] = [
        GroupCoding::Lowbits,
        GroupCoding::Elias(EliasCode::Gamma),
        GroupCoding::Elias(EliasCode::Delta),
    ];

    fn ctx() -> HashContext {
        HashContext::new(2011)
    }

    #[test]
    fn decode_recovers_the_set() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(80);
        for coding in CODINGS {
            for _ in 0..10 {
                let n = rng.gen_range(0..3000);
                let set: SortedSet = (0..n).map(|_| rng.gen::<u32>()).collect();
                let c = CompressedRgsIndex::build(&ctx, &set, coding);
                let mut got = c.decode_all();
                got.sort_unstable();
                assert_eq!(got, set.as_slice(), "{coding:?}");
            }
        }
    }

    #[test]
    fn boundary_sets_round_trip() {
        let ctx = ctx();
        for coding in CODINGS {
            for set in [
                SortedSet::new(),
                SortedSet::from_unsorted(vec![0]),
                SortedSet::from_unsorted(vec![u32::MAX]),
                SortedSet::from_unsorted(vec![0, u32::MAX]),
                (0..9u32).collect(), // t becomes 1: two groups
            ] {
                let c = CompressedRgsIndex::build(&ctx, &set, coding);
                let mut got = c.decode_all();
                got.sort_unstable();
                assert_eq!(got, set.as_slice(), "{coding:?}");
            }
        }
    }

    #[test]
    fn pairs_match_reference() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(81);
        for coding in CODINGS {
            for _ in 0..15 {
                let n1 = rng.gen_range(0..900);
                let n2 = rng.gen_range(0..900);
                let u = rng.gen_range(1..4000u32);
                let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
                let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
                let ca = CompressedRgsIndex::build(&ctx, &a, coding);
                let cb = CompressedRgsIndex::build(&ctx, &b, coding);
                assert_eq!(
                    ca.intersect_pair_sorted(&cb),
                    reference_intersection(&[a.as_slice(), b.as_slice()]),
                    "{coding:?}"
                );
            }
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(82);
        for coding in CODINGS {
            for k in 2..=4usize {
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| {
                        let n = rng.gen_range(0..800);
                        (0..n).map(|_| rng.gen_range(0..2000u32)).collect()
                    })
                    .collect();
                let cs: Vec<CompressedRgsIndex> = sets
                    .iter()
                    .map(|s| CompressedRgsIndex::with_m(&ctx, s, coding, 2))
                    .collect();
                let refs: Vec<&CompressedRgsIndex> = cs.iter().collect();
                let slices: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
                assert_eq!(
                    CompressedRgsIndex::intersect_k_sorted(&refs),
                    reference_intersection(&slices),
                    "{coding:?} k={k}"
                );
            }
        }
    }

    #[test]
    fn lowbits_is_smaller_than_raw_structure() {
        // Appendix B's bound: ≈ n + n/√w bits for lengths + m·w·n/√w bits of
        // hash words + (w−t)·n bits of elements; for n = 65536 and m = 1 that
        // is well below the 4-byte-per-element raw array plus words.
        let ctx = ctx();
        let set: SortedSet = (0..65_536u32).map(|x| x.wrapping_mul(40_503)).collect();
        let c = CompressedRgsIndex::build(&ctx, &set, GroupCoding::Lowbits);
        let raw = fsi_core::RanGroupScanIndex::with_m(&ctx, &set, 1);
        assert!(
            c.size_in_bytes() < raw.size_in_bytes(),
            "lowbits {} vs raw {}",
            c.size_in_bytes(),
            raw.size_in_bytes()
        );
    }

    #[test]
    fn mismatched_context_rejected() {
        let a = CompressedRgsIndex::build(
            &HashContext::new(1),
            &(0..50).collect(),
            GroupCoding::Lowbits,
        );
        let b = CompressedRgsIndex::build(
            &HashContext::new(2),
            &(0..50).collect(),
            GroupCoding::Lowbits,
        );
        assert!(std::panic::catch_unwind(|| a.intersect_pair_sorted(&b)).is_err());
    }
}
