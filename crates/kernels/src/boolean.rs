//! Boolean-composition kernels: k-way **union** and multi-subtrahend
//! **difference** over sorted slices.
//!
//! The intersection kernels answer flat conjunctions; a boolean expression
//! engine (`fsi-query`) additionally needs `OR` (set union) and `AND NOT`
//! (set difference against a bounded base). Bille–Pagh–Pagh ("Fast
//! evaluation of union-intersection expressions") make the case that
//! expression-level evaluation is its own algorithmic problem; these are
//! the slice-level primitives that evaluation bottoms out in:
//!
//! * [`merge_union_into`] — two-way linear merge union, the `k = 2` fast
//!   path (no heap traffic).
//! * [`heap_union_into`] — k-way union via a binary min-heap over the list
//!   heads, the union sibling of
//!   [`heap_merge_into`](crate::multiway::heap_merge_into):
//!   `O(Σ nᵢ · log k)`, emits each value once however many lists carry it.
//! * [`gallop_diff_into`] — `base ∖ (S₁ ∪ … ∪ Sₘ)` with one galloping
//!   cursor per subtrahend, the difference sibling of
//!   [`gallop_probe_ordered_into`](crate::multiway::gallop_probe_ordered_into):
//!   a candidate found in *any* subtrahend is dropped immediately, and a
//!   subtrahend whose cursor exhausts is never probed again. Unlike the
//!   intersection probe, an exhausted subtrahend does **not** end the
//!   query — the remaining base elements simply cannot be excluded by it.
//!
//! The dense-regime union counterpart is the chunked-bitmap `OR`
//! ([`BitmapSet::union_k_into`](crate::BitmapSet::union_k_into)), which
//! rides the same SIMD word primitives as the `AND` sweep.
//!
//! All inputs are sorted and duplicate-free; all outputs are appended to
//! `out` in ascending order and duplicate-free.

use fsi_core::elem::Elem;
use fsi_core::search::gallop;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Appends `a ∪ b` (both sorted, duplicate-free) to `out`, ascending.
pub fn merge_union_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                out.push(x);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(y);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Appends `⋃ sets` to `out`, ascending and duplicate-free: a binary
/// min-heap over the k list heads pops the global minimum, emits it once,
/// and refills from every list that carried it.
pub fn heap_union_into(sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        [a, b] => merge_union_into(a, b, out),
        _ => {
            // Dedup only against values emitted by *this* call: `out` may
            // legitimately hold earlier (smaller) results the caller is
            // concatenating onto.
            let start = out.len();
            let mut cursors = vec![0usize; sets.len()];
            // Min-heap of (head value, list index).
            let mut heap: BinaryHeap<Reverse<(Elem, usize)>> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_empty())
                .map(|(i, s)| Reverse((s[0], i)))
                .collect();
            while let Some(Reverse((v, i))) = heap.pop() {
                if out.len() == start || out[out.len() - 1] != v {
                    out.push(v);
                }
                cursors[i] += 1;
                if cursors[i] < sets[i].len() {
                    heap.push(Reverse((sets[i][cursors[i]], i)));
                }
            }
        }
    }
}

/// Appends `base ∖ (subtract₁ ∪ … ∪ subtractₘ)` to `out`, ascending: every
/// candidate of `base` gallops through the subtrahends **in the given
/// order** (callers — the expression planner — put the most-excluding list
/// first so doomed candidates die on their cheapest probe). A subtrahend
/// whose cursor exhausts is dropped from further probing; when all are
/// exhausted the rest of `base` is copied through.
pub fn gallop_diff_into(base: &[Elem], subtract: &[&[Elem]], out: &mut Vec<Elem>) {
    let mut lists: Vec<&[Elem]> = subtract.iter().copied().filter(|s| !s.is_empty()).collect();
    if lists.is_empty() {
        out.extend_from_slice(base);
        return;
    }
    let mut cursors = vec![0usize; lists.len()];
    'candidates: for (bi, &x) in base.iter().enumerate() {
        let mut li = 0usize;
        while li < lists.len() {
            let list = lists[li];
            let c = gallop(list, cursors[li], x);
            if c >= list.len() {
                // This subtrahend can never exclude a later (larger)
                // candidate: retire it. `swap_remove` puts a fresh list at
                // `li`, so don't advance.
                lists.swap_remove(li);
                cursors.swap_remove(li);
                if lists.is_empty() {
                    out.extend_from_slice(&base[bi..]);
                    return;
                }
                continue;
            }
            cursors[li] = c;
            if list[c] == x {
                cursors[li] = c + 1;
                continue 'candidates; // excluded — no later subtrahend matters
            }
            li += 1;
        }
        out.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::SortedSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn random_set(rng: &mut StdRng, max_n: usize, universe: u32) -> SortedSet {
        let n = rng.gen_range(0..max_n);
        (0..n).map(|_| rng.gen_range(0..universe)).collect()
    }

    #[test]
    fn union_matches_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..20 {
            for k in 0..=6usize {
                let universe = rng.gen_range(1..40_000u32);
                let sets: Vec<SortedSet> = (0..k)
                    .map(|_| random_set(&mut rng, 1200, universe))
                    .collect();
                let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
                let expect: Vec<Elem> = slices
                    .iter()
                    .flat_map(|s| s.iter().copied())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let mut out = Vec::new();
                heap_union_into(&slices, &mut out);
                assert_eq!(out, expect, "trial {trial} k={k}");
            }
        }
    }

    #[test]
    fn pairwise_union_matches_heap() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = random_set(&mut rng, 800, 10_000);
        let b = random_set(&mut rng, 800, 10_000);
        let mut two_way = Vec::new();
        merge_union_into(a.as_slice(), b.as_slice(), &mut two_way);
        // Force the heap path with a duplicated operand: same answer.
        let mut heap = Vec::new();
        heap_union_into(&[a.as_slice(), b.as_slice(), a.as_slice()], &mut heap);
        assert_eq!(two_way, heap);
    }

    #[test]
    fn difference_matches_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..20 {
            for m in 0..=4usize {
                let universe = rng.gen_range(1..20_000u32);
                let base = random_set(&mut rng, 1500, universe);
                let subs: Vec<SortedSet> = (0..m)
                    .map(|_| random_set(&mut rng, 1000, universe))
                    .collect();
                let sub_refs: Vec<&[Elem]> = subs.iter().map(|s| s.as_slice()).collect();
                let excluded: BTreeSet<Elem> =
                    sub_refs.iter().flat_map(|s| s.iter().copied()).collect();
                let expect: Vec<Elem> = base.iter().filter(|x| !excluded.contains(x)).collect();
                let mut out = Vec::new();
                gallop_diff_into(base.as_slice(), &sub_refs, &mut out);
                assert_eq!(out, expect, "trial {trial} m={m}");
            }
        }
    }

    #[test]
    fn difference_copies_tail_after_subtrahends_exhaust() {
        let base: SortedSet = (0..1000u32).collect();
        let low: SortedSet = (0..10u32).map(|x| x * 2).collect();
        let mut out = Vec::new();
        gallop_diff_into(base.as_slice(), &[low.as_slice()], &mut out);
        let expect: Vec<Elem> = (0..1000u32).filter(|x| *x >= 19 || x % 2 == 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn degenerate_inputs() {
        let a: SortedSet = (0..50u32).collect();
        let mut out = Vec::new();
        heap_union_into(&[], &mut out);
        assert!(out.is_empty());
        heap_union_into(&[a.as_slice()], &mut out);
        assert_eq!(out, a.as_slice());
        out.clear();
        heap_union_into(&[a.as_slice(), &[], a.as_slice()], &mut out);
        assert_eq!(out, a.as_slice());
        out.clear();
        gallop_diff_into(a.as_slice(), &[], &mut out);
        assert_eq!(out, a.as_slice());
        out.clear();
        gallop_diff_into(a.as_slice(), &[&[], &[]], &mut out);
        assert_eq!(out, a.as_slice());
        out.clear();
        gallop_diff_into(&[], &[a.as_slice()], &mut out);
        assert!(out.is_empty());
        out.clear();
        gallop_diff_into(a.as_slice(), &[a.as_slice()], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn boundary_values_survive() {
        let a = SortedSet::from_unsorted(vec![0, 65_536, u32::MAX - 1, u32::MAX]);
        let b = SortedSet::from_unsorted(vec![0, 1, u32::MAX]);
        let mut union = Vec::new();
        heap_union_into(&[a.as_slice(), b.as_slice(), a.as_slice()], &mut union);
        assert_eq!(union, vec![0, 1, 65_536, u32::MAX - 1, u32::MAX]);
        let mut diff = Vec::new();
        gallop_diff_into(a.as_slice(), &[b.as_slice()], &mut diff);
        assert_eq!(diff, vec![65_536, u32::MAX - 1]);
    }
}
