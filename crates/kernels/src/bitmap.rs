//! Chunked-bitmap sets: Roaring-style dense containers intersected by
//! 64-bit-word `AND`.
//!
//! The universe `Σ = u32` is split into 2¹⁶-value chunks; a set stores, for
//! each chunk it touches, a 1024-word bitmap of the chunk's members.
//! Intersecting two sets walks the (short, sorted) chunk-id lists, `AND`s
//! the 1024 words of every chunk present in both, and extracts survivors
//! with the trailing-zeros trick of the paper's footnote 1 — one `AND` per
//! 64 universe slots, the word-parallel regime the paper packs groups for,
//! here applied to the raw document space. The win is proportional to
//! density: dense chunks amortize the fixed `O(1024)` word sweep over many
//! members.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};
use fsi_core::word::BitIter;

/// Log2 of the chunk span: each chunk covers 2¹⁶ consecutive values.
const CHUNK_BITS: u32 = 16;
/// 64-bit words per chunk bitmap — public so cost models (the `fsi-index`
/// planner) can price a chunk sweep in the same unit the kernel executes.
pub const WORDS_PER_CHUNK: usize = 1 << (CHUNK_BITS - 6);

/// A set as a sorted list of dense chunk bitmaps.
#[derive(Debug, Clone)]
pub struct BitmapSet {
    n: usize,
    /// Sorted ids (`value >> 16`) of the chunks this set touches.
    ids: Vec<u32>,
    /// Chunk bitmaps, chunk-major: chunk `i` owns
    /// `words[i * WORDS_PER_CHUNK ..][..WORDS_PER_CHUNK]`.
    words: Vec<u64>,
}

impl BitmapSet {
    /// Builds the chunked bitmap of `set` in one ascending pass.
    pub fn build(set: &SortedSet) -> Self {
        Self::from_sorted_slice(set.as_slice())
    }

    /// Builds from a sorted, duplicate-free slice.
    pub fn from_sorted_slice(elems: &[Elem]) -> Self {
        let mut ids: Vec<u32> = Vec::new();
        let mut words: Vec<u64> = Vec::new();
        for &x in elems {
            let id = x >> CHUNK_BITS;
            if ids.last() != Some(&id) {
                ids.push(id);
                words.resize(words.len() + WORDS_PER_CHUNK, 0);
            }
            let low = (x & ((1 << CHUNK_BITS) - 1)) as usize;
            let base = words.len() - WORDS_PER_CHUNK;
            words[base + (low >> 6)] |= 1u64 << (low & 63);
        }
        Self {
            n: elems.len(),
            ids,
            words,
        }
    }

    /// Number of chunks the set touches.
    pub fn num_chunks(&self) -> usize {
        self.ids.len()
    }

    /// Number of distinct chunks a sorted slice touches — exactly what
    /// [`BitmapSet::num_chunks`] would report after
    /// [`BitmapSet::from_sorted_slice`], without building any bitmap.
    /// Cost models (the `fsi-index` planner) price the chunk sweep with
    /// this.
    pub fn count_chunks(elems: &[Elem]) -> usize {
        let mut count = 0usize;
        let mut last = None;
        for &x in elems {
            let id = x >> CHUNK_BITS;
            if last != Some(id) {
                count += 1;
                last = Some(id);
            }
        }
        count
    }

    /// Appends chunk `ci`'s members (ascending) to `out`.
    fn extract_chunk(&self, ci: usize, out: &mut Vec<Elem>) {
        // audit:allow(hot_path_index): callers iterate ci over 0..ids.len(); ids and words are parallel per-chunk arrays
        let id = self.ids[ci];
        let chunk = &self.words[ci * WORDS_PER_CHUNK..][..WORDS_PER_CHUNK];
        extract_words(id, chunk, out);
    }

    /// k-way `OR`: walks all chunk-id lists in lockstep ascending order;
    /// each chunk id present anywhere is `OR`ed across every set carrying
    /// it (via the SIMD word primitive [`crate::simd::or_in_place_at`]) and
    /// extracted once. A chunk only one set touches skips the accumulator
    /// and extracts straight from that set's words. Output is ascending and
    /// duplicate-free — the dense-regime union counterpart of
    /// [`BitmapSet::intersect_k_into`].
    pub fn union_k_into(sets: &[&Self], out: &mut Vec<Elem>) {
        match sets {
            [] => {}
            [a] => {
                for ci in 0..a.ids.len() {
                    a.extract_chunk(ci, out);
                }
            }
            _ => {
                // One dispatch read for the whole sweep, not one per OR.
                let level = crate::simd::SimdLevel::active();
                let mut acc = [0u64; WORDS_PER_CHUNK];
                let mut cursors = vec![0usize; sets.len()];
                let next_id = |cursors: &[usize]| {
                    sets.iter()
                        .zip(cursors)
                        .filter_map(|(s, &c)| s.ids.get(c).copied())
                        .min()
                };
                while let Some(id) = next_id(&cursors) {
                    let carriers: Vec<usize> = sets
                        .iter()
                        .zip(&cursors)
                        .enumerate()
                        .filter(|(_, (s, &c))| s.ids.get(c) == Some(&id))
                        .map(|(si, _)| si)
                        .collect();
                    if let [only] = carriers.as_slice() {
                        sets[*only].extract_chunk(cursors[*only], out);
                    } else {
                        acc.fill(0);
                        for &si in &carriers {
                            let c = cursors[si];
                            crate::simd::or_in_place_at(
                                level,
                                &mut acc,
                                &sets[si].words[c * WORDS_PER_CHUNK..][..WORDS_PER_CHUNK],
                            );
                        }
                        extract_words(id, &acc, out);
                    }
                    for si in carriers {
                        cursors[si] += 1;
                    }
                }
            }
        }
    }
}

/// Appends the members encoded by `chunk` (belonging to chunk `id`) to
/// `out`, ascending.
fn extract_words(id: u32, chunk: &[u64], out: &mut Vec<Elem>) {
    let hi = id << CHUNK_BITS;
    for (w, &word) in chunk.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let base = hi | ((w as u32) << 6);
        for bit in BitIter::new(word) {
            out.push(base | bit);
        }
    }
}

impl SetIndex for BitmapSet {
    fn n(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        self.ids.len() * 4 + self.words.len() * 8
    }
}

impl PairIntersect for BitmapSet {
    /// Word-parallel `AND` over chunks present in both sets; output is
    /// ascending.
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        // One dispatch read for the whole sweep, not one per chunk.
        let level = crate::simd::SimdLevel::active();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let a = &self.words[i * WORDS_PER_CHUNK..][..WORDS_PER_CHUNK];
                    let b = &other.words[j * WORDS_PER_CHUNK..][..WORDS_PER_CHUNK];
                    let hi = self.ids[i] << CHUNK_BITS;
                    // Wide AND at the dispatched SIMD level: 2/4 words per
                    // instruction, PTEST-skipped all-zero groups, scalar
                    // trailing-zeros extraction of survivors.
                    crate::simd::and_extract_at(level, hi, a, b, out);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

impl KIntersect for BitmapSet {
    /// k-way `AND`: drives on the set with the fewest chunks, locating each
    /// of its chunks in every other set by binary search, then `AND`s all
    /// `k` words before extraction. Output is ascending.
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => {
                for ci in 0..a.ids.len() {
                    a.extract_chunk(ci, out);
                }
            }
            _ => {
                let driver = indexes
                    .iter()
                    .min_by_key(|ix| ix.ids.len())
                    // audit:allow(hot_path_panic): the k >= 2 dispatch precondition guarantees a minimum exists
                    .expect("k >= 2");
                // One dispatch read for the whole sweep, not one per AND.
                let level = crate::simd::SimdLevel::active();
                let mut anded = [0u64; WORDS_PER_CHUNK];
                'chunks: for (ci, &id) in driver.ids.iter().enumerate() {
                    anded.copy_from_slice(&driver.words[ci * WORDS_PER_CHUNK..][..WORDS_PER_CHUNK]);
                    for other in indexes {
                        if std::ptr::eq(*other, *driver) {
                            continue;
                        }
                        let Ok(cj) = other.ids.binary_search(&id) else {
                            continue 'chunks;
                        };
                        let b = &other.words[cj * WORDS_PER_CHUNK..][..WORDS_PER_CHUNK];
                        if crate::simd::and_in_place_at(level, &mut anded, b) {
                            continue 'chunks;
                        }
                    }
                    extract_words(id, &anded, out);
                }
            }
        }
    }
}

/// The slice-level bitmap kernel: builds the chunked bitmaps on the fly
/// (cost `O(n)`, the same order as reading the input) and intersects them
/// word-parallel. The prepared form ([`BitmapSet`]) is what `fsi-index`
/// strategies store; this form is what runtime kernel selection uses on raw
/// slices.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitmapKernel;

impl crate::kernel::Kernel for BitmapKernel {
    fn name(&self) -> &'static str {
        "Bitmap"
    }

    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        BitmapSet::from_sorted_slice(a).intersect_pair_into(&BitmapSet::from_sorted_slice(b), out);
    }

    fn intersect_k(&self, sets: &[&[Elem]], out: &mut Vec<Elem>) {
        let built: Vec<BitmapSet> = sets
            .iter()
            .map(|s| BitmapSet::from_sorted_slice(s))
            .collect();
        let refs: Vec<&BitmapSet> = built.iter().collect();
        BitmapSet::intersect_k_into(&refs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_pair(a: &BitmapSet, b: &BitmapSet) -> Vec<Elem> {
        let mut out = Vec::new();
        a.intersect_pair_into(b, &mut out);
        out
    }

    #[test]
    fn pair_matches_reference_across_chunk_boundaries() {
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..20 {
            let universe = rng.gen_range(1..400_000u32);
            let n1 = rng.gen_range(0..3000);
            let n2 = rng.gen_range(0..3000);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..universe)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..universe)).collect();
            let ia = BitmapSet::build(&a);
            let ib = BitmapSet::build(&b);
            assert_eq!(
                sorted_pair(&ia, &ib),
                reference_intersection(&[a.as_slice(), b.as_slice()]),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn output_is_already_ascending() {
        // Interpreted execution (Miri) needs a smaller universe.
        const UNIVERSE: u32 = if cfg!(miri) { 10_000 } else { 100_000 };
        let a: SortedSet = (0..UNIVERSE).step_by(3).collect();
        let b: SortedSet = (0..UNIVERSE).step_by(5).collect();
        let out = sorted_pair(&BitmapSet::build(&a), &BitmapSet::build(&b));
        assert!(out.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(out, reference_intersection(&[a.as_slice(), b.as_slice()]));
    }

    #[test]
    fn k_way_matches_folded_pairs() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in 2..=4usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|_| (0..1500).map(|_| rng.gen_range(0..120_000u32)).collect())
                .collect();
            let built: Vec<BitmapSet> = sets.iter().map(BitmapSet::build).collect();
            let refs: Vec<&BitmapSet> = built.iter().collect();
            let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                BitmapSet::intersect_k_sorted(&refs),
                reference_intersection(&slices),
                "k={k}"
            );
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        let a = SortedSet::from_unsorted(vec![0, 65_535, 65_536, u32::MAX - 1, u32::MAX]);
        let b = SortedSet::from_unsorted(vec![0, 65_536, u32::MAX]);
        let ia = BitmapSet::build(&a);
        let ib = BitmapSet::build(&b);
        assert_eq!(sorted_pair(&ia, &ib), vec![0, 65_536, u32::MAX]);
        assert_eq!(ia.num_chunks(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        let e = BitmapSet::build(&SortedSet::new());
        let s = BitmapSet::build(&SortedSet::from_unsorted(vec![42]));
        assert_eq!(sorted_pair(&e, &s), Vec::<Elem>::new());
        assert_eq!(sorted_pair(&s, &s), vec![42]);
        assert_eq!(e.n(), 0);
        assert_eq!(e.size_in_bytes(), 0);
        assert!(s.size_in_bytes() > 0);
    }

    #[test]
    fn count_chunks_matches_built_bitmap() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let n = rng.gen_range(0..2000);
            let u = rng.gen_range(1..3_000_000u32);
            let s: SortedSet = (0..n).map(|_| rng.gen_range(0..u)).collect();
            assert_eq!(
                BitmapSet::count_chunks(s.as_slice()),
                BitmapSet::build(&s).num_chunks()
            );
        }
        assert_eq!(BitmapSet::count_chunks(&[]), 0);
    }

    #[test]
    fn k_way_union_matches_reference() {
        let mut rng = StdRng::seed_from_u64(17);
        for k in 1..=5usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|_| (0..1200).map(|_| rng.gen_range(0..150_000u32)).collect())
                .collect();
            let built: Vec<BitmapSet> = sets.iter().map(BitmapSet::build).collect();
            let refs: Vec<&BitmapSet> = built.iter().collect();
            let expect: Vec<Elem> = sets
                .iter()
                .flat_map(|s| s.iter())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let mut out = Vec::new();
            BitmapSet::union_k_into(&refs, &mut out);
            assert_eq!(out, expect, "k={k}");
        }
        let mut out = Vec::new();
        BitmapSet::union_k_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn union_covers_disjoint_and_shared_chunks() {
        // a touches chunks {0, 1}, b touches {1, 65537-chunk}: exercises the
        // single-carrier fast path and the OR-accumulator path in one call.
        let a = SortedSet::from_unsorted(vec![3, 65_535, 65_536, 70_000]);
        let b = SortedSet::from_unsorted(vec![65_536, 70_001, u32::MAX]);
        let ia = BitmapSet::build(&a);
        let ib = BitmapSet::build(&b);
        let mut out = Vec::new();
        BitmapSet::union_k_into(&[&ia, &ib], &mut out);
        assert_eq!(out, vec![3, 65_535, 65_536, 70_000, 70_001, u32::MAX]);
    }

    #[test]
    fn single_set_k_extracts_everything() {
        let a: SortedSet = (0..10_000u32).step_by(7).collect();
        let ia = BitmapSet::build(&a);
        assert_eq!(BitmapSet::intersect_k_sorted(&[&ia]), a.as_slice());
    }
}
