//! True k-way intersection kernels: the smallest set drives probes into
//! all the others, with **no materialized intermediate results**.
//!
//! The paper's headline algorithms (IntGroup, RanGroup, the small×large
//! adaptive probes of §3.4) are defined over intersecting *k* sets at once,
//! yet a pairwise fold — `((L₁ ∩ L₂) ∩ L₃) ∩ …` — materializes every
//! intermediate, re-scanning survivors once per remaining list. The kernels
//! here evaluate the whole operand list in one pass each:
//!
//! * [`GallopProbe`] — sort the lists by length, then drive each candidate
//!   of the smallest list through all the others with per-list galloping
//!   cursors (`O(n_min · Σᵢ log(nᵢ/n_min))`, Hwang–Lin across all `k` at
//!   once). A candidate that misses any list is dropped immediately — no
//!   later list ever sees it — and an exhausted cursor ends the whole
//!   query early.
//! * [`BitmapAnd`] — a k-way chunked-bitmap `AND`: for every chunk of the
//!   operand with the fewest chunks, locate the aligned chunk in the other
//!   operands and `AND` all `k` bitmaps word-by-word before any extraction.
//!   One 64-bit `AND` covers 64 universe slots per operand; a chunk that
//!   zeroes out is abandoned mid-`AND`.
//! * [`HeapMerge`] — a binary min-heap over the `k` list heads: pop the
//!   minimum, count how many lists carry it, emit it only when all `k` do.
//!   `O(Σ nᵢ · log k)`, no random access — the robust fallback when sizes
//!   are balanced and nothing is dense enough for the bitmap sweep.
//!
//! [`MultiwayAuto`] picks among the three per call from the operand sizes
//! and the universe span, mirroring [`KernelChoice`](crate::KernelChoice)'s
//! dispatch shape at the k-way level. The `fsi-index` planner applies a
//! finer *cost model* over prepared lists (adding a hash-probe tier and the
//! paper's RanGroupScan); these kernels are the slice-level machinery both
//! dispatchers bottom out in.

use crate::bitmap::BitmapSet;
use crate::gallop::GALLOP_RATIO;
use crate::kernel::BITMAP_MIN_DENSITY;
use fsi_core::elem::Elem;
use fsi_core::search::gallop;
use fsi_core::traits::KIntersect;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A k-way slice-level intersection kernel.
///
/// Implementations accept any number of sorted, duplicate-free slices and
/// append the **ascending** intersection of all of them to `out`. Zero
/// operands yield nothing; one operand is copied through.
pub trait MultiwayKernel: std::fmt::Debug + Send + Sync {
    /// The label benchmarks and tests report.
    fn name(&self) -> &'static str;

    /// Appends `⋂ sets` to `out`, ascending.
    fn intersect(&self, sets: &[&[Elem]], out: &mut Vec<Elem>);
}

/// Drives every candidate of the smallest list through all the other lists
/// with per-list galloping cursors, appending survivors (ascending) to
/// `out`. No intermediate result is ever materialized.
pub fn gallop_probe_into(sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        _ => {
            let mut order: Vec<&[Elem]> = sets.to_vec();
            // Probing the next-smallest list first maximizes the chance a
            // doomed candidate dies on its first (cheapest) probe.
            order.sort_by_key(|s| s.len());
            // audit:allow(hot_path_panic): k >= 2 was checked at dispatch, so split_first always succeeds
            let (driver, rest) = order.split_first().expect("k >= 2");
            gallop_probe_ordered_into(driver, rest, out);
        }
    }
}

/// The order-honouring core of [`gallop_probe_into`]: probes `driver`'s
/// candidates through `rest` **in the given order** (callers — the
/// `fsi-index` planner — choose the evaluation order; this function never
/// re-sorts). Appends survivors to `out`, ascending.
pub fn gallop_probe_ordered_into(driver: &[Elem], rest: &[&[Elem]], out: &mut Vec<Elem>) {
    if rest.is_empty() {
        out.extend_from_slice(driver);
        return;
    }
    let mut cursors = vec![0usize; rest.len()];
    'candidates: for &x in driver {
        for (ci, list) in rest.iter().enumerate() {
            let c = gallop(list, cursors[ci], x);
            if c >= list.len() {
                // Every later candidate is larger still: done.
                return;
            }
            if list[c] != x {
                cursors[ci] = c;
                continue 'candidates;
            }
            cursors[ci] = c + 1;
        }
        out.push(x);
    }
}

/// Heap-based k-way merge: pops the minimum head across all lists and emits
/// it only when every list carries it. Appends ascending output to `out`.
pub fn heap_merge_into(sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        _ => {
            let k = sets.len();
            if sets.iter().any(|s| s.is_empty()) {
                return;
            }
            let mut cursors = vec![0usize; k];
            // Min-heap of (head value, list index).
            let mut heap: BinaryHeap<Reverse<(Elem, usize)>> = sets
                .iter()
                .enumerate()
                .map(|(i, s)| Reverse((s[0], i)))
                .collect();
            let mut popped: Vec<usize> = Vec::with_capacity(k);
            loop {
                // audit:allow(hot_path_panic): the heap is re-pushed back to k entries every round before pop
                let Reverse((v, first)) = heap.pop().expect("heap holds k entries");
                popped.clear();
                popped.push(first);
                while let Some(&Reverse((head, i))) = heap.peek() {
                    if head != v {
                        break;
                    }
                    heap.pop();
                    popped.push(i);
                }
                if popped.len() == k {
                    out.push(v);
                }
                for &i in &popped {
                    cursors[i] += 1;
                    if cursors[i] >= sets[i].len() {
                        // One list exhausted: nothing further can be in all k.
                        return;
                    }
                    heap.push(Reverse((sets[i][cursors[i]], i)));
                }
            }
        }
    }
}

/// The k-way gallop-probe kernel (see [`gallop_probe_into`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GallopProbe;

impl MultiwayKernel for GallopProbe {
    fn name(&self) -> &'static str {
        "GallopProbe"
    }

    fn intersect(&self, sets: &[&[Elem]], out: &mut Vec<Elem>) {
        gallop_probe_into(sets, out);
    }
}

/// The heap-based k-way merge kernel (see [`heap_merge_into`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapMerge;

impl MultiwayKernel for HeapMerge {
    fn name(&self) -> &'static str {
        "HeapMerge"
    }

    fn intersect(&self, sets: &[&[Elem]], out: &mut Vec<Elem>) {
        heap_merge_into(sets, out);
    }
}

/// The k-way chunked-bitmap `AND` kernel: builds the chunk bitmaps on the
/// fly (`O(Σ nᵢ)`, the same order as reading the input) and intersects all
/// `k` chunk-by-chunk without intermediates. The prepared form
/// ([`BitmapSet`]) is what the `fsi-index` planner stores; this form is
/// what slice-level selection uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitmapAnd;

impl MultiwayKernel for BitmapAnd {
    fn name(&self) -> &'static str {
        "BitmapAnd"
    }

    fn intersect(&self, sets: &[&[Elem]], out: &mut Vec<Elem>) {
        let built: Vec<BitmapSet> = sets
            .iter()
            .map(|s| BitmapSet::from_sorted_slice(s))
            .collect();
        let refs: Vec<&BitmapSet> = built.iter().collect();
        BitmapSet::intersect_k_into(&refs, out);
    }
}

/// Which k-way kernel [`MultiwayAuto`] picked (exposed for tests and
/// telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiwayChoice {
    /// An empty operand (or no operands): the result is empty, run nothing.
    Trivial,
    /// Skewed sizes: gallop the smallest list through all the others.
    GallopProbe,
    /// Dense operands: word-parallel k-way chunked-bitmap `AND`.
    BitmapAnd,
    /// Balanced, sparse: heap-based k-way merge.
    HeapMerge,
}

impl MultiwayChoice {
    /// The label telemetry reports for this choice.
    pub fn name(self) -> &'static str {
        match self {
            MultiwayChoice::Trivial => "Trivial",
            MultiwayChoice::GallopProbe => "GallopProbe",
            MultiwayChoice::BitmapAnd => "BitmapAnd",
            MultiwayChoice::HeapMerge => "HeapMerge",
        }
    }

    /// Bumps this choice's dispatch counter in the global metrics registry
    /// (`fsi_kernel_multiway_dispatch_total{kernel=...}`) — the k-way
    /// sibling of `KernelChoice`'s pair counter.
    fn record_dispatch(self) {
        use std::sync::OnceLock;
        static COUNTERS: OnceLock<[std::sync::Arc<fsi_obs::Counter>; 4]> = OnceLock::new();
        let counters = COUNTERS.get_or_init(|| {
            [
                MultiwayChoice::Trivial,
                MultiwayChoice::GallopProbe,
                MultiwayChoice::BitmapAnd,
                MultiwayChoice::HeapMerge,
            ]
            .map(|k| {
                fsi_obs::Registry::global().counter(
                    "fsi_kernel_multiway_dispatch_total",
                    &[("kernel", k.name())],
                )
            })
        });
        // audit:allow(hot_path_index): the array is sized to the enum's variant count and indexed by discriminant
        counters[self as usize].inc();
    }

    /// Dispatch rule, mirroring [`KernelChoice::select`](crate::KernelChoice)
    /// at the k-way level: an empty operand is trivial; size skew
    /// (`max nᵢ / min nᵢ ≥` [`GALLOP_RATIO`]) → gallop-probe; density
    /// (`n_min / universe ≥` [`BITMAP_MIN_DENSITY`]) → bitmap `AND`;
    /// otherwise the heap merge. `universe_span` is `max element + 1` over
    /// the operands.
    pub fn select(sizes: &[usize], universe_span: u64) -> Self {
        let Some(&lo) = sizes.iter().min() else {
            return MultiwayChoice::Trivial;
        };
        // audit:allow(hot_path_panic): sizes is non-empty on this path (k >= 2)
        let hi = *sizes.iter().max().expect("non-empty");
        if lo == 0 {
            MultiwayChoice::Trivial
        } else if hi / lo >= GALLOP_RATIO {
            MultiwayChoice::GallopProbe
        } else if lo as f64 >= BITMAP_MIN_DENSITY * universe_span.max(1) as f64 {
            MultiwayChoice::BitmapAnd
        } else {
            MultiwayChoice::HeapMerge
        }
    }
}

/// A kernel that re-selects per call via [`MultiwayChoice::select`].
#[derive(Debug, Clone, Default)]
pub struct MultiwayAuto {
    probe: GallopProbe,
    bitmap: BitmapAnd,
    heap: HeapMerge,
}

impl MultiwayAuto {
    /// The choice [`MultiwayAuto::intersect`] would make for these operands.
    pub fn choice(sets: &[&[Elem]]) -> MultiwayChoice {
        let sizes: Vec<usize> = sets.iter().map(|s| s.len()).collect();
        let span = sets
            .iter()
            .filter_map(|s| s.last())
            .max()
            .map_or(0, |&m| m as u64 + 1);
        MultiwayChoice::select(&sizes, span)
    }
}

impl MultiwayKernel for MultiwayAuto {
    fn name(&self) -> &'static str {
        "MultiwayAuto"
    }

    fn intersect(&self, sets: &[&[Elem]], out: &mut Vec<Elem>) {
        let choice = Self::choice(sets);
        choice.record_dispatch();
        match (sets, choice) {
            ([], _) => {}
            ([a], _) => out.extend_from_slice(a),
            (_, MultiwayChoice::Trivial) => {}
            (_, MultiwayChoice::GallopProbe) => self.probe.intersect(sets, out),
            (_, MultiwayChoice::BitmapAnd) => self.bitmap.intersect(sets, out),
            (_, MultiwayChoice::HeapMerge) => self.heap.intersect(sets, out),
        }
    }
}

// ---------------------------------------------------------------------------
// Compressed-domain k-way probe
// ---------------------------------------------------------------------------

/// A seekable streaming cursor over one sorted, duplicate-free operand —
/// the abstraction that lets the k-way probe run directly over compressed
/// representations. `fsi-compress`'s `BlockPostings` implements this with
/// skip-table block jumps (decoding only the blocks a seek lands in);
/// [`SliceCursor`] adapts a flat slice with galloping, which is both the
/// differential-test oracle and the mixed-operand escape hatch.
pub trait SkipCursor {
    /// Total number of elements in the underlying operand (not the number
    /// remaining) — the probe sorts cursors by this to pick its driver.
    fn len(&self) -> usize;

    /// Whether the underlying operand is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element the cursor points at, or `None` once exhausted. A fresh
    /// cursor points at the first element.
    fn current(&self) -> Option<Elem>;

    /// Advances one element.
    fn advance(&mut self);

    /// Advances to the first element `>= target` (a no-op when the current
    /// element already qualifies) and returns it, or `None` when the
    /// operand has no such element. Targets never decrease across calls.
    fn seek(&mut self, target: Elem) -> Option<Elem>;
}

/// A [`SkipCursor`] over a flat sorted slice: `seek` gallops from the
/// current position, mirroring [`gallop_probe_ordered_into`]'s cursor
/// discipline.
#[derive(Debug, Clone)]
pub struct SliceCursor<'a> {
    slice: &'a [Elem],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    /// A cursor positioned at the first element of `slice`.
    pub fn new(slice: &'a [Elem]) -> Self {
        SliceCursor { slice, pos: 0 }
    }
}

impl SkipCursor for SliceCursor<'_> {
    fn len(&self) -> usize {
        self.slice.len()
    }

    fn current(&self) -> Option<Elem> {
        self.slice.get(self.pos).copied()
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn seek(&mut self, target: Elem) -> Option<Elem> {
        match self.slice.get(self.pos) {
            Some(&v) if v >= target => Some(v),
            Some(_) => {
                self.pos = gallop(self.slice, self.pos, target);
                self.slice.get(self.pos).copied()
            }
            None => None,
        }
    }
}

/// The k-way candidate probe over [`SkipCursor`]s: the shortest operand
/// drives, every other cursor seeks to each candidate, and a miss promotes
/// the blocking cursor's element to the new candidate (seeking the driver
/// forward past the gap). Appends the ascending intersection to `out`.
///
/// This is [`gallop_probe_into`] lifted off flat slices: when the cursors
/// are compressed block cursors, a seek that overshoots a block consults
/// only the skip table — the block's payload is never decoded.
pub fn compressed_probe_into<C: SkipCursor>(cursors: &mut [C], out: &mut Vec<Elem>) {
    match cursors {
        [] => {}
        [a] => {
            while let Some(v) = a.current() {
                out.push(v);
                a.advance();
            }
        }
        _ => {
            // Shortest operand drives: its candidates die on their first
            // (cheapest) miss, and the long operands are only ever probed.
            cursors.sort_by_key(|c| c.len());
            // audit:allow(hot_path_panic): k >= 2 was matched above, so split_first always succeeds
            let (driver, rest) = cursors.split_first_mut().expect("k >= 2");
            let Some(mut cand) = driver.current() else {
                return;
            };
            'candidates: loop {
                for c in rest.iter_mut() {
                    match c.seek(cand) {
                        // One operand exhausted: nothing further can be in
                        // all k.
                        None => return,
                        Some(v) if v == cand => {}
                        Some(v) => {
                            // Miss: v is the smallest value this operand
                            // still carries, so jump the driver to it.
                            match driver.seek(v) {
                                None => return,
                                Some(nc) => {
                                    cand = nc;
                                    continue 'candidates;
                                }
                            }
                        }
                    }
                }
                out.push(cand);
                driver.advance();
                match driver.current() {
                    Some(v) => cand = v,
                    None => return,
                }
            }
        }
    }
}

/// The compressed-domain k-way probe kernel (see [`compressed_probe_into`])
/// — a marker the `fsi-index` planner dispatches through; it is not a
/// [`MultiwayKernel`] because its operands are cursors, not slices.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressedProbe;

impl CompressedProbe {
    /// The label benchmarks and plan explainers report.
    pub fn name(&self) -> &'static str {
        "CompressedProbe"
    }

    /// Appends the ascending intersection of the cursors' operands to
    /// `out`.
    pub fn intersect<C: SkipCursor>(&self, cursors: &mut [C], out: &mut Vec<Elem>) {
        compressed_probe_into(cursors, out);
    }
}

/// The pairwise-fold baseline the multiway kernels are benchmarked against:
/// sort by length, intersect the two smallest, then fold each remaining
/// list in — materializing every intermediate, exactly what true k-way
/// evaluation avoids. `pair` is the pair kernel folded over.
pub fn pairwise_fold_into(pair: &dyn crate::kernel::Kernel, sets: &[&[Elem]], out: &mut Vec<Elem>) {
    match sets {
        [] => {}
        [a] => out.extend_from_slice(a),
        _ => {
            let mut order: Vec<&[Elem]> = sets.to_vec();
            order.sort_by_key(|s| s.len());
            let mut acc = Vec::new();
            pair.intersect_pair(order[0], order[1], &mut acc);
            for s in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                pair.intersect_pair(&acc, s, &mut next);
                acc = next;
            }
            out.extend(acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::{reference_intersection, SortedSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn kernels() -> Vec<Box<dyn MultiwayKernel>> {
        vec![
            Box::new(GallopProbe),
            Box::new(HeapMerge),
            Box::new(BitmapAnd),
            Box::new(MultiwayAuto::default()),
        ]
    }

    fn random_sets(rng: &mut StdRng, k: usize, max_n: usize, universe: u32) -> Vec<SortedSet> {
        (0..k)
            .map(|_| {
                let n = rng.gen_range(0..max_n);
                (0..n).map(|_| rng.gen_range(0..universe)).collect()
            })
            .collect()
    }

    #[test]
    fn every_kernel_matches_reference() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..12 {
            for k in 2..=6usize {
                let universe = rng.gen_range(1..50_000u32);
                let sets = random_sets(&mut rng, k, 1200, universe);
                let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
                let expect = reference_intersection(&slices);
                for kernel in kernels() {
                    let mut out = Vec::new();
                    kernel.intersect(&slices, &mut out);
                    assert_eq!(out, expect, "{} trial {trial} k={k}", kernel.name());
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let a: SortedSet = (0..50u32).collect();
        let empty = SortedSet::new();
        for kernel in kernels() {
            let mut out = Vec::new();
            kernel.intersect(&[], &mut out);
            assert!(out.is_empty(), "{} on zero operands", kernel.name());
            kernel.intersect(&[a.as_slice()], &mut out);
            assert_eq!(out, a.as_slice(), "{} on one operand", kernel.name());
            out.clear();
            kernel.intersect(&[a.as_slice(), empty.as_slice(), a.as_slice()], &mut out);
            assert!(out.is_empty(), "{} with an empty operand", kernel.name());
        }
    }

    #[test]
    fn duplicate_operands_and_identical_lists() {
        let a: SortedSet = (0..500u32).step_by(3).collect();
        for kernel in kernels() {
            let mut out = Vec::new();
            kernel.intersect(&[a.as_slice(), a.as_slice(), a.as_slice()], &mut out);
            assert_eq!(out, a.as_slice(), "{}", kernel.name());
        }
    }

    #[test]
    fn gallop_probe_early_exits_on_exhausted_list() {
        // The driver continues past the largest element of another list:
        // the kernel must stop, not scan the remaining candidates.
        let driver: SortedSet = (0..1000u32).collect();
        let low: SortedSet = (0..10u32).collect();
        let mut out = Vec::new();
        gallop_probe_into(&[driver.as_slice(), low.as_slice()], &mut out);
        assert_eq!(out, low.as_slice());
    }

    #[test]
    fn boundary_values_survive_all_kernels() {
        let a = SortedSet::from_unsorted(vec![0, 65_535, 65_536, u32::MAX - 1, u32::MAX]);
        let b = SortedSet::from_unsorted(vec![0, 65_536, u32::MAX]);
        let c = SortedSet::from_unsorted(vec![0, 1, 65_536, u32::MAX]);
        for kernel in kernels() {
            let mut out = Vec::new();
            kernel.intersect(&[a.as_slice(), b.as_slice(), c.as_slice()], &mut out);
            assert_eq!(out, vec![0, 65_536, u32::MAX], "{}", kernel.name());
        }
    }

    #[test]
    fn selection_rules() {
        assert_eq!(MultiwayChoice::select(&[], 100), MultiwayChoice::Trivial);
        assert_eq!(
            MultiwayChoice::select(&[0, 10, 10], 100),
            MultiwayChoice::Trivial
        );
        assert_eq!(
            MultiwayChoice::select(&[10, 500, 1000], 1 << 20),
            MultiwayChoice::GallopProbe
        );
        assert_eq!(
            MultiwayChoice::select(&[500, 600, 700], 1000),
            MultiwayChoice::BitmapAnd
        );
        assert_eq!(
            MultiwayChoice::select(&[500, 600, 700], 1 << 20),
            MultiwayChoice::HeapMerge
        );
    }

    #[test]
    fn pairwise_fold_matches_reference() {
        let mut rng = StdRng::seed_from_u64(78);
        let sets = random_sets(&mut rng, 4, 900, 5_000);
        let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
        let mut out = Vec::new();
        pairwise_fold_into(&crate::kernel::ScalarMerge, &slices, &mut out);
        assert_eq!(out, reference_intersection(&slices));
    }

    #[test]
    fn compressed_probe_over_slice_cursors_matches_reference() {
        let mut rng = StdRng::seed_from_u64(79);
        for trial in 0..12 {
            for k in 1..=6usize {
                let universe = rng.gen_range(1..50_000u32);
                let sets = random_sets(&mut rng, k, 1200, universe);
                let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
                let expect = reference_intersection(&slices);
                let mut cursors: Vec<SliceCursor> =
                    slices.iter().map(|s| SliceCursor::new(s)).collect();
                let mut out = Vec::new();
                compressed_probe_into(&mut cursors, &mut out);
                assert_eq!(out, expect, "trial {trial} k={k}");
            }
        }
    }

    #[test]
    fn slice_cursor_seek_is_monotone_and_inclusive() {
        let s: SortedSet = (0..100u32).step_by(7).collect();
        let mut c = SliceCursor::new(s.as_slice());
        assert_eq!(c.current(), Some(0));
        assert_eq!(c.seek(0), Some(0), "seek to the current element is a no-op");
        assert_eq!(c.seek(1), Some(7));
        assert_eq!(c.seek(7), Some(7), "repeated seek stays put");
        assert_eq!(c.seek(50), Some(56));
        c.advance();
        assert_eq!(c.current(), Some(63));
        assert_eq!(c.seek(1_000), None, "past the end exhausts the cursor");
        assert_eq!(c.current(), None);
        assert_eq!(c.len(), s.len(), "len reports the whole operand");
    }

    #[test]
    fn compressed_probe_degenerate_inputs() {
        let a: SortedSet = (0..50u32).collect();
        let mut out = Vec::new();
        compressed_probe_into::<SliceCursor>(&mut [], &mut out);
        assert!(out.is_empty());
        compressed_probe_into(&mut [SliceCursor::new(a.as_slice())], &mut out);
        assert_eq!(out, a.as_slice());
        out.clear();
        let mut cursors = [
            SliceCursor::new(a.as_slice()),
            SliceCursor::new(&[]),
            SliceCursor::new(a.as_slice()),
        ];
        compressed_probe_into(&mut cursors, &mut out);
        assert!(out.is_empty(), "an empty operand empties the intersection");
    }

    #[test]
    fn kernel_names_are_distinct() {
        let names: Vec<&str> = kernels().iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
