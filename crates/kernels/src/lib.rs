//! # fsi-kernels — portable word-parallel intersection primitives
//!
//! Ding & König's speedup comes from packing group signatures into machine
//! words and intersecting them with single `AND` instructions. This crate
//! generalizes that trick into a layer of standalone *kernels* the layers
//! above (`fsi-index`'s `Strategy` dispatch and `Planner`, `fsi-serve`'s
//! shards) can pick per query:
//!
//! * [`bitmap`] — [`BitmapSet`]: a chunked bitmap (Roaring-style dense
//!   containers: 2¹⁶-value chunks of 1024 64-bit words). Intersection is a
//!   word-by-word `AND` over chunks present in both sets, with
//!   popcount/trailing-zeros-driven result extraction. Wins when sets are
//!   *dense* in their universe: cost is `O(universe/64)` word ops
//!   independent of how many elements the chunks hold.
//! * [`gallop`] — [`GallopingSet`]: sorted-slice kernels with no auxiliary
//!   structure. A *branchless* two-pointer merge (cursor advances computed
//!   arithmetically, no unpredictable branches) for balanced sizes, and a
//!   galloping (exponential-search) probe of the smaller list into the
//!   larger for skewed `n₁/n₂` — the Hwang–Lin/SvS regime.
//! * [`sigfilter`] — [`SigFilterSet`]: a FESIA-style hash-signature
//!   prefilter (Zhang, Lu, Olteanu, Kim — "FESIA: A Fast and SIMD-Efficient
//!   Set Intersection Approach on Modern CPUs", ICDE 2020). Elements are
//!   hash-partitioned into per-set bucket arrays whose sizes scale with
//!   `n`; each bucket keeps a 64-bit signature (one bit per element under a
//!   second hash). Intersection `AND`s the signatures of aligned buckets
//!   and only *verifies* (scalar-merges) bucket pairs whose signature
//!   intersection is non-zero — most empty bucket pairs are rejected by a
//!   single `AND`, exactly the paper's word-filtering idea applied at the
//!   bucket granularity.
//! * [`boolean`] — boolean-composition primitives for the expression
//!   engine (`fsi-query`): k-way heap **union** ([`heap_union_into`]),
//!   galloping multi-subtrahend **difference** ([`gallop_diff_into`]), and
//!   the chunked-bitmap `OR` ([`BitmapSet::union_k_into`]) riding the same
//!   SIMD word primitives as the `AND` sweep.
//! * [`multiway`] — true k-way kernels behind the [`MultiwayKernel`] trait
//!   ([`GallopProbe`], [`BitmapAnd`], [`HeapMerge`], selected per call by
//!   [`MultiwayAuto`]): the smallest set drives probes into all the others
//!   at once, with **no materialized intermediate results** — the paper's
//!   k-set framing, which a pairwise fold forfeits.
//!
//! The three prepared forms implement the `fsi-core` index traits
//! ([`SetIndex`](fsi_core::SetIndex) /
//! [`PairIntersect`](fsi_core::PairIntersect) /
//! [`KIntersect`](fsi_core::KIntersect)), so they slot into `fsi-index`'s
//! strategy lineup (`Strategy::{Bitmap, Galloping, SigFilter}`) and are
//! differential-tested byte-identical to the scalar executor.
//!
//! ## When the planner picks each kernel
//!
//! [`KernelChoice::select`] decides per query from the operand sizes and
//! the universe span:
//!
//! 1. an empty operand short-circuits to the merge kernel (nothing to do);
//! 2. skew (`max nᵢ / min nᵢ` ≥ [`GALLOP_RATIO`]) → [`Galloping`]:
//!    `O(n_min · log(n_max/n_min))`;
//! 3. dense operands (`n_min / universe` ≥ [`BITMAP_MIN_DENSITY`]) →
//!    [`BitmapKernel`]: the `AND`-per-64-elements regime;
//! 4. otherwise → [`SigFilterKernel`] (balanced, sparse: signatures reject
//!    most bucket pairs before any scalar work).
//!
//! [`MultiwayChoice::select`] mirrors the same rule shape for k-way calls
//! (skew → [`GallopProbe`], density → [`BitmapAnd`], otherwise
//! [`HeapMerge`]). `fsi_index::Planner` goes further over *prepared*
//! lists: it prices every candidate kernel with a whole-query cost model
//! (adding a hash-probe tier for extreme skew and the paper's
//! RanGroupScan for balanced sparse) and picks the minimum — see the
//! `fsi_index::planner` module doc for the authoritative cost table. The
//! [`BITMAP_MIN_DENSITY`] constant is shared: it decides, at build time,
//! which lists carry a chunk bitmap at all.
//!
//! `Strategy::{Bitmap, Galloping, SigFilter}` pin one kernel for every
//! query the way every other fixed strategy does; the planner makes the
//! choice online, as Section 3.4 of Ding & König envisions.
//!
//! ## SIMD acceleration
//!
//! Underneath all of the above sits [`simd`]: explicit SSE4.1/AVX2
//! `std::arch` paths with `is_x86_feature_detected!` runtime dispatch and
//! a portable scalar fallback. The balanced merge, the bitmap chunk
//! sweeps, and the signature compare all route through it, so every kernel
//! and strategy above is transparently vectorized where the hardware
//! allows. The `force-scalar` cargo feature compiles the `std::arch` paths
//! out; the `FSI_SIMD` environment variable and
//! [`simd::with_level`] clamp the dispatched [`SimdLevel`] at runtime so
//! the scalar twins stay testable on the same machine — see `docs/simd.md`
//! for the dispatch rules and the `BENCH_simd.json` schema.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod bitmap;
pub mod boolean;
pub mod gallop;
pub mod kernel;
pub mod multiway;
pub mod sigfilter;
pub mod simd;

pub use bitmap::WORDS_PER_CHUNK;
pub use bitmap::{BitmapKernel, BitmapSet};
pub use boolean::{gallop_diff_into, heap_union_into, merge_union_into};
pub use gallop::{
    branchless_merge_into, galloping_into, BranchlessMerge, Galloping, GallopingSet, GALLOP_RATIO,
};
pub use kernel::{AutoKernel, Kernel, KernelChoice, ScalarMerge, SimdMerge, BITMAP_MIN_DENSITY};
pub use multiway::{
    compressed_probe_into, gallop_probe_into, gallop_probe_ordered_into, heap_merge_into,
    pairwise_fold_into, BitmapAnd, CompressedProbe, GallopProbe, HeapMerge, MultiwayAuto,
    MultiwayChoice, MultiwayKernel, SkipCursor, SliceCursor,
};
pub use sigfilter::{SigFilterKernel, SigFilterSet};
pub use simd::SimdLevel;
