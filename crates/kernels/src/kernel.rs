//! The common [`Kernel`] interface over every slice-level intersection
//! primitive, plus runtime selection.
//!
//! A kernel consumes plain sorted `&[u32]` slices — the universal currency
//! of posting lists — and appends the intersection to a caller buffer.
//! [`KernelChoice::select`] is the slice-level dispatch rule (skew →
//! galloping at [`GALLOP_RATIO`], density → bitmap at
//! [`BITMAP_MIN_DENSITY`], otherwise signature prefilter); the
//! `fsi-index` planner applies the same *shape* of rules over prepared
//! lists but with its own tunable thresholds (plus a hash-probe tier for
//! extreme skew and a RanGroupScan fallback) — only the density constant
//! is shared. [`AutoKernel`] packages the slice-level choice behind the
//! common trait so harnesses can bench it as one kernel.

use crate::bitmap::BitmapKernel;
use crate::gallop::{Galloping, GALLOP_RATIO};
use crate::sigfilter::SigFilterKernel;
use fsi_core::elem::Elem;

/// A slice-level intersection kernel.
///
/// Implementations must accept any sorted, duplicate-free slices and append
/// an **ascending** intersection to `out` (slice kernels sort where their
/// natural order differs, unlike the prepared `*Set` forms whose trait
/// contract leaves order unspecified).
pub trait Kernel: std::fmt::Debug + Send + Sync {
    /// The label benchmarks and tests report.
    fn name(&self) -> &'static str;

    /// Appends `a ∩ b` to `out`, ascending.
    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>);

    /// Appends `⋂ sets` to `out`, ascending. The default folds
    /// [`Kernel::intersect_pair`] smallest-first (SvS ordering).
    fn intersect_k(&self, sets: &[&[Elem]], out: &mut Vec<Elem>) {
        match sets {
            [] => {}
            [a] => out.extend_from_slice(a),
            _ => {
                let mut order: Vec<&[Elem]> = sets.to_vec();
                order.sort_by_key(|s| s.len());
                let mut acc = Vec::new();
                self.intersect_pair(order[0], order[1], &mut acc);
                for s in &order[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    let mut next = Vec::new();
                    self.intersect_pair(&acc, s, &mut next);
                    acc = next;
                }
                out.extend(acc);
            }
        }
    }
}

/// The classic branching two-pointer merge — the scalar baseline every
/// word-parallel kernel is benchmarked against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarMerge;

impl Kernel for ScalarMerge {
    fn name(&self) -> &'static str {
        "Merge"
    }

    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// The block compare-and-compact merge at the dispatched
/// [`SimdLevel`](crate::simd::SimdLevel) — what the balanced branch of
/// [`GallopingSet`](crate::GallopingSet) runs. Identical output to
/// [`ScalarMerge`]/[`BranchlessMerge`](crate::gallop::BranchlessMerge) at
/// every level; identical code under `force-scalar` or off x86_64.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdMerge;

impl Kernel for SimdMerge {
    fn name(&self) -> &'static str {
        "SimdMerge"
    }

    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        crate::simd::merge_into(a, b, out);
    }
}

/// Minimum `n_min/universe` density at which the chunked bitmap's
/// fixed `O(universe/64)` word sweep beats element-at-a-time kernels.
pub const BITMAP_MIN_DENSITY: f64 = 1.0 / 16.0;

/// Which kernel the runtime selector picked (exposed for tests/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Degenerate input (an empty operand): plain merge short-circuits.
    Merge,
    /// Skewed sizes: gallop the small list through the large one.
    Galloping,
    /// Dense operands: word-parallel chunked-bitmap `AND`.
    Bitmap,
    /// Balanced, sparse: signature prefilter, AND-then-verify.
    SigFilter,
}

impl KernelChoice {
    /// The label telemetry reports for this choice.
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Merge => "Merge",
            KernelChoice::Galloping => "Galloping",
            KernelChoice::Bitmap => "Bitmap",
            KernelChoice::SigFilter => "SigFilter",
        }
    }

    /// Bumps this choice's dispatch counter in the global metrics registry
    /// (`fsi_kernel_pair_dispatch_total{kernel=...}`) — one relaxed atomic
    /// increment on a cached handle, called once per dispatched *query*,
    /// not per element.
    fn record_dispatch(self) {
        use std::sync::OnceLock;
        static COUNTERS: OnceLock<[std::sync::Arc<fsi_obs::Counter>; 4]> = OnceLock::new();
        let counters = COUNTERS.get_or_init(|| {
            [
                KernelChoice::Merge,
                KernelChoice::Galloping,
                KernelChoice::Bitmap,
                KernelChoice::SigFilter,
            ]
            .map(|k| {
                fsi_obs::Registry::global()
                    .counter("fsi_kernel_pair_dispatch_total", &[("kernel", k.name())])
            })
        });
        // audit:allow(hot_path_index): the array is sized to the enum's variant count and indexed by discriminant
        counters[self as usize].inc();
    }

    /// Dispatch rule (see the crate doc): empty → merge; ratio ≥
    /// [`GALLOP_RATIO`] → galloping; density ≥ [`BITMAP_MIN_DENSITY`] →
    /// bitmap; otherwise signature prefilter. `universe_span` is the
    /// exclusive upper bound of the value range (`max element + 1`).
    pub fn select(n1: usize, n2: usize, universe_span: u64) -> Self {
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        if lo == 0 {
            KernelChoice::Merge
        } else if hi / lo >= GALLOP_RATIO {
            KernelChoice::Galloping
        } else if lo as f64 >= BITMAP_MIN_DENSITY * universe_span.max(1) as f64 {
            KernelChoice::Bitmap
        } else {
            KernelChoice::SigFilter
        }
    }
}

/// A kernel that re-selects per call via [`KernelChoice::select`] — the
/// planner's dispatch packaged behind the common trait.
#[derive(Debug, Clone, Default)]
pub struct AutoKernel {
    merge: ScalarMerge,
    gallop: Galloping,
    bitmap: BitmapKernel,
    sig: SigFilterKernel,
}

impl AutoKernel {
    /// The choice [`AutoKernel::intersect_pair`] would make for these
    /// operands.
    pub fn choice(a: &[Elem], b: &[Elem]) -> KernelChoice {
        let span = a
            .last()
            .copied()
            .max(b.last().copied())
            .map_or(0, |m| m as u64 + 1);
        KernelChoice::select(a.len(), b.len(), span)
    }
}

impl Kernel for AutoKernel {
    fn name(&self) -> &'static str {
        "Auto"
    }

    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        let choice = Self::choice(a, b);
        choice.record_dispatch();
        match choice {
            KernelChoice::Merge => self.merge.intersect_pair(a, b, out),
            KernelChoice::Galloping => self.gallop.intersect_pair(a, b, out),
            KernelChoice::Bitmap => self.bitmap.intersect_pair(a, b, out),
            KernelChoice::SigFilter => self.sig.intersect_pair(a, b, out),
        }
    }

    /// `k ≥ 3` routes through the true k-way layer
    /// ([`MultiwayAuto`](crate::multiway::MultiwayAuto)) — no pairwise
    /// fold, no materialized intermediates.
    fn intersect_k(&self, sets: &[&[Elem]], out: &mut Vec<Elem>) {
        use crate::multiway::{MultiwayAuto, MultiwayKernel};
        match sets {
            [] => {}
            [a] => out.extend_from_slice(a),
            [a, b] => self.intersect_pair(a, b, out),
            _ => MultiwayAuto::default().intersect(sets, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallop::BranchlessMerge;
    use fsi_core::elem::{reference_intersection, SortedSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn kernels() -> Vec<Box<dyn Kernel>> {
        vec![
            Box::new(ScalarMerge),
            Box::new(BranchlessMerge),
            Box::new(SimdMerge),
            Box::new(Galloping),
            Box::new(BitmapKernel),
            Box::new(SigFilterKernel::default()),
            Box::new(AutoKernel::default()),
        ]
    }

    #[test]
    fn every_kernel_matches_reference_pairs() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..15 {
            let n1 = rng.gen_range(0..1000);
            let n2 = rng.gen_range(0..1000);
            let u = rng.gen_range(1..20_000u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
            for k in kernels() {
                let mut out = Vec::new();
                k.intersect_pair(a.as_slice(), b.as_slice(), &mut out);
                assert_eq!(out, expect, "kernel {} trial {trial}", k.name());
            }
        }
    }

    #[test]
    fn every_kernel_matches_reference_k_way() {
        let mut rng = StdRng::seed_from_u64(42);
        for k_sets in [3usize, 4] {
            let sets: Vec<SortedSet> = (0..k_sets)
                .map(|_| (0..600).map(|_| rng.gen_range(0..2000u32)).collect())
                .collect();
            let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
            let expect = reference_intersection(&slices);
            for k in kernels() {
                let mut out = Vec::new();
                k.intersect_k(&slices, &mut out);
                assert_eq!(out, expect, "kernel {} k={k_sets}", k.name());
            }
        }
    }

    #[test]
    fn selection_rules() {
        // Empty operand.
        assert_eq!(KernelChoice::select(0, 100, 1000), KernelChoice::Merge);
        // Skew wins over density.
        assert_eq!(
            KernelChoice::select(10, 1000, 1000),
            KernelChoice::Galloping
        );
        // Dense and balanced.
        assert_eq!(KernelChoice::select(500, 600, 1000), KernelChoice::Bitmap);
        // Sparse and balanced.
        assert_eq!(
            KernelChoice::select(500, 600, 1_000_000),
            KernelChoice::SigFilter
        );
    }

    #[test]
    fn kernel_names_are_distinct() {
        let names: Vec<&str> = kernels().iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
