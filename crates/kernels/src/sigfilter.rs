//! FESIA-style hash-signature prefilter (Zhang et al., ICDE 2020).
//!
//! Elements are partitioned into `2^t` buckets by the **top `t` bits of the
//! shared permutation `g`** (so bucket structure nests across sets of
//! different sizes, exactly like the paper's multi-resolution groups), with
//! `t` chosen per set so the expected bucket size is ≈ 8 elements. Each
//! bucket keeps a 64-bit *signature*: the OR of `h(x)`-indexed bits over its
//! members — the word representation of Section 3.1, applied per bucket.
//!
//! Intersection walks the finer set's buckets; each aligns with exactly one
//! coarser bucket (its `t_a`-bit prefix). One `AND` of the two signatures
//! rejects most non-overlapping bucket pairs before any element is read;
//! survivors are *verified* by a scalar merge of the two (value-sorted)
//! bucket slices, so false positives cost a short merge and never reach the
//! output. This is FESIA's "compare signatures, then intersect only the
//! segments whose signatures intersect" — with the paper's own `h` as the
//! signature hash.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::hash::{ceil_log2, top_bits_of, HashContext, Permutation, UniversalHash};
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// Target expected bucket size (the paper's `√w = 8` group size).
const TARGET_BUCKET_SIZE: usize = 8;

/// A set preprocessed into signature-guarded hash buckets.
#[derive(Debug, Clone)]
pub struct SigFilterSet {
    n: usize,
    g: Permutation,
    h: UniversalHash,
    /// Bucket count is `2^t`.
    t: u32,
    /// Per-bucket 64-bit signatures (`2^t` entries).
    sigs: Vec<u64>,
    /// `offsets[z]..offsets[z+1]` delimits bucket `z` in `elems`.
    offsets: Vec<u32>,
    /// Elements grouped by bucket, each bucket sorted by value.
    elems: Vec<Elem>,
}

impl SigFilterSet {
    /// Preprocesses `set` under the shared hash context: `O(n)` space, one
    /// counting sort.
    pub fn build(ctx: &HashContext, set: &SortedSet) -> Self {
        let g = *ctx.g();
        let h = ctx.h();
        let n = set.len();
        let t = ceil_log2(n.div_ceil(TARGET_BUCKET_SIZE)).min(28);
        let nbuckets = 1usize << t;

        let mut counts = vec![0u32; nbuckets + 1];
        for x in set.iter() {
            counts[top_bits_of(g.apply(x), t) as usize + 1] += 1;
        }
        for z in 0..nbuckets {
            counts[z + 1] += counts[z];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut elems = vec![0 as Elem; n];
        let mut sigs = vec![0u64; nbuckets];
        // `set` ascends in value, so each bucket is filled in value order.
        for x in set.iter() {
            let z = top_bits_of(g.apply(x), t) as usize;
            elems[cursor[z] as usize] = x;
            cursor[z] += 1;
            sigs[z] |= h.bit(x);
        }

        Self {
            n,
            g,
            h,
            t,
            sigs,
            offsets,
            elems,
        }
    }

    /// Number of buckets (`2^t`).
    pub fn num_buckets(&self) -> usize {
        self.sigs.len()
    }

    /// Bucket `z`'s elements, sorted by value.
    fn bucket(&self, z: usize) -> &[Elem] {
        // audit:allow(hot_path_index): offsets has 2^t + 1 entries and z < 2^t by top_bits_of
        &self.elems[self.offsets[z] as usize..self.offsets[z + 1] as usize]
    }

    /// Signature-guarded membership test: one `AND`-style bit probe, then a
    /// binary search within the (short) bucket.
    pub fn contains(&self, x: Elem) -> bool {
        let z = top_bits_of(self.g.apply(x), self.t) as usize;
        // audit:allow(hot_path_index): z < 2^t by top_bits_of, and sigs has 2^t entries
        if self.sigs[z] & self.h.bit(x) == 0 {
            return false;
        }
        self.bucket(z).binary_search(&x).is_ok()
    }
}

impl SetIndex for SigFilterSet {
    fn n(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4 + self.sigs.len() * 8 + self.offsets.len() * 4
    }
}

impl PairIntersect for SigFilterSet {
    /// AND-then-verify: output order follows the finer set's bucket order
    /// (a `g`-prefix order, not ascending — callers sort, per the trait
    /// contract).
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        assert_eq!(self.g, other.g, "sets built under different permutations g");
        assert_eq!(self.h, other.h, "sets built under different hashes h");
        if self.n == 0 || other.n == 0 {
            return;
        }
        // `fine` has at least as many buckets; every fine bucket aligns
        // with the coarse bucket identified by its t_c-bit prefix.
        let (fine, coarse) = if self.t >= other.t {
            (self, other)
        } else {
            (other, self)
        };
        let dt = fine.t - coarse.t;
        // Vectorized compare-and-verify: the signature ANDs run at the
        // dispatched SIMD level (2/4 bucket pairs per instruction, all-zero
        // groups rejected by one PTEST); only surviving buckets reach the
        // verify merge — itself the level-dispatched block merge, which
        // falls to scalar below one block. The coarse bucket may contain
        // elements of sibling fine buckets; value equality filters them out
        // (equal values imply equal g-prefixes).
        let level = crate::simd::SimdLevel::active();
        crate::simd::sig_scan_at(level, &fine.sigs, &coarse.sigs, dt, &mut |zf| {
            crate::simd::merge_into_at(level, fine.bucket(zf), coarse.bucket(zf >> dt), out);
        });
    }
}

impl KIntersect for SigFilterSet {
    /// Pair kernel on the two smallest sets, then signature-guarded
    /// membership filtering through the rest.
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => {
                out.extend_from_slice(&a.elems);
            }
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n());
                let start = out.len();
                order[0].intersect_pair_into(order[1], out);
                let mut len = out.len();
                for ix in &order[2..] {
                    if len == start {
                        break;
                    }
                    let mut write = start;
                    for read in start..len {
                        let x = out[read];
                        if ix.contains(x) {
                            out[write] = x;
                            write += 1;
                        }
                    }
                    len = write;
                }
                out.truncate(len);
            }
        }
    }
}

/// The slice-level signature-prefilter kernel: owns a [`HashContext`] so it
/// is self-contained, builds both [`SigFilterSet`]s on the fly, and
/// intersects. The prepared form is what `fsi-index` strategies store.
#[derive(Debug, Clone)]
pub struct SigFilterKernel {
    ctx: HashContext,
}

impl SigFilterKernel {
    /// A kernel over its own deterministic hash context.
    pub fn new(seed: u64) -> Self {
        Self {
            ctx: HashContext::new(seed),
        }
    }
}

impl Default for SigFilterKernel {
    fn default() -> Self {
        Self::new(0xFE51A)
    }
}

impl crate::kernel::Kernel for SigFilterKernel {
    fn name(&self) -> &'static str {
        "SigFilter"
    }

    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        let sa = SigFilterSet::build(&self.ctx, &to_set(a));
        let sb = SigFilterSet::build(&self.ctx, &to_set(b));
        let start = out.len();
        sa.intersect_pair_into(&sb, out);
        out[start..].sort_unstable();
    }
}

fn to_set(slice: &[Elem]) -> SortedSet {
    // audit:allow(hot_path_panic): kernel inputs are SortedSet-backed, so the sorted precondition holds by type
    SortedSet::from_sorted(slice.to_vec()).expect("kernel inputs are sorted sets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx() -> HashContext {
        HashContext::new(515)
    }

    fn sorted_pair(a: &SigFilterSet, b: &SigFilterSet) -> Vec<Elem> {
        let mut out = Vec::new();
        a.intersect_pair_into(b, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn random_pairs_match_reference() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..30 {
            let n1 = rng.gen_range(0..1200);
            let n2 = rng.gen_range(0..1200);
            let u = rng.gen_range(1..5000u32);
            let a: SortedSet = (0..n1).map(|_| rng.gen_range(0..u)).collect();
            let b: SortedSet = (0..n2).map(|_| rng.gen_range(0..u)).collect();
            let ia = SigFilterSet::build(&ctx, &a);
            let ib = SigFilterSet::build(&ctx, &b);
            assert_eq!(
                sorted_pair(&ia, &ib),
                reference_intersection(&[a.as_slice(), b.as_slice()]),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn unequal_bucket_counts_align_by_prefix() {
        let ctx = ctx();
        // Interpreted execution (Miri) needs a smaller large side.
        const LARGE: u32 = if cfg!(miri) { 2_000 } else { 50_000 };
        let small: SortedSet = (0..64u32).map(|x| x * 37).collect();
        let large: SortedSet = (0..LARGE).collect();
        let ia = SigFilterSet::build(&ctx, &small);
        let ib = SigFilterSet::build(&ctx, &large);
        assert!(ia.num_buckets() < ib.num_buckets());
        let expect = reference_intersection(&[small.as_slice(), large.as_slice()]);
        assert_eq!(sorted_pair(&ia, &ib), expect);
        assert_eq!(sorted_pair(&ib, &ia), expect);
    }

    #[test]
    fn membership_probe_agrees_with_the_set() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(32);
        const UNIVERSE: u32 = if cfg!(miri) { 1_000 } else { 10_000 };
        let set: SortedSet = (0..UNIVERSE / 5)
            .map(|_| rng.gen_range(0..UNIVERSE))
            .collect();
        let ix = SigFilterSet::build(&ctx, &set);
        for x in 0..UNIVERSE {
            assert_eq!(ix.contains(x), set.contains(x), "x={x}");
        }
    }

    #[test]
    fn k_way_matches_reference() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(33);
        for k in 1..=4usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|_| (0..900).map(|_| rng.gen_range(0..3000u32)).collect())
                .collect();
            let built: Vec<SigFilterSet> =
                sets.iter().map(|s| SigFilterSet::build(&ctx, s)).collect();
            let refs: Vec<&SigFilterSet> = built.iter().collect();
            let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                SigFilterSet::intersect_k_sorted(&refs),
                reference_intersection(&slices),
                "k={k}"
            );
        }
    }

    #[test]
    fn empty_and_singleton() {
        let ctx = ctx();
        let e = SigFilterSet::build(&ctx, &SortedSet::new());
        let s = SigFilterSet::build(&ctx, &SortedSet::from_unsorted(vec![9]));
        assert_eq!(sorted_pair(&e, &s), Vec::<Elem>::new());
        assert_eq!(sorted_pair(&s, &s), vec![9]);
        assert_eq!(e.num_buckets(), 1);
        assert!(!e.contains(9));
        assert!(s.contains(9));
    }

    #[test]
    fn mismatched_contexts_panic() {
        let a = SigFilterSet::build(&HashContext::new(1), &SortedSet::from_unsorted(vec![1]));
        let b = SigFilterSet::build(&HashContext::new(2), &SortedSet::from_unsorted(vec![1]));
        assert!(std::panic::catch_unwind(|| {
            let mut out = Vec::new();
            a.intersect_pair_into(&b, &mut out);
        })
        .is_err());
    }
}
