//! Sorted-slice kernels: a branchless two-pointer merge and a galloping
//! (exponential-search) probe.
//!
//! Neither needs any auxiliary structure — the prepared form is the posting
//! list itself — so these are the baselines every word-parallel kernel must
//! beat, and the right choice in two regimes:
//!
//! * **balanced sizes** — the branchless merge advances both cursors with
//!   arithmetic on comparison results instead of unpredictable branches,
//!   so the CPU pipeline never stalls on the 50/50 "which side advances"
//!   branch a textbook merge takes;
//! * **skewed sizes** — galloping probes each element of the smaller list
//!   into the larger with a doubling step from a moving cursor,
//!   `O(n₁ log(n₂/n₁))` total (Hwang–Lin), the SvS regime.
//!
//! [`GallopingSet`] picks between the two per call from the size ratio.

use fsi_core::elem::{Elem, SortedSet};
use fsi_core::search::gallop;
use fsi_core::traits::{KIntersect, PairIntersect, SetIndex};

/// Size ratio `n_max/n_min` at or above which galloping beats the
/// branchless merge (measured; the crossover is flat between 8 and 32).
pub const GALLOP_RATIO: usize = 16;

/// Branchless two-pointer merge of two sorted, duplicate-free slices,
/// appending the (ascending) intersection to `out`.
pub fn branchless_merge_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x == y {
            out.push(x);
        }
        // Both advances are data-dependent arithmetic, not branches.
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
}

/// Galloping probe of every element of `small` into `large` from a moving
/// cursor, appending the (ascending) intersection to `out`.
pub fn galloping_into(small: &[Elem], large: &[Elem], out: &mut Vec<Elem>) {
    let mut cursor = 0usize;
    for &x in small {
        cursor = gallop(large, cursor, x);
        if cursor >= large.len() {
            break;
        }
        if large[cursor] == x {
            out.push(x);
            cursor += 1;
        }
    }
}

/// Pair kernel choosing between the vectorized merge and galloping by the
/// size ratio; output ascending. The balanced branch runs the SIMD merge
/// at the dispatched [`SimdLevel`](crate::simd::SimdLevel) (the scalar
/// branchless merge under `force-scalar` or on non-x86 targets); the
/// skewed branch stays scalar — galloping is random access, which lanes
/// don't help.
pub fn adaptive_pair_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        galloping_into(small, large, out);
    } else {
        crate::simd::merge_into(a, b, out);
    }
}

/// A plain sorted list, intersected by the branchless/galloping kernels.
#[derive(Debug, Clone)]
pub struct GallopingSet {
    elems: Vec<Elem>,
}

impl GallopingSet {
    /// Wraps the sorted list (no preprocessing beyond the copy).
    pub fn build(set: &SortedSet) -> Self {
        Self {
            elems: set.as_slice().to_vec(),
        }
    }

    /// The sorted elements.
    pub fn as_slice(&self) -> &[Elem] {
        &self.elems
    }
}

impl SetIndex for GallopingSet {
    fn n(&self) -> usize {
        self.elems.len()
    }

    fn size_in_bytes(&self) -> usize {
        self.elems.len() * 4
    }
}

impl PairIntersect for GallopingSet {
    fn intersect_pair_into(&self, other: &Self, out: &mut Vec<Elem>) {
        adaptive_pair_into(&self.elems, &other.elems, out);
    }
}

impl KIntersect for GallopingSet {
    /// SvS schedule: intersect the two smallest lists, then gallop-filter
    /// the (sorted, shrinking) accumulator through each remaining list in
    /// size order. Output ascending.
    fn intersect_k_into(indexes: &[&Self], out: &mut Vec<Elem>) {
        match indexes {
            [] => {}
            [a] => out.extend_from_slice(&a.elems),
            _ => {
                let mut order: Vec<&Self> = indexes.to_vec();
                order.sort_by_key(|ix| ix.n());
                let start = out.len();
                adaptive_pair_into(&order[0].elems, &order[1].elems, out);
                let mut len = out.len();
                for ix in &order[2..] {
                    if len == start {
                        break;
                    }
                    // Filter out[start..len] in place against ix.
                    let mut write = start;
                    let mut cursor = 0usize;
                    let large = ix.as_slice();
                    for read in start..len {
                        let x = out[read];
                        cursor = gallop(large, cursor, x);
                        if cursor >= large.len() {
                            break;
                        }
                        if large[cursor] == x {
                            out[write] = x;
                            write += 1;
                            cursor += 1;
                        }
                    }
                    len = write;
                }
                out.truncate(len);
            }
        }
    }
}

/// The slice-level branchless-merge kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchlessMerge;

impl crate::kernel::Kernel for BranchlessMerge {
    fn name(&self) -> &'static str {
        "BranchlessMerge"
    }

    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        branchless_merge_into(a, b, out);
    }
}

/// The slice-level galloping kernel (always gallops the smaller side).
#[derive(Debug, Clone, Copy, Default)]
pub struct Galloping;

impl crate::kernel::Kernel for Galloping {
    fn name(&self) -> &'static str {
        "Galloping"
    }

    fn intersect_pair(&self, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        galloping_into(small, large, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::elem::reference_intersection;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(rng: &mut StdRng, n: usize, universe: u32) -> SortedSet {
        (0..n).map(|_| rng.gen_range(0..universe)).collect()
    }

    #[test]
    fn branchless_and_galloping_agree_with_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..30 {
            let (n1, n2) = (rng.gen_range(0..800), rng.gen_range(0..800));
            let a = random_set(&mut rng, n1, 3000);
            let b = random_set(&mut rng, n2, 3000);
            let expect = reference_intersection(&[a.as_slice(), b.as_slice()]);
            let mut m = Vec::new();
            branchless_merge_into(a.as_slice(), b.as_slice(), &mut m);
            assert_eq!(m, expect, "merge trial {trial}");
            let (small, large) = if a.len() <= b.len() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            let mut g = Vec::new();
            galloping_into(small.as_slice(), large.as_slice(), &mut g);
            assert_eq!(g, expect, "gallop trial {trial}");
        }
    }

    #[test]
    fn skewed_pairs_pick_galloping_and_stay_correct() {
        let mut rng = StdRng::seed_from_u64(22);
        // Interpreted execution (Miri) needs a smaller large side.
        let large_len = if cfg!(miri) { 2_000 } else { 100_000 };
        let small = random_set(&mut rng, 40, 1_000_000);
        let large = random_set(&mut rng, large_len, 1_000_000);
        let ia = GallopingSet::build(&small);
        let ib = GallopingSet::build(&large);
        let expect = reference_intersection(&[small.as_slice(), large.as_slice()]);
        assert_eq!(ia.intersect_pair_sorted(&ib), expect);
        assert_eq!(ib.intersect_pair_sorted(&ia), expect);
    }

    #[test]
    fn k_way_matches_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for k in 1..=5usize {
            let sets: Vec<SortedSet> = (0..k)
                .map(|i| random_set(&mut rng, 100 * (i + 1) * (i + 1), 4000))
                .collect();
            let built: Vec<GallopingSet> = sets.iter().map(GallopingSet::build).collect();
            let refs: Vec<&GallopingSet> = built.iter().collect();
            let slices: Vec<&[Elem]> = sets.iter().map(|s| s.as_slice()).collect();
            assert_eq!(
                GallopingSet::intersect_k_sorted(&refs),
                reference_intersection(&slices),
                "k={k}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let e = GallopingSet::build(&SortedSet::new());
        let s = GallopingSet::build(&SortedSet::from_unsorted(vec![1, 2, 3]));
        assert!(e.intersect_pair_sorted(&s).is_empty());
        assert!(s.intersect_pair_sorted(&e).is_empty());
        assert_eq!(s.intersect_pair_sorted(&s), vec![1, 2, 3]);
        let mut out = Vec::new();
        GallopingSet::intersect_k_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn k_way_filter_keeps_prior_output_prefix() {
        // The in-place filter must not clobber results already in `out`.
        let a = GallopingSet::build(&(0..100u32).collect());
        let b = GallopingSet::build(&(50..150u32).collect());
        let c = GallopingSet::build(&(0..200u32).step_by(2).collect());
        let mut out = vec![7u32, 8, 9];
        GallopingSet::intersect_k_into(&[&a, &b, &c], &mut out);
        assert_eq!(&out[..3], &[7, 8, 9]);
        let expect: Vec<Elem> = (50..100).filter(|x| x % 2 == 0).collect();
        assert_eq!(&out[3..], expect.as_slice());
    }
}
