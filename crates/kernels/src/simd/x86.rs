//! The x86_64 `std::arch` implementations behind [`super`]'s dispatched
//! entry points. Compiled only on x86_64 without the `force-scalar`
//! feature; every function is `#[target_feature]`-gated and reached only
//! through [`SimdLevel::saturate`](super::SimdLevel::saturate)-checked
//! dispatch, so the required instructions are always present at runtime.
//!
//! The merge kernels are the classic block compare-and-compact network
//! (Katsov/Lemire-style, also the "shuffling" method of the
//! simd-set-operations literature): compare every lane pair of two sorted
//! blocks via cyclic rotations, derive a match bitmask, compact the
//! matching lanes with a precomputed permutation table, and advance the
//! block with the smaller maximum. Sorted, duplicate-free inputs guarantee
//! each lane matches at most once, so the compacted store is exactly the
//! ascending intersection of the two blocks' overlap.

use super::extract_word;
use crate::gallop::branchless_merge_into;
use core::arch::x86_64::*;
use fsi_core::elem::Elem;

/// Byte-shuffle masks compacting the set lanes of a 4-lane match mask to
/// the front (lane order preserved); unused output lanes read 0x80 (zero).
static SSE_COMPACT: [[u8; 16]; 16] = sse_compact_table();

const fn sse_compact_table() -> [[u8; 16]; 16] {
    let mut table = [[0x80u8; 16]; 16];
    let mut mask = 0usize;
    while mask < 16 {
        let mut out_lane = 0usize;
        let mut lane = 0usize;
        while lane < 4 {
            if mask & (1 << lane) != 0 {
                let mut byte = 0usize;
                while byte < 4 {
                    // audit:allow(hot_path_index): const-eval table builder: mask < 16 and out_lane*4+byte < 16 by the loop bounds; an overrun is a compile error
                    table[mask][out_lane * 4 + byte] = (lane * 4 + byte) as u8;
                    byte += 1;
                }
                out_lane += 1;
            }
            lane += 1;
        }
        mask += 1;
    }
    table
}

/// Dword-permutation indices compacting the set lanes of an 8-lane match
/// mask to the front (lane order preserved), for `vpermd`.
static AVX_COMPACT: [[u32; 8]; 256] = avx_compact_table();

const fn avx_compact_table() -> [[u32; 8]; 256] {
    let mut table = [[0u32; 8]; 256];
    let mut mask = 0usize;
    while mask < 256 {
        let mut out_lane = 0usize;
        let mut lane = 0usize;
        while lane < 8 {
            if mask & (1 << lane) != 0 {
                // audit:allow(hot_path_index): const-eval table builder: mask < 256 and out_lane < 8 by the loop bounds; an overrun is a compile error
                table[mask][out_lane] = lane as u32;
                out_lane += 1;
            }
            lane += 1;
        }
        mask += 1;
    }
    table
}

/// SSE4.1 merge intersect of sorted, duplicate-free slices; appends the
/// ascending intersection to `out`.
///
/// # Safety
/// The CPU must support SSE4.1 (which implies the SSSE3 byte shuffle).
#[target_feature(enable = "sse4.1")]
pub unsafe fn merge_sse(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    if na >= 4 && nb >= 4 {
        // The intersection holds at most min(na, nb) elements; one reserve
        // up front keeps >= 4 spare slots for every block store below.
        out.reserve(na.min(nb) + 4);
        loop {
            // SAFETY: the loop invariant holds i + 4 <= na and j + 4 <= nb
            // (established by the entry check, maintained by `done`), so
            // both 4-lane unaligned loads stay in bounds.
            let (va, vb) = unsafe {
                (
                    _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i),
                    _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i),
                )
            };
            // Compare va against every cyclic rotation of vb: all 16 lane
            // pairs in 4 compares.
            let rot1 = _mm_shuffle_epi32::<0b00_11_10_01>(vb);
            let rot2 = _mm_shuffle_epi32::<0b01_00_11_10>(vb);
            let rot3 = _mm_shuffle_epi32::<0b10_01_00_11>(vb);
            let cmp = _mm_or_si128(
                _mm_or_si128(_mm_cmpeq_epi32(va, vb), _mm_cmpeq_epi32(va, rot1)),
                _mm_or_si128(_mm_cmpeq_epi32(va, rot2), _mm_cmpeq_epi32(va, rot3)),
            );
            let mask = _mm_movemask_ps(_mm_castsi128_ps(cmp)) as usize;
            // SAFETY: mask < 16 (a 4-bit movemask) and every table row is
            // exactly 16 bytes.
            let shuffle = unsafe { _mm_loadu_si128(SSE_COMPACT[mask].as_ptr() as *const __m128i) };
            let packed = _mm_shuffle_epi8(va, shuffle);
            let len = out.len();
            debug_assert!(out.capacity() - len >= 4);
            // SAFETY: the reserve above keeps >= 4 spare slots, so the
            // 4-lane store writes into allocated capacity; set_len claims
            // only the count_ones() matched lanes the store initialized.
            unsafe {
                _mm_storeu_si128(out.as_mut_ptr().add(len) as *mut __m128i, packed);
                out.set_len(len + mask.count_ones() as usize);
            }
            // Advance the block with the smaller maximum (both on a tie).
            // SAFETY: i + 4 <= na and j + 4 <= nb by the loop invariant.
            let (a_max, b_max) = unsafe { (*a.get_unchecked(i + 3), *b.get_unchecked(j + 3)) };
            let mut done = false;
            if a_max <= b_max {
                i += 4;
                done |= i + 4 > na;
            }
            if b_max <= a_max {
                j += 4;
                done |= j + 4 > nb;
            }
            if done {
                break;
            }
        }
    }
    branchless_merge_into(&a[i..], &b[j..], out);
}

/// AVX2 merge intersect of sorted, duplicate-free slices; appends the
/// ascending intersection to `out`. The ragged tail falls through the
/// SSE4.1 kernel and then the scalar merge.
///
/// # Safety
/// The CPU must support AVX2 (which implies SSE4.1).
#[target_feature(enable = "avx2")]
pub unsafe fn merge_avx2(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    if na >= 8 && nb >= 8 {
        out.reserve(na.min(nb) + 8);
        // Lane rotations by 1 and 2 for vpermd; chaining rot2 keeps the
        // dependency depth at ~4 permutes instead of 7.
        let rot1_idx = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
        let rot2_idx = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
        loop {
            // SAFETY: the loop invariant holds i + 8 <= na and j + 8 <= nb
            // (established by the entry check, maintained by `done`), so
            // both 8-lane unaligned loads stay in bounds.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i),
                    _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i),
                )
            };
            // Compare va against every cyclic rotation of vb: all 64 lane
            // pairs in 8 compares.
            let r1 = _mm256_permutevar8x32_epi32(vb, rot1_idx);
            let r2 = _mm256_permutevar8x32_epi32(vb, rot2_idx);
            let r3 = _mm256_permutevar8x32_epi32(r1, rot2_idx);
            let r4 = _mm256_permutevar8x32_epi32(r2, rot2_idx);
            let r5 = _mm256_permutevar8x32_epi32(r3, rot2_idx);
            let r6 = _mm256_permutevar8x32_epi32(r4, rot2_idx);
            let r7 = _mm256_permutevar8x32_epi32(r5, rot2_idx);
            let cmp = _mm256_or_si256(
                _mm256_or_si256(
                    _mm256_or_si256(_mm256_cmpeq_epi32(va, vb), _mm256_cmpeq_epi32(va, r1)),
                    _mm256_or_si256(_mm256_cmpeq_epi32(va, r2), _mm256_cmpeq_epi32(va, r3)),
                ),
                _mm256_or_si256(
                    _mm256_or_si256(_mm256_cmpeq_epi32(va, r4), _mm256_cmpeq_epi32(va, r5)),
                    _mm256_or_si256(_mm256_cmpeq_epi32(va, r6), _mm256_cmpeq_epi32(va, r7)),
                ),
            );
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp)) as usize;
            // SAFETY: mask < 256 (an 8-bit movemask) and every table row
            // is exactly 32 bytes.
            let perm = unsafe { _mm256_loadu_si256(AVX_COMPACT[mask].as_ptr() as *const __m256i) };
            let packed = _mm256_permutevar8x32_epi32(va, perm);
            let len = out.len();
            debug_assert!(out.capacity() - len >= 8);
            // SAFETY: the reserve above keeps >= 8 spare slots, so the
            // 8-lane store writes into allocated capacity; set_len claims
            // only the count_ones() matched lanes the store initialized.
            unsafe {
                _mm256_storeu_si256(out.as_mut_ptr().add(len) as *mut __m256i, packed);
                out.set_len(len + mask.count_ones() as usize);
            }
            // SAFETY: i + 8 <= na and j + 8 <= nb by the loop invariant.
            let (a_max, b_max) = unsafe { (*a.get_unchecked(i + 7), *b.get_unchecked(j + 7)) };
            let mut done = false;
            if a_max <= b_max {
                i += 8;
                done |= i + 8 > na;
            }
            if b_max <= a_max {
                j += 8;
                done |= j + 8 > nb;
            }
            if done {
                break;
            }
        }
    }
    // SAFETY: AVX2 implies SSE4.1, so the callee's CPU requirement holds.
    unsafe { merge_sse(&a[i..], &b[j..], out) };
}

/// SSE4.1 bitmap `AND` + extract: 2 words per `AND`, `PTEST` skip of
/// all-zero pairs, scalar trailing-zeros extraction of survivors.
///
/// # Safety
/// The CPU must support SSE4.1. `a` and `b` must be equal length.
#[target_feature(enable = "sse4.1")]
pub unsafe fn and_extract_sse(base: Elem, a: &[u64], b: &[u64], out: &mut Vec<Elem>) {
    let n = a.len();
    let mut w = 0usize;
    while w + 2 <= n {
        // SAFETY: w + 2 <= n = a.len(), and the caller contract makes
        // b the same length, so both 2-word loads stay in bounds.
        let (va, vb) = unsafe {
            (
                _mm_loadu_si128(a.as_ptr().add(w) as *const __m128i),
                _mm_loadu_si128(b.as_ptr().add(w) as *const __m128i),
            )
        };
        let v = _mm_and_si128(va, vb);
        if _mm_testz_si128(v, v) == 0 {
            let mut words = [0u64; 2];
            // SAFETY: `words` is exactly 16 writable bytes on the stack.
            unsafe { _mm_storeu_si128(words.as_mut_ptr() as *mut __m128i, v) };
            for (t, &word) in words.iter().enumerate() {
                if word != 0 {
                    extract_word(base | (((w + t) as u32) << 6), word, out);
                }
            }
        }
        w += 2;
    }
    if w < n {
        let word = a[w] & b[w];
        if word != 0 {
            extract_word(base | ((w as u32) << 6), word, out);
        }
    }
}

/// AVX2 bitmap `AND` + extract: 4 words per `AND`, `PTEST` skip of
/// all-zero quads, scalar trailing-zeros extraction of survivors.
///
/// # Safety
/// The CPU must support AVX2. `a` and `b` must be equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn and_extract_avx2(base: Elem, a: &[u64], b: &[u64], out: &mut Vec<Elem>) {
    let n = a.len();
    let mut w = 0usize;
    while w + 4 <= n {
        // SAFETY: w + 4 <= n = a.len(), and the caller contract makes
        // b the same length, so both 4-word loads stay in bounds.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(a.as_ptr().add(w) as *const __m256i),
                _mm256_loadu_si256(b.as_ptr().add(w) as *const __m256i),
            )
        };
        let v = _mm256_and_si256(va, vb);
        if _mm256_testz_si256(v, v) == 0 {
            let mut words = [0u64; 4];
            // SAFETY: `words` is exactly 32 writable bytes on the stack.
            unsafe { _mm256_storeu_si256(words.as_mut_ptr() as *mut __m256i, v) };
            for (t, &word) in words.iter().enumerate() {
                if word != 0 {
                    extract_word(base | (((w + t) as u32) << 6), word, out);
                }
            }
        }
        w += 4;
    }
    while w < n {
        let word = a[w] & b[w];
        if word != 0 {
            extract_word(base | ((w as u32) << 6), word, out);
        }
        w += 1;
    }
}

/// SSE4.1 in-place `AND` with a folded all-zero test (one `PTEST` of the
/// OR-accumulator at the end).
///
/// # Safety
/// The CPU must support SSE4.1. `acc` and `other` must be equal length.
#[target_feature(enable = "sse4.1")]
pub unsafe fn and_in_place_sse(acc: &mut [u64], other: &[u64]) -> bool {
    let n = acc.len();
    let mut any = _mm_setzero_si128();
    let mut w = 0usize;
    while w + 2 <= n {
        // SAFETY: w + 2 <= n = acc.len(), and the caller contract makes
        // `other` the same length, so the loads and the write-back stay
        // in bounds.
        let (va, vb) = unsafe {
            (
                _mm_loadu_si128(acc.as_ptr().add(w) as *const __m128i),
                _mm_loadu_si128(other.as_ptr().add(w) as *const __m128i),
            )
        };
        let v = _mm_and_si128(va, vb);
        // SAFETY: same bound as the loads; the store writes back in place.
        unsafe { _mm_storeu_si128(acc.as_mut_ptr().add(w) as *mut __m128i, v) };
        any = _mm_or_si128(any, v);
        w += 2;
    }
    let mut tail_any = 0u64;
    while w < n {
        acc[w] &= other[w];
        tail_any |= acc[w];
        w += 1;
    }
    _mm_testz_si128(any, any) == 1 && tail_any == 0
}

/// AVX2 in-place `AND` with a folded all-zero test.
///
/// # Safety
/// The CPU must support AVX2. `acc` and `other` must be equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn and_in_place_avx2(acc: &mut [u64], other: &[u64]) -> bool {
    let n = acc.len();
    let mut any = _mm256_setzero_si256();
    let mut w = 0usize;
    while w + 4 <= n {
        // SAFETY: w + 4 <= n = acc.len(), and the caller contract makes
        // `other` the same length, so the loads and the write-back stay
        // in bounds.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(acc.as_ptr().add(w) as *const __m256i),
                _mm256_loadu_si256(other.as_ptr().add(w) as *const __m256i),
            )
        };
        let v = _mm256_and_si256(va, vb);
        // SAFETY: same bound as the loads; the store writes back in place.
        unsafe { _mm256_storeu_si256(acc.as_mut_ptr().add(w) as *mut __m256i, v) };
        any = _mm256_or_si256(any, v);
        w += 4;
    }
    let mut tail_any = 0u64;
    while w < n {
        acc[w] &= other[w];
        tail_any |= acc[w];
        w += 1;
    }
    _mm256_testz_si256(any, any) == 1 && tail_any == 0
}

/// SSE4.1 in-place `OR` — the union sweep's word primitive. No zero test:
/// a union accumulator only gains bits.
///
/// # Safety
/// The CPU must support SSE4.1. `acc` and `other` must be equal length.
#[target_feature(enable = "sse4.1")]
pub unsafe fn or_in_place_sse(acc: &mut [u64], other: &[u64]) {
    let n = acc.len();
    let mut w = 0usize;
    while w + 2 <= n {
        // SAFETY: w + 2 <= n = acc.len(), and the caller contract makes
        // `other` the same length, so the loads and the write-back stay
        // in bounds.
        let (va, vb) = unsafe {
            (
                _mm_loadu_si128(acc.as_ptr().add(w) as *const __m128i),
                _mm_loadu_si128(other.as_ptr().add(w) as *const __m128i),
            )
        };
        // SAFETY: same bound as the loads; the store writes back in place.
        unsafe {
            _mm_storeu_si128(
                acc.as_mut_ptr().add(w) as *mut __m128i,
                _mm_or_si128(va, vb),
            )
        };
        w += 2;
    }
    while w < n {
        acc[w] |= other[w];
        w += 1;
    }
}

/// AVX2 in-place `OR` — 4 words per instruction.
///
/// # Safety
/// The CPU must support AVX2. `acc` and `other` must be equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn or_in_place_avx2(acc: &mut [u64], other: &[u64]) {
    let n = acc.len();
    let mut w = 0usize;
    while w + 4 <= n {
        // SAFETY: w + 4 <= n = acc.len(), and the caller contract makes
        // `other` the same length, so the loads and the write-back stay
        // in bounds.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(acc.as_ptr().add(w) as *const __m256i),
                _mm256_loadu_si256(other.as_ptr().add(w) as *const __m256i),
            )
        };
        // SAFETY: same bound as the loads; the store writes back in place.
        unsafe {
            _mm256_storeu_si256(
                acc.as_mut_ptr().add(w) as *mut __m256i,
                _mm256_or_si256(va, vb),
            )
        };
        w += 4;
    }
    while w < n {
        acc[w] |= other[w];
        w += 1;
    }
}

/// SSE4.1 signature scan: `AND`s 2 fine signatures against their aligned
/// coarse signatures per iteration, `PTEST`-skips all-zero pairs, and
/// calls `verify` for each surviving fine bucket.
///
/// # Safety
/// The CPU must support SSE4.1. Every fine bucket must have an aligned
/// coarse bucket — `(fine.len() - 1) >> dt < coarse.len()` (guaranteed by
/// the nested-bucket construction); a violation panics on the safe index.
#[target_feature(enable = "sse4.1")]
pub unsafe fn sig_scan_sse(fine: &[u64], coarse: &[u64], dt: u32, verify: &mut dyn FnMut(usize)) {
    let n = fine.len();
    let mut z = 0usize;
    while z + 2 <= n {
        // SAFETY: z + 2 <= n = fine.len(); when dt == 0 the caller
        // contract gives coarse.len() >= fine.len(), so both 2-word
        // loads stay in bounds.
        let vf = unsafe { _mm_loadu_si128(fine.as_ptr().add(z) as *const __m128i) };
        let vc = if dt == 0 {
            // SAFETY: same bound as the `vf` load — dt == 0 means coarse
            // is at least as long as fine.
            unsafe { _mm_loadu_si128(coarse.as_ptr().add(z) as *const __m128i) }
        } else {
            _mm_set_epi64x(coarse[(z + 1) >> dt] as i64, coarse[z >> dt] as i64)
        };
        let v = _mm_and_si128(vf, vc);
        if _mm_testz_si128(v, v) == 0 {
            // Which of the two lanes are non-zero? cmpeq against zero
            // marks the zero lanes; movemask_pd gives one bit per lane.
            let zero = _mm_cmpeq_epi64(v, _mm_setzero_si128());
            let live = !(_mm_movemask_pd(_mm_castsi128_pd(zero)) as usize) & 0b11;
            if live & 1 != 0 {
                verify(z);
            }
            if live & 2 != 0 {
                verify(z + 1);
            }
        }
        z += 2;
    }
    if z < n && fine[z] & coarse[z >> dt] != 0 {
        verify(z);
    }
}

/// AVX2 signature scan: 4 bucket pairs per iteration.
///
/// # Safety
/// The CPU must support AVX2. Every fine bucket must have an aligned
/// coarse bucket — `(fine.len() - 1) >> dt < coarse.len()` (guaranteed by
/// the nested-bucket construction); a violation panics on the safe index.
#[target_feature(enable = "avx2")]
pub unsafe fn sig_scan_avx2(fine: &[u64], coarse: &[u64], dt: u32, verify: &mut dyn FnMut(usize)) {
    let n = fine.len();
    let mut z = 0usize;
    while z + 4 <= n {
        // SAFETY: z + 4 <= n = fine.len(); when dt == 0 the caller
        // contract gives coarse.len() >= fine.len(), so both 4-word
        // loads stay in bounds.
        let vf = unsafe { _mm256_loadu_si256(fine.as_ptr().add(z) as *const __m256i) };
        let vc = if dt == 0 {
            // SAFETY: same bound as the `vf` load — dt == 0 means coarse
            // is at least as long as fine.
            unsafe { _mm256_loadu_si256(coarse.as_ptr().add(z) as *const __m256i) }
        } else {
            _mm256_set_epi64x(
                coarse[(z + 3) >> dt] as i64,
                coarse[(z + 2) >> dt] as i64,
                coarse[(z + 1) >> dt] as i64,
                coarse[z >> dt] as i64,
            )
        };
        let v = _mm256_and_si256(vf, vc);
        if _mm256_testz_si256(v, v) == 0 {
            let zero = _mm256_cmpeq_epi64(v, _mm256_setzero_si256());
            let mut live = !(_mm256_movemask_pd(_mm256_castsi256_pd(zero)) as usize) & 0b1111;
            while live != 0 {
                verify(z + live.trailing_zeros() as usize);
                live &= live - 1;
            }
        }
        z += 4;
    }
    while z < n {
        if fine[z] & coarse[z >> dt] != 0 {
            verify(z);
        }
        z += 1;
    }
}

/// Lane selector broadcasting dword 3 (the low 128-bit lane's prefix-sum
/// total) to every lane of a `vpermd`.
static BCAST_LANE3: [u32; 8] = [3; 8];

/// Adds the broadcast low-lane total only into the high 128-bit lane.
static HI_LANE_MASK: [u32; 8] = [0, 0, 0, 0, u32::MAX, u32::MAX, u32::MAX, u32::MAX];

/// AVX2 bulk delta unpack: gathers 8 `width`-bit packed fields per
/// iteration, variable-shifts each into place, masks, and rebuilds
/// absolute doc ids with an in-register inclusive prefix sum (two in-lane
/// shifted adds, one cross-lane fix-up, plus the running carry). The
/// ragged tail (< 8 fields) decodes on the scalar word loop, so output is
/// byte-identical to the scalar twin (`unpack_deltas_scalar`).
///
/// # Safety
/// The CPU must support AVX2. `count >= 2`, `width` must be in
/// `1..=MAX_GATHER_WIDTH` (so a field starting at any in-byte
/// shift fits one 4-byte gather lane), and `bytes` must extend at least 8
/// bytes past the last field's starting byte — the dispatcher asserts
/// this padding before selecting this path.
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_deltas_avx2(
    bytes: &[u8],
    bit_offset: usize,
    width: u32,
    first: Elem,
    count: usize,
    out: &mut Vec<Elem>,
) {
    let fields = count - 1;
    let w = width as usize;
    out.reserve(count);
    out.push(first);
    let mut carry = first;
    let mask = _mm256_set1_epi32(((1u64 << width) - 1) as i32);
    let ones = _mm256_set1_epi32(1);
    // SAFETY: both statics are 8 aligned-enough u32s (loadu has no
    // alignment requirement) read in full.
    let bcast3 = unsafe { _mm256_loadu_si256(BCAST_LANE3.as_ptr() as *const __m256i) };
    // SAFETY: as above.
    let hi_mask = unsafe { _mm256_loadu_si256(HI_LANE_MASK.as_ptr() as *const __m256i) };
    let base = bytes.as_ptr();
    let mut i = 0usize;
    while i + 8 <= fields {
        let p0 = bit_offset + i * w;
        let offs = _mm256_set_epi32(
            ((p0 + 7 * w) >> 3) as i32,
            ((p0 + 6 * w) >> 3) as i32,
            ((p0 + 5 * w) >> 3) as i32,
            ((p0 + 4 * w) >> 3) as i32,
            ((p0 + 3 * w) >> 3) as i32,
            ((p0 + 2 * w) >> 3) as i32,
            ((p0 + w) >> 3) as i32,
            (p0 >> 3) as i32,
        );
        let shifts = _mm256_set_epi32(
            ((p0 + 7 * w) & 7) as i32,
            ((p0 + 6 * w) & 7) as i32,
            ((p0 + 5 * w) & 7) as i32,
            ((p0 + 4 * w) & 7) as i32,
            ((p0 + 3 * w) & 7) as i32,
            ((p0 + 2 * w) & 7) as i32,
            ((p0 + w) & 7) as i32,
            (p0 & 7) as i32,
        );
        // SAFETY: every lane's byte offset is at most the last field's
        // starting byte, and the caller guarantees >= 8 padding bytes
        // beyond it, so each 4-byte gathered load stays inside `bytes`.
        let gathered = unsafe { _mm256_i32gather_epi32::<1>(base as *const i32, offs) };
        let deltas = _mm256_and_si256(_mm256_srlv_epi32(gathered, shifts), mask);
        let gaps = _mm256_add_epi32(deltas, ones);
        // Inclusive prefix sum within each 128-bit lane…
        let s1 = _mm256_add_epi32(gaps, _mm256_slli_si256::<4>(gaps));
        let s2 = _mm256_add_epi32(s1, _mm256_slli_si256::<8>(s1));
        // …then push the low lane's total into the high lane only.
        let low_total = _mm256_permutevar8x32_epi32(s2, bcast3);
        let scan = _mm256_add_epi32(s2, _mm256_and_si256(low_total, hi_mask));
        let abs = _mm256_add_epi32(scan, _mm256_set1_epi32(carry as i32));
        let len = out.len();
        out.reserve(8);
        // SAFETY: the reserve above guarantees capacity for 8 more lanes;
        // storeu is unaligned-safe and set_len only covers initialized
        // lanes.
        unsafe {
            _mm256_storeu_si256(out.as_mut_ptr().add(len) as *mut __m256i, abs);
            out.set_len(len + 8);
        }
        carry = _mm256_extract_epi32::<7>(abs) as u32;
        i += 8;
    }
    // Ragged tail: the same word loop as the scalar twin.
    let m = (1u64 << width) - 1;
    let mut pos = bit_offset + i * w;
    while i < fields {
        let byte = pos >> 3;
        // audit:allow(hot_path_panic): the dispatcher asserted 8 padding bytes past the last field's byte
        let word = u64::from_le_bytes(bytes[byte..byte + 8].try_into().expect("8-byte window"));
        carry += ((word >> (pos & 7)) & m) as u32 + 1;
        out.push(carry);
        pos += w;
        i += 1;
    }
}
