//! SIMD acceleration layer: explicit SSE4.1/AVX2 paths with runtime
//! dispatch, and a portable scalar fallback that compiles on any target.
//!
//! The paper's word-RAM algorithms buy their speedup from packing set
//! structure into `u64`s and intersecting with single `AND`s; modern x86
//! exposes 128- and 256-bit lanes for exactly the same shapes. This module
//! holds the three vectorized primitives the kernels above bottom out in:
//!
//! * [`merge_into`] — the shuffle-network vectorized merge intersect for
//!   sorted `u32` slices (the balanced-size regime of
//!   [`GallopingSet`](crate::GallopingSet)): load a block from each side,
//!   compare **all lane pairs** via cyclic rotations, compact the matches
//!   with a permutation lookup, and advance whichever block has the
//!   smaller maximum. 16 (SSE) or 64 (AVX2) element comparisons per
//!   iteration against the scalar merge's one.
//! * [`and_extract`] / [`and_in_place`] — wide bitmap `AND` for
//!   [`BitmapSet`](crate::BitmapSet)/[`BitmapAnd`](crate::multiway::BitmapAnd)
//!   chunk sweeps: `AND` 2 (SSE) or 4 (AVX2) 64-bit words per instruction,
//!   reject all-zero groups with a single `PTEST`, and fall into the
//!   trailing-zeros extraction only for groups that survive.
//! * [`unpack_deltas`] — bulk block decode for the compressed-domain
//!   execution path (`fsi-compress`'s `BlockPostings`): gather 8
//!   fixed-width packed deltas per iteration, variable-shift them into
//!   place, and rebuild absolute doc ids with an in-register prefix sum —
//!   the step that turns a 128-doc compressed block into kernel-ready
//!   `u32`s without a bit-serial loop.
//! * [`sig_scan`] — vectorized signature compare for
//!   [`SigFilterSet`](crate::SigFilterSet): `AND`s 2/4 fine-bucket
//!   signatures against their aligned coarse signatures at once and hands
//!   only the non-zero bucket pairs to the verify merge — FESIA's
//!   "compare signatures in SIMD, intersect only surviving segments".
//!
//! ## Dispatch
//!
//! [`SimdLevel::detect`] probes the CPU once (via
//! `is_x86_feature_detected!`) and caches the answer; every public entry
//! point reads [`SimdLevel::active`], which is the hardware level clamped
//! by two knobs:
//!
//! 1. the `force-scalar` cargo feature compiles the `std::arch` paths out
//!    entirely (the build is byte-for-byte portable — this is what the CI
//!    `force-scalar` matrix leg and the `aarch64` cross-check build);
//! 2. the `FSI_SIMD` environment variable (`scalar` | `sse4.1` | `avx2`,
//!    read once) and the [`with_level`] test/bench override clamp at
//!    runtime, so both paths are exercisable on one machine in one build.
//!
//! A clamp can only *lower* the level: nothing can select an instruction
//! set the CPU does not report. Every `*_at` function takes the level
//! explicitly and is total for any [`SimdLevel`] — callers may always pass
//! [`SimdLevel::Scalar`]; passing a hardware level above
//! [`SimdLevel::detect`] is saturated down rather than trusted.
//!
//! On non-x86_64 targets (or under `force-scalar`) everything in this
//! module compiles to the scalar fallbacks with zero `unsafe`.

use fsi_core::elem::Elem;
use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod x86;

/// An instruction-set tier the dispatcher can select. Ordered: higher
/// levels strictly extend lower ones on real hardware (any CPU with AVX2
/// has SSE4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar code — compiles and runs on any target.
    Scalar = 0,
    /// 128-bit `std::arch` paths (SSE4.1, which implies SSSE3's shuffles).
    Sse41 = 1,
    /// 256-bit `std::arch` paths (AVX2).
    Avx2 = 2,
}

/// Cached hardware detection; `u8::MAX` = not probed yet.
static DETECTED: AtomicU8 = AtomicU8::new(u8::MAX);
/// Runtime clamp from `FSI_SIMD`/[`with_level`]; `u8::MAX` = none.
static OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);
/// Whether `FSI_SIMD` has been consulted; folds into `OVERRIDE` once.
static ENV_READ: AtomicU8 = AtomicU8::new(0);

impl SimdLevel {
    /// Every tier, ascending.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Sse41, SimdLevel::Avx2];

    /// The label benchmarks and telemetry report.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "Scalar",
            SimdLevel::Sse41 => "Sse4.1",
            SimdLevel::Avx2 => "Avx2",
        }
    }

    /// Parses the [`SimdLevel::name`] spellings plus the `FSI_SIMD`
    /// environment-variable spellings (case-insensitive).
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "sse4.1" | "sse41" | "sse" => Some(SimdLevel::Sse41),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }

    /// How many 32-bit lanes one register holds at this level (1 for
    /// scalar) — the block size of the vectorized merge, which the
    /// remainder-hostile differential tests pivot on.
    pub fn lanes32(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse41 => 4,
            SimdLevel::Avx2 => 8,
        }
    }

    /// How many 64-bit words one register holds at this level (1 for
    /// scalar) — the group size of the bitmap `AND` and signature scans.
    pub fn lanes64(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse41 => 2,
            SimdLevel::Avx2 => 4,
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => SimdLevel::Sse41,
            2 => SimdLevel::Avx2,
            _ => SimdLevel::Scalar,
        }
    }

    /// The best tier this build can run on this CPU. Probed once and
    /// cached. Always [`SimdLevel::Scalar`] off x86_64 or under the
    /// `force-scalar` feature.
    pub fn detect() -> SimdLevel {
        let cached = DETECTED.load(Ordering::Relaxed);
        if cached != u8::MAX {
            return SimdLevel::from_u8(cached);
        }
        let level = Self::probe();
        DETECTED.store(level as u8, Ordering::Relaxed);
        level
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    fn probe() -> SimdLevel {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else if std::arch::is_x86_feature_detected!("sse4.1") {
            SimdLevel::Sse41
        } else {
            SimdLevel::Scalar
        }
    }

    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
    fn probe() -> SimdLevel {
        SimdLevel::Scalar
    }

    /// The tier the dispatched entry points run right now:
    /// [`SimdLevel::detect`] clamped by `FSI_SIMD` and any [`with_level`]
    /// override. This is what `BENCH_simd.json` stamps as `active_level`.
    pub fn active() -> SimdLevel {
        let hw = Self::detect();
        // Plain load on the hot path; the one-time env fold races benignly
        // (parsing is idempotent) and never RMWs a shared line per call.
        if ENV_READ.load(Ordering::Relaxed) == 0 {
            if let Some(l) = std::env::var("FSI_SIMD")
                .ok()
                .as_deref()
                .and_then(Self::parse)
            {
                OVERRIDE.store(l as u8, Ordering::Relaxed);
            }
            ENV_READ.store(1, Ordering::Relaxed);
        }
        let ov = OVERRIDE.load(Ordering::Relaxed);
        if ov == u8::MAX {
            hw
        } else {
            hw.min(SimdLevel::from_u8(ov))
        }
    }

    /// Saturates `self` to what the hardware supports — the `*_at` entry
    /// points call this, so a level read from config can never select
    /// instructions the CPU lacks.
    pub fn saturate(self) -> SimdLevel {
        self.min(Self::detect())
    }
}

/// Every tier available on this machine and build, ascending (always
/// starts with [`SimdLevel::Scalar`]).
pub fn available_levels() -> Vec<SimdLevel> {
    SimdLevel::ALL
        .into_iter()
        .filter(|&l| l <= SimdLevel::detect())
        .collect()
}

/// Runs `f` with the dispatched level clamped to `level` (saturated to the
/// hardware), restoring the previous clamp afterwards — how benchmarks and
/// the differential suite exercise the scalar twin of every SIMD path in
/// one process.
///
/// Calls are serialized by a global lock (the clamp is process-wide
/// state); intersections running concurrently on *other* threads observe
/// the clamp too, so this is a test/bench facility, not a serving-path
/// API. Kernels that must pick a level on the hot path take it explicitly
/// via the `*_at` functions.
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    thread_local! {
        static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }
    // Reentrant on the same thread: only the outermost call takes the
    // cross-thread lock (a nested lock attempt would self-deadlock).
    let _guard = if DEPTH.with(|d| d.get()) == 0 {
        Some(
            LOCK.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    } else {
        None
    };
    DEPTH.with(|d| d.set(d.get() + 1));
    // Make sure FSI_SIMD is folded in before saving the previous clamp.
    let _ = SimdLevel::active();
    let prev = OVERRIDE.swap(level as u8, Ordering::Relaxed);
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
            DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Vectorized merge intersect
// ---------------------------------------------------------------------------

/// Appends `a ∩ b` (both sorted, duplicate-free) to `out`, ascending, at
/// the dispatched [`SimdLevel::active`] level.
#[inline]
pub fn merge_into(a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    merge_into_at(SimdLevel::active(), a, b, out)
}

/// [`merge_into`] at an explicit level (saturated to the hardware).
/// [`SimdLevel::Scalar`] is the branchless two-pointer merge; the SIMD
/// tiers run the block compare-and-compact network and finish the ragged
/// tail with the same scalar merge, so output is byte-identical across
/// levels.
pub fn merge_into_at(level: SimdLevel, a: &[Elem], b: &[Elem], out: &mut Vec<Elem>) {
    match level.saturate() {
        SimdLevel::Scalar => crate::gallop::branchless_merge_into(a, b, out),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: saturate() capped the level at SimdLevel::detect(), so
        // the corresponding CPU features are present.
        SimdLevel::Sse41 => unsafe { x86::merge_sse(a, b, out) },
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: saturate() capped the level at SimdLevel::detect(), and Avx2 implies the avx2 feature (plus sse4.1) is present on this CPU.
        SimdLevel::Avx2 => unsafe { x86::merge_avx2(a, b, out) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
        _ => crate::gallop::branchless_merge_into(a, b, out),
    }
}

// ---------------------------------------------------------------------------
// Bulk block unpack (compressed-domain decode)
// ---------------------------------------------------------------------------

/// Widest packed field [`unpack_deltas`] accepts: doc-id gaps fit `u32`.
pub const MAX_PACK_WIDTH: u32 = 32;

/// Widest packed field the AVX2 gather path handles: a field starting at
/// any in-byte shift (0..=7) must fit the 4 gathered bytes
/// (`7 + width <= 32`). Wider blocks — astronomically rare gaps — decode
/// on the scalar twin.
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
const MAX_GATHER_WIDTH: u32 = 25;

/// Decodes one delta-compressed block into absolute doc ids, appending
/// `count` ascending values to `out` at the dispatched
/// [`SimdLevel::active`] level.
///
/// The block stores `count - 1` consecutive `width`-bit fields starting at
/// `bit_offset` in the LSB-first packed payload `bytes`; field `i` holds
/// `gap - 1` for the gap between elements `i` and `i + 1`, and the block's
/// first element `first` lives in the skip entry, not the payload. A
/// `width` of 0 therefore encodes a fully dense run with no payload bits
/// at all.
#[inline]
pub fn unpack_deltas(
    bytes: &[u8],
    bit_offset: usize,
    width: u32,
    first: Elem,
    count: usize,
    out: &mut Vec<Elem>,
) {
    unpack_deltas_at(
        SimdLevel::active(),
        bytes,
        bit_offset,
        width,
        first,
        count,
        out,
    )
}

/// [`unpack_deltas`] at an explicit level (saturated to the hardware).
/// The AVX2 tier gathers 8 fields per iteration and prefix-sums them in
/// register; SSE4.1 has no gather, so it shares the scalar twin. Output is
/// byte-identical across levels.
///
/// Panics when `width` exceeds [`MAX_PACK_WIDTH`] or when `bytes` does not
/// extend at least 8 bytes past the last field's starting byte — every
/// decode (scalar and SIMD alike) loads whole little-endian words, so the
/// builder pads the payload and a safe API must never read out of bounds.
pub fn unpack_deltas_at(
    level: SimdLevel,
    bytes: &[u8],
    bit_offset: usize,
    width: u32,
    first: Elem,
    count: usize,
    out: &mut Vec<Elem>,
) {
    if count == 0 {
        return;
    }
    assert!(width <= MAX_PACK_WIDTH, "packed field wider than a doc id");
    if width == 0 || count == 1 {
        // Dense run (every gap is 1) or a lone element: no payload bits.
        out.extend((0..count as u32).map(|i| first + i));
        return;
    }
    let fields = count - 1;
    let last_byte = (bit_offset + (fields - 1) * width as usize) / 8;
    assert!(
        last_byte + 8 <= bytes.len(),
        "packed payload missing its 8 tail padding bytes"
    );
    match level.saturate() {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: saturate() capped the level at SimdLevel::detect(), so
        // AVX2 is present; the assert above plus the width guard keep
        // every gathered 4-byte lane inside `bytes`.
        SimdLevel::Avx2 if width <= MAX_GATHER_WIDTH => unsafe {
            x86::unpack_deltas_avx2(bytes, bit_offset, width, first, count, out)
        },
        // SSE4.1 lacks a gather; wide fields skip the gather path too.
        _ => unpack_deltas_scalar(bytes, bit_offset, width, first, count, out),
    }
}

pub(crate) fn unpack_deltas_scalar(
    bytes: &[u8],
    bit_offset: usize,
    width: u32,
    first: Elem,
    count: usize,
    out: &mut Vec<Elem>,
) {
    let fields = count - 1;
    // Re-assert the caller's padding contract so every 8-byte window below
    // is in bounds even if this twin is reached directly.
    assert!(
        fields == 0 || (bit_offset + (fields - 1) * width as usize) / 8 + 8 <= bytes.len(),
        "packed payload missing its 8 tail padding bytes"
    );
    out.reserve(count);
    let mut val = first;
    out.push(val);
    let mask = (1u64 << width) - 1;
    let mut pos = bit_offset;
    for _ in 0..fields {
        let byte = pos >> 3;
        // audit:allow(hot_path_panic): the assert above keeps every 8-byte window in bounds
        let word = u64::from_le_bytes(bytes[byte..byte + 8].try_into().expect("8-byte window"));
        val += ((word >> (pos & 7)) & mask) as u32 + 1;
        out.push(val);
        pos += width as usize;
    }
}

// ---------------------------------------------------------------------------
// Wide bitmap AND
// ---------------------------------------------------------------------------

/// Appends the members of `a AND b` to `out`, ascending, where `a` and `b`
/// are equal-length 64-bit bitmap slices covering values
/// `base .. base + 64·len`, at the dispatched level. The SIMD tiers `AND`
/// 2/4 words per instruction and `PTEST`-skip all-zero groups; extraction
/// of surviving words is the scalar trailing-zeros walk at every level.
#[inline]
pub fn and_extract(base: Elem, a: &[u64], b: &[u64], out: &mut Vec<Elem>) {
    and_extract_at(SimdLevel::active(), base, a, b, out)
}

/// [`and_extract`] at an explicit level (saturated to the hardware).
///
/// Panics when `a` and `b` differ in length — the SIMD tiers read whole
/// blocks from both slices, so the precondition is enforced in release
/// builds too (a safe API must never load out of bounds).
pub fn and_extract_at(level: SimdLevel, base: Elem, a: &[u64], b: &[u64], out: &mut Vec<Elem>) {
    assert_eq!(a.len(), b.len(), "bitmap AND operands differ in length");
    match level.saturate() {
        SimdLevel::Scalar => and_extract_scalar(base, a, b, out),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: level saturated to the detected hardware tier.
        SimdLevel::Sse41 => unsafe { x86::and_extract_sse(base, a, b, out) },
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: saturate() capped the level at SimdLevel::detect(), and Avx2 implies the avx2 feature (plus sse4.1) is present on this CPU.
        SimdLevel::Avx2 => unsafe { x86::and_extract_avx2(base, a, b, out) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
        _ => and_extract_scalar(base, a, b, out),
    }
}

/// ANDs `other` into `acc` word-by-word at the dispatched level; returns
/// `true` iff `acc` is all-zero afterwards (the k-way sweep's early-exit
/// signal). The SIMD tiers fold the zero test into the `AND` pass with an
/// OR-accumulator and one final `PTEST`.
#[inline]
pub fn and_in_place(acc: &mut [u64], other: &[u64]) -> bool {
    and_in_place_at(SimdLevel::active(), acc, other)
}

/// [`and_in_place`] at an explicit level (saturated to the hardware).
///
/// Panics when `acc` and `other` differ in length — the SIMD tiers read
/// whole blocks from both slices, so the precondition is enforced in
/// release builds too.
pub fn and_in_place_at(level: SimdLevel, acc: &mut [u64], other: &[u64]) -> bool {
    assert_eq!(
        acc.len(),
        other.len(),
        "bitmap AND operands differ in length"
    );
    match level.saturate() {
        SimdLevel::Scalar => and_in_place_scalar(acc, other),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: level saturated to the detected hardware tier.
        SimdLevel::Sse41 => unsafe { x86::and_in_place_sse(acc, other) },
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: saturate() capped the level at SimdLevel::detect(), and Avx2 implies the avx2 feature (plus sse4.1) is present on this CPU.
        SimdLevel::Avx2 => unsafe { x86::and_in_place_avx2(acc, other) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
        _ => and_in_place_scalar(acc, other),
    }
}

/// ORs `other` into `acc` word-by-word at the dispatched level — the union
/// sibling of [`and_in_place`], used by the chunked-bitmap `OR` sweep.
/// Unlike the `AND`, there is no zero test: a union accumulator only ever
/// gains bits, so there is nothing to early-exit on.
#[inline]
pub fn or_in_place(acc: &mut [u64], other: &[u64]) {
    or_in_place_at(SimdLevel::active(), acc, other)
}

/// [`or_in_place`] at an explicit level (saturated to the hardware).
///
/// Panics when `acc` and `other` differ in length — the SIMD tiers read
/// whole blocks from both slices, so the precondition is enforced in
/// release builds too.
pub fn or_in_place_at(level: SimdLevel, acc: &mut [u64], other: &[u64]) {
    assert_eq!(
        acc.len(),
        other.len(),
        "bitmap OR operands differ in length"
    );
    match level.saturate() {
        SimdLevel::Scalar => or_in_place_scalar(acc, other),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: level saturated to the detected hardware tier.
        SimdLevel::Sse41 => unsafe { x86::or_in_place_sse(acc, other) },
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: saturate() capped the level at SimdLevel::detect(), and Avx2 implies the avx2 feature (plus sse4.1) is present on this CPU.
        SimdLevel::Avx2 => unsafe { x86::or_in_place_avx2(acc, other) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
        _ => or_in_place_scalar(acc, other),
    }
}

/// Appends the set bits of `word` (offset by `base`) to `out`, ascending —
/// the paper's footnote-1 trailing-zeros walk, shared by every level.
#[inline]
pub(crate) fn extract_word(base: Elem, word: u64, out: &mut Vec<Elem>) {
    let mut w = word;
    while w != 0 {
        out.push(base | w.trailing_zeros());
        w &= w - 1;
    }
}

fn and_extract_scalar(base: Elem, a: &[u64], b: &[u64], out: &mut Vec<Elem>) {
    for (i, (&wa, &wb)) in a.iter().zip(b).enumerate() {
        let word = wa & wb;
        if word != 0 {
            extract_word(base | ((i as u32) << 6), word, out);
        }
    }
}

fn and_in_place_scalar(acc: &mut [u64], other: &[u64]) -> bool {
    let mut any = 0u64;
    for (wa, &wb) in acc.iter_mut().zip(other) {
        *wa &= wb;
        any |= *wa;
    }
    any == 0
}

fn or_in_place_scalar(acc: &mut [u64], other: &[u64]) {
    for (wa, &wb) in acc.iter_mut().zip(other) {
        *wa |= wb;
    }
}

// ---------------------------------------------------------------------------
// Vectorized signature compare
// ---------------------------------------------------------------------------

/// Calls `verify(zf)` for every fine bucket `zf` whose signature `AND`s
/// non-zero with its aligned coarse signature `coarse[zf >> dt]`, at the
/// dispatched level. The SIMD tiers test 2/4 bucket pairs per instruction
/// and reject all-zero groups with one `PTEST` — in the common sparse case
/// no scalar work happens at all between surviving buckets.
#[inline]
pub fn sig_scan(fine: &[u64], coarse: &[u64], dt: u32, verify: &mut dyn FnMut(usize)) {
    sig_scan_at(SimdLevel::active(), fine, coarse, dt, verify)
}

/// [`sig_scan`] at an explicit level (saturated to the hardware).
pub fn sig_scan_at(
    level: SimdLevel,
    fine: &[u64],
    coarse: &[u64],
    dt: u32,
    verify: &mut dyn FnMut(usize),
) {
    // Every fine bucket must have an aligned coarse bucket; the SIMD
    // tiers load whole blocks (for dt == 0, straight from `coarse`), so
    // the precondition is enforced in release builds too — a safe API
    // must never load out of bounds.
    assert!(
        fine.is_empty() || (fine.len() - 1) >> dt < coarse.len(),
        "coarse signature array too short for the fine bucket count"
    );
    match level.saturate() {
        SimdLevel::Scalar => sig_scan_scalar(fine, coarse, dt, verify),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: level saturated to the detected hardware tier.
        SimdLevel::Sse41 => unsafe { x86::sig_scan_sse(fine, coarse, dt, verify) },
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: saturate() capped the level at SimdLevel::detect(), and Avx2 implies the avx2 feature (plus sse4.1) is present on this CPU.
        SimdLevel::Avx2 => unsafe { x86::sig_scan_avx2(fine, coarse, dt, verify) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
        _ => sig_scan_scalar(fine, coarse, dt, verify),
    }
}

pub(crate) fn sig_scan_scalar(
    fine: &[u64],
    coarse: &[u64],
    dt: u32,
    verify: &mut dyn FnMut(usize),
) {
    for (zf, &sig) in fine.iter().enumerate() {
        if sig & coarse[zf >> dt] != 0 {
            verify(zf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Whether the `std::arch` paths are compiled in at all.
    const SIMD_COMPILED: bool = cfg!(all(target_arch = "x86_64", not(feature = "force-scalar")));

    #[test]
    fn detection_is_consistent_and_cached() {
        let first = SimdLevel::detect();
        assert_eq!(first, SimdLevel::detect());
        assert!(SimdLevel::active() <= first);
        let avail = available_levels();
        assert_eq!(avail[0], SimdLevel::Scalar);
        assert_eq!(*avail.last().unwrap(), first);
        if !SIMD_COMPILED {
            assert_eq!(first, SimdLevel::Scalar);
        }
    }

    #[test]
    fn with_level_clamps_and_restores() {
        let before = SimdLevel::active();
        with_level(SimdLevel::Scalar, || {
            assert_eq!(SimdLevel::active(), SimdLevel::Scalar);
            // Nested clamp can only go down from the hardware, never up.
            with_level(SimdLevel::Avx2, || {
                assert_eq!(
                    SimdLevel::active(),
                    SimdLevel::detect().min(SimdLevel::Avx2)
                );
            });
            assert_eq!(SimdLevel::active(), SimdLevel::Scalar);
        });
        assert_eq!(SimdLevel::active(), before);
    }

    #[test]
    fn parse_round_trips_names() {
        for l in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
        }
        assert_eq!(SimdLevel::parse("sse41"), Some(SimdLevel::Sse41));
        assert_eq!(SimdLevel::parse("nope"), None);
    }

    #[test]
    fn lanes_match_register_widths() {
        assert_eq!(SimdLevel::Scalar.lanes32(), 1);
        assert_eq!(SimdLevel::Sse41.lanes32(), 4);
        assert_eq!(SimdLevel::Avx2.lanes32(), 8);
        assert_eq!(SimdLevel::Avx2.lanes64(), 4);
    }

    #[test]
    fn saturate_never_exceeds_hardware() {
        for l in SimdLevel::ALL {
            assert!(l.saturate() <= SimdLevel::detect());
        }
    }

    /// Packs `deltas` (gap-1 values) LSB-first at `width` bits each,
    /// starting at `bit_offset`, with the 8 tail padding bytes the decode
    /// contract requires.
    fn pack(deltas: &[u32], width: u32, bit_offset: usize) -> Vec<u8> {
        let total_bits = bit_offset + deltas.len() * width as usize;
        let mut bytes = vec![0u8; total_bits.div_ceil(8) + 8];
        for (i, &d) in deltas.iter().enumerate() {
            assert!(width == 32 || u64::from(d) < (1 << width));
            for b in 0..width as usize {
                let pos = bit_offset + i * width as usize + b;
                if d & (1 << b) != 0 {
                    bytes[pos / 8] |= 1 << (pos % 8);
                }
            }
        }
        bytes
    }

    #[test]
    fn unpack_deltas_matches_scalar_at_every_level_and_width() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for width in [0u32, 1, 3, 7, 13, 24, 25, 26, 31, 32] {
            for count in [1usize, 2, 7, 8, 9, 16, 127, 128, 129] {
                for bit_offset in [0usize, 1, 5, 13] {
                    let fields = count - 1;
                    let deltas: Vec<u32> = (0..fields)
                        .map(|_| {
                            if width == 0 {
                                0
                            } else if width == 32 {
                                rng.gen_range(0..=u32::MAX - 1)
                            } else {
                                rng.gen_range(0..(1u32 << width))
                            }
                        })
                        .collect();
                    // Keep the absolute values inside u32.
                    let total: u64 = deltas.iter().map(|&d| u64::from(d) + 1).sum();
                    if total > u64::from(u32::MAX) {
                        continue;
                    }
                    let first = rng.gen_range(0..=(u32::MAX - total as u32));
                    let bytes = pack(&deltas, width, bit_offset);
                    let mut expect = Vec::new();
                    unpack_deltas_scalar(&bytes, bit_offset, width, first, count, &mut expect);
                    assert_eq!(expect.len(), count);
                    assert_eq!(expect[0], first);
                    for l in available_levels() {
                        let mut got = Vec::new();
                        unpack_deltas_at(l, &bytes, bit_offset, width, first, count, &mut got);
                        assert_eq!(
                            got,
                            expect,
                            "level {} width {width} count {count} offset {bit_offset}",
                            l.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unpack_deltas_dense_run_needs_no_payload() {
        let mut out = Vec::new();
        unpack_deltas_at(SimdLevel::Scalar, &[], 0, 0, 5, 130, &mut out);
        let expect: Vec<Elem> = (5..135).collect();
        assert_eq!(out, expect);
        out.clear();
        unpack_deltas_at(SimdLevel::Scalar, &[], 3, 9, 42, 1, &mut out);
        assert_eq!(out, vec![42], "a lone element reads no payload bits");
        out.clear();
        unpack_deltas_at(SimdLevel::Scalar, &[], 0, 0, 0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "padding")]
    fn unpack_deltas_rejects_unpadded_payloads() {
        let mut out = Vec::new();
        // 4 fields x 8 bits = 4 payload bytes but no tail padding.
        unpack_deltas_at(SimdLevel::Scalar, &[0u8; 4], 0, 8, 0, 5, &mut out);
    }
}
