//! Document-partitioned sharding over [`fsi_index::SearchEngine`].
//!
//! Posting lists are split into `N` contiguous document-ID ranges; each
//! shard preprocesses its slice of every posting list under the configured
//! execution mode. A conjunctive query runs independently per shard, and
//! because the ranges are disjoint and ascending, the global result is the
//! plain concatenation of per-shard results — sorted output is preserved
//! with zero merge cost.
//!
//! Every prepared structure is immutable and `Send + Sync` (the paper
//! treats multi-core parallelism as orthogonal to the algorithms; sharding
//! is where this repository cashes that in), so shards can be queried from
//! any number of threads concurrently.

use crate::config::ExecMode;
use fsi_core::Elem;
use fsi_index::{OwnedExecutor, PlannedExecutor, Planner, SearchEngine};
use fsi_obs::TraceBuilder;
use fsi_query::{ExplainMode, ExprPlan, ExprPlanner, NormExpr, PlanNode};
use std::ops::Range;

/// The top-level operator label of a plan (what the trace span reports as
/// the chosen `PlanKind`).
fn plan_kind_label(plan: &ExprPlan) -> &'static str {
    match &plan.node {
        PlanNode::Term(_) => "Term",
        PlanNode::And { kind, .. } => match kind {
            fsi_query::AndKind::Multiway(m) => m.kind.name(),
            fsi_query::AndKind::SliceProbe => "SliceProbe",
        },
        PlanNode::Or { kind, .. } => match kind {
            fsi_query::UnionKind::HeapMerge => "HeapMerge",
            fsi_query::UnionKind::BitmapOr => "BitmapOr",
        },
    }
}

/// Per-shard prepared state under one execution mode.
#[derive(Debug)]
enum ShardIndex {
    /// All terms preprocessed under one fixed strategy.
    Fixed(OwnedExecutor),
    /// All terms preprocessed for every representation the cost-model
    /// planner can bind; each query runs one whole-list
    /// [`fsi_index::MultiwayPlan`].
    Planned(PlannedExecutor),
}

/// One document shard: prepared state plus the ID range it covers.
///
/// Ranges are `u64` so the exclusive end can express "past `u32::MAX`"
/// (document ID `u32::MAX` is a legal [`Elem`]).
#[derive(Debug)]
struct Shard {
    index: ShardIndex,
    docs: Range<u64>,
    /// Trace span name (`shard{idx}.exec`) and document-range attribute,
    /// rendered once at build time: traced queries clone them instead of
    /// re-formatting per query.
    span_name: String,
    docs_label: String,
}

impl Shard {
    /// Sorted intersection of `terms` within this shard's document range.
    fn query(&self, terms: &[usize]) -> Vec<Elem> {
        let mut out = Vec::new();
        self.query_into(terms, &mut out);
        out
    }

    /// Appends the shard's sorted result to `out` — shards share one
    /// output buffer on the sequential path instead of allocating each.
    fn query_into(&self, terms: &[usize], out: &mut Vec<Elem>) {
        self.query_into_kind(terms, out);
    }

    /// Like [`Shard::query_into`], but reports the chosen kernel of the
    /// executed multiway plan (`None` under a fixed strategy, which plans
    /// nothing).
    fn query_into_kind(&self, terms: &[usize], out: &mut Vec<Elem>) -> Option<&'static str> {
        match &self.index {
            ShardIndex::Fixed(exec) => {
                exec.query_into(terms, out);
                None
            }
            ShardIndex::Planned(exec) => Some(exec.query_into(terms, out).kind.name()),
        }
    }

    /// Sorted evaluation of a boolean expression within this shard's
    /// document range.
    fn query_expr(&self, expr: &NormExpr) -> Vec<Elem> {
        let mut out = Vec::new();
        self.query_expr_into(expr, &mut out);
        out
    }

    /// Appends the shard's expression result to `out`. Planned shards run
    /// the full cost-based expression plan over shard-local statistics;
    /// fixed shards evaluate structurally through their own strategy.
    fn query_expr_into(&self, expr: &NormExpr, out: &mut Vec<Elem>) {
        self.query_expr_into_with(expr, out, None);
    }

    /// Like [`Shard::query_expr_into`], but optionally planning under a
    /// per-request `planner` override instead of the shard's own, and
    /// reporting the plan's root operator label (`None` under a fixed
    /// strategy, where the override — validated away by the server — is
    /// ignored).
    fn query_expr_into_with(
        &self,
        expr: &NormExpr,
        out: &mut Vec<Elem>,
        planner: Option<&Planner>,
    ) -> Option<&'static str> {
        match &self.index {
            ShardIndex::Fixed(exec) => {
                fsi_query::eval_owned_into(exec, expr, out);
                None
            }
            ShardIndex::Planned(exec) => {
                let planner = ExprPlanner::new(planner.unwrap_or_else(|| exec.planner()).clone());
                let plan = fsi_query::eval_planned_into(exec, &planner, expr, out);
                Some(plan_kind_label(&plan))
            }
        }
    }

    /// The traced twin of [`Shard::query_expr_into`]: identical execution,
    /// plus one span per shard carrying the chosen plan, its estimates,
    /// and the observed result size — the planner-misprediction signal at
    /// per-shard granularity.
    fn query_expr_into_traced(
        &self,
        expr: &NormExpr,
        out: &mut Vec<Elem>,
        tb: &mut TraceBuilder,
        planner: Option<&Planner>,
    ) -> Option<&'static str> {
        let before = out.len();
        let start = tb.start_span();
        match &self.index {
            ShardIndex::Fixed(exec) => {
                fsi_query::eval_owned_into(exec, expr, out);
                tb.end_span(start, &self.span_name)
                    .attr("mode", "fixed")
                    .attr("docs", &self.docs_label)
                    .attr("rows", out.len() - before);
                None
            }
            ShardIndex::Planned(exec) => {
                let planner = ExprPlanner::new(planner.unwrap_or_else(|| exec.planner()).clone());
                let plan = fsi_query::eval_planned_into(exec, &planner, expr, out);
                // The chosen root operator rides along as a cheap static
                // label, and the estimates round to integers; the full plan
                // tree is deliberately NOT rendered here (that is EXPLAIN's
                // job) — a `describe()` per shard per query costs more than
                // the tracing budget allows.
                let kind = plan_kind_label(&plan);
                tb.end_span(start, &self.span_name)
                    .attr("mode", "planned")
                    .attr("docs", &self.docs_label)
                    .attr("kind", kind)
                    .attr("est_rows", plan.est_rows.round() as u64)
                    .attr("est_cost", plan.est_cost.round() as u64)
                    .attr("rows", out.len() - before);
                Some(kind)
            }
        }
    }

    /// Shard-local `EXPLAIN` (planned shards only — the fixed path has no
    /// cost model to render), optionally under a per-request planner.
    fn explain_expr(
        &self,
        expr: &NormExpr,
        mode: ExplainMode,
        planner: Option<&Planner>,
    ) -> Option<String> {
        match &self.index {
            ShardIndex::Fixed(_) => None,
            ShardIndex::Planned(exec) => {
                let planner = ExprPlanner::new(planner.unwrap_or_else(|| exec.planner()).clone());
                Some(fsi_query::explain(exec, &planner, expr, mode))
            }
        }
    }

    fn size_in_bytes(&self) -> usize {
        match &self.index {
            ShardIndex::Fixed(exec) => exec.size_in_bytes(),
            ShardIndex::Planned(exec) => exec.size_in_bytes(),
        }
    }
}

/// A search engine partitioned into document shards.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    num_terms: usize,
    mode: ExecMode,
}

impl ShardedEngine {
    /// Partitions `engine` into `num_shards` equal document-ID ranges and
    /// preprocesses each under `mode`.
    pub fn build(engine: &SearchEngine, num_shards: usize, mode: ExecMode) -> Self {
        let num_shards = num_shards.max(1);
        // u64 throughout: `max_doc` can be `u32::MAX`, whose successor (the
        // exclusive end of the document space) does not fit an Elem.
        let end = engine.max_doc().map_or(0u64, |m| m as u64 + 1);
        let span = end.div_ceil(num_shards as u64).max(1);
        let shards = (0..num_shards as u64)
            .map(|i| {
                let docs = (i * span).min(end)..((i + 1) * span).min(end);
                let sub = engine.restricted(docs.clone());
                let index = match &mode {
                    ExecMode::Fixed(strategy) => ShardIndex::Fixed(sub.into_executor(*strategy)),
                    ExecMode::Planned(planner) => {
                        ShardIndex::Planned(sub.planned_executor(planner.clone()))
                    }
                };
                Shard {
                    index,
                    span_name: format!("shard{i}.exec"),
                    docs_label: format!("{}..{}", docs.start, docs.end),
                    docs,
                }
            })
            .collect();
        Self {
            shards,
            num_terms: engine.num_terms(),
            mode,
        }
    }

    /// Number of document shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of terms in the underlying index.
    pub fn num_terms(&self) -> usize {
        self.num_terms
    }

    /// The execution mode shards were prepared under.
    pub fn mode(&self) -> &ExecMode {
        &self.mode
    }

    /// The document-ID range shard `i` covers (`u64` because the exclusive
    /// end of the last shard can be `u32::MAX as u64 + 1`).
    pub fn shard_range(&self, i: usize) -> Range<u64> {
        // audit:allow(hot_path_index): public accessor with a documented shard-index contract
        self.shards[i].docs.clone()
    }

    /// Total heap footprint of all prepared shard indexes.
    pub fn size_in_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_in_bytes()).sum()
    }

    /// Answers the conjunctive query `terms` in ascending document order,
    /// running shards sequentially on the calling thread.
    ///
    /// The result is identical to `SearchEngine::executor(strategy).query`
    /// on the unsharded engine (the differential tests assert byte
    /// equality).
    pub fn query(&self, terms: &[usize]) -> Vec<Elem> {
        let mut out = Vec::new();
        for shard in &self.shards {
            // Disjoint ascending ranges: appending preserves order.
            shard.query_into(terms, &mut out);
        }
        out
    }

    /// Like [`ShardedEngine::query`], but reports the chosen kernel of
    /// shard 0's plan alongside the result (`None` under a fixed
    /// strategy). Shards plan independently; the first shard's label is
    /// the response-metadata representative, per-shard detail being the
    /// trace's job.
    pub(crate) fn query_kind(&self, terms: &[usize]) -> (Vec<Elem>, Option<&'static str>) {
        let mut out = Vec::new();
        let mut kind = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let k = shard.query_into_kind(terms, &mut out);
            if i == 0 {
                kind = k;
            }
        }
        (out, kind)
    }

    /// Expression evaluation with an optional per-request planner override
    /// and shard 0's plan-kind label (the [`ShardedEngine::query_kind`]
    /// sibling).
    pub(crate) fn query_expr_with(
        &self,
        expr: &NormExpr,
        planner: Option<&Planner>,
    ) -> (Vec<Elem>, Option<&'static str>) {
        let mut out = Vec::new();
        let mut kind = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let k = shard.query_expr_into_with(expr, &mut out, planner);
            if i == 0 {
                kind = k;
            }
        }
        (out, kind)
    }

    /// Evaluates a boolean expression in ascending document order, running
    /// shards sequentially on the calling thread.
    ///
    /// Union, intersection, and difference all distribute over restriction
    /// to a document range (`(A ∪ B)|ᵣ = A|ᵣ ∪ B|ᵣ`, likewise `∩`/`∖`), and
    /// shard ranges are disjoint and ascending — so, exactly as with flat
    /// conjunctions, the global result is the plain concatenation of
    /// per-shard results (asserted shard-count-invariant by
    /// `tests/query_differential.rs`).
    pub fn query_expr(&self, expr: &NormExpr) -> Vec<Elem> {
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.query_expr_into(expr, &mut out);
        }
        out
    }

    /// The traced twin of [`ShardedEngine::query_expr`]: identical result,
    /// one trace span per shard carrying the planned-mode attributes
    /// (`kind`, `est_rows`, `est_cost`, observed `rows`). Sequential —
    /// spans on one builder need one
    /// thread; the untraced parallel path stays available for serving.
    pub fn query_expr_traced(&self, expr: &NormExpr, tb: &mut TraceBuilder) -> Vec<Elem> {
        self.query_expr_traced_with(expr, tb, None).0
    }

    /// The override-aware, kind-reporting twin of
    /// [`ShardedEngine::query_expr_traced`].
    pub(crate) fn query_expr_traced_with(
        &self,
        expr: &NormExpr,
        tb: &mut TraceBuilder,
        planner: Option<&Planner>,
    ) -> (Vec<Elem>, Option<&'static str>) {
        let mut out = Vec::new();
        let mut kind = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let k = shard.query_expr_into_traced(expr, &mut out, tb, planner);
            if i == 0 {
                kind = k;
            }
        }
        (out, kind)
    }

    /// Renders `EXPLAIN`/`EXPLAIN ANALYZE` for every shard, concatenated
    /// with per-shard headers. Returns `None` in fixed-strategy mode,
    /// which has no cost model to render.
    pub fn explain_expr(&self, expr: &NormExpr, mode: ExplainMode) -> Option<String> {
        self.explain_expr_with(expr, mode, None)
    }

    /// The override-aware twin of [`ShardedEngine::explain_expr`].
    pub(crate) fn explain_expr_with(
        &self,
        expr: &NormExpr,
        mode: ExplainMode,
        planner: Option<&Planner>,
    ) -> Option<String> {
        let mut out = String::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            let section = shard.explain_expr(expr, mode, planner)?;
            out.push_str(&format!(
                "-- shard {idx} [docs {}..{}] --\n{section}",
                shard.docs.start, shard.docs.end
            ));
            if idx + 1 < self.shards.len() {
                out.push('\n');
            }
        }
        Some(out)
    }

    /// Like [`ShardedEngine::query_expr`], but fans the shards out over
    /// scoped threads (one per shard) — the expression sibling of
    /// [`ShardedEngine::query_parallel`].
    pub fn query_expr_parallel(&self, expr: &NormExpr) -> Vec<Elem> {
        if self.shards.len() == 1 {
            return self.query_expr(expr);
        }
        let partials: Vec<Vec<Elem>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.query_expr(expr)))
                .collect();
            handles
                .into_iter()
                // audit:allow(hot_path_panic): a panicked shard query must fail the whole fan-out
                .map(|h| h.join().expect("shard query panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(partials.iter().map(Vec::len).sum());
        for p in partials {
            out.extend(p);
        }
        out
    }

    /// Like [`ShardedEngine::query`], but fans the shards out over scoped
    /// threads (one per shard) — intra-query parallelism for latency-bound
    /// callers; [`crate::pool::QueryPool`] provides inter-query parallelism
    /// for throughput-bound batches.
    pub fn query_parallel(&self, terms: &[usize]) -> Vec<Elem> {
        if self.shards.len() == 1 {
            return self.query(terms);
        }
        let partials: Vec<Vec<Elem>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.query(terms)))
                .collect();
            handles
                .into_iter()
                // audit:allow(hot_path_panic): a panicked shard query must fail the whole fan-out
                .map(|h| h.join().expect("shard query panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(partials.iter().map(Vec::len).sum());
        for p in partials {
            out.extend(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_core::HashContext;
    use fsi_index::{Corpus, CorpusConfig, Planner, Strategy};

    fn engine() -> SearchEngine {
        let corpus = Corpus::generate(CorpusConfig {
            num_docs: 30_000,
            num_terms: 48,
            ..CorpusConfig::default()
        });
        SearchEngine::from_corpus(HashContext::new(3), corpus)
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn sharded_engine_is_send_sync() {
        assert_send_sync::<ShardedEngine>();
    }

    #[test]
    fn shard_ranges_tile_the_document_space() {
        let engine = engine();
        let sharded = ShardedEngine::build(&engine, 5, ExecMode::Fixed(Strategy::Merge));
        let end = engine.max_doc().unwrap() as u64 + 1;
        let mut expect_start = 0u64;
        for i in 0..sharded.num_shards() {
            let r = sharded.shard_range(i);
            assert_eq!(r.start, expect_start);
            expect_start = r.end;
        }
        assert_eq!(expect_start, end);
    }

    #[test]
    fn max_document_id_is_served() {
        // Regression: boundary arithmetic used to run in u32, so a corpus
        // containing document u32::MAX overflowed (end = max_doc + 1) and
        // every shard came out empty.
        let ctx = HashContext::new(8);
        let postings = vec![
            fsi_core::SortedSet::from_unsorted(vec![0, 7, u32::MAX - 1, u32::MAX]),
            fsi_core::SortedSet::from_unsorted(vec![7, u32::MAX]),
        ];
        let engine = SearchEngine::from_postings(ctx, postings);
        let reference = engine.executor(Strategy::Merge);
        for shards in [1usize, 2, 5] {
            let sharded = ShardedEngine::build(&engine, shards, ExecMode::Fixed(Strategy::Merge));
            assert_eq!(sharded.query(&[0, 1]), reference.query(&[0, 1]));
            assert_eq!(sharded.query(&[0, 1]), vec![7, u32::MAX]);
        }
    }

    #[test]
    fn sharded_matches_unsharded_executor() {
        let engine = engine();
        let reference = engine.executor(Strategy::Merge);
        let queries = [vec![0usize, 1], vec![2, 9, 30], vec![7], vec![]];
        for shards in [1usize, 2, 3, 7] {
            let sharded = ShardedEngine::build(&engine, shards, ExecMode::Fixed(Strategy::Merge));
            for q in &queries {
                assert_eq!(
                    sharded.query(q),
                    reference.query(q),
                    "shards={shards} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn planned_mode_matches_fixed_results() {
        let engine = engine();
        let fixed = ShardedEngine::build(&engine, 3, ExecMode::Fixed(Strategy::Merge));
        let planned = ShardedEngine::build(&engine, 3, ExecMode::Planned(Planner::default()));
        for q in [vec![0usize, 1], vec![2, 9, 30], vec![40, 41], vec![6]] {
            assert_eq!(planned.query(&q), fixed.query(&q), "{q:?}");
        }
    }

    #[test]
    fn memory_pressured_mode_matches_fixed_results() {
        // A hot bytes_unit pushes plans into the compressed domain
        // (CompressedGallop over block postings); answers must stay
        // byte-identical to the flat reference across shard counts.
        let engine = engine();
        let fixed = ShardedEngine::build(&engine, 1, ExecMode::Fixed(Strategy::Merge));
        for shards in [1usize, 2, 3, 7] {
            let pressured = ShardedEngine::build(
                &engine,
                shards,
                crate::PlannerProfile::auto().memory_pressured(100.0).mode(),
            );
            for q in [vec![0usize, 1], vec![2, 9, 30], vec![40, 41], vec![6]] {
                assert_eq!(
                    pressured.query(&q),
                    fixed.query(&q),
                    "shards={shards} {q:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_query_equals_sequential() {
        let engine = engine();
        let sharded =
            ShardedEngine::build(&engine, 4, ExecMode::Fixed(Strategy::RanGroupScan { m: 2 }));
        for q in [vec![0usize, 1], vec![2, 9, 30], vec![]] {
            assert_eq!(sharded.query_parallel(&q), sharded.query(&q), "{q:?}");
        }
    }

    #[test]
    fn expression_results_are_shard_count_invariant() {
        let engine = engine();
        let exprs: Vec<NormExpr> = [
            "0 AND 1",
            "0 OR 9 OR 17",
            "2 AND NOT 9",
            "(0 OR 1) AND (2 OR 3) AND NOT 40",
            "30 AND (5 OR NOT 6)",
        ]
        .iter()
        .map(|s| fsi_query::compile(s).expect("compiles"))
        .collect();
        for mode in [
            ExecMode::Fixed(Strategy::Merge),
            ExecMode::Planned(Planner::default()),
        ] {
            let single = ShardedEngine::build(&engine, 1, mode.clone());
            for shards in [2usize, 3, 7] {
                let sharded = ShardedEngine::build(&engine, shards, mode.clone());
                for e in &exprs {
                    assert_eq!(
                        sharded.query_expr(e),
                        single.query_expr(e),
                        "shards={shards} expr={e}"
                    );
                    assert_eq!(
                        sharded.query_expr_parallel(e),
                        single.query_expr(e),
                        "parallel shards={shards} expr={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn expression_conjunctions_match_the_flat_path() {
        // `a AND b` through the expression engine must be byte-identical
        // to the flat `[a, b]` path on the same shards.
        let engine = engine();
        for mode in [
            ExecMode::Fixed(Strategy::RanGroupScan { m: 2 }),
            ExecMode::Planned(Planner::default()),
        ] {
            let sharded = ShardedEngine::build(&engine, 3, mode);
            for (src, terms) in [
                ("0 AND 1", vec![0usize, 1]),
                ("9 AND 2 AND 30", vec![2, 9, 30]),
                ("7", vec![7]),
            ] {
                let expr = fsi_query::compile(src).expect("compiles");
                assert_eq!(sharded.query_expr(&expr), sharded.query(&terms), "{src}");
            }
        }
    }

    #[test]
    fn more_shards_than_documents_is_fine() {
        let ctx = HashContext::new(9);
        let postings = vec![
            fsi_core::SortedSet::from_unsorted(vec![0, 1, 2]),
            fsi_core::SortedSet::from_unsorted(vec![1, 2]),
        ];
        let engine = SearchEngine::from_postings(ctx, postings);
        let sharded = ShardedEngine::build(&engine, 64, ExecMode::Fixed(Strategy::Merge));
        assert_eq!(sharded.query(&[0, 1]), vec![1, 2]);
    }

    #[test]
    fn size_accounting_sums_shards() {
        let engine = engine();
        let sharded = ShardedEngine::build(&engine, 4, ExecMode::Fixed(Strategy::Lookup));
        assert!(sharded.size_in_bytes() > 0);
        assert_eq!(sharded.num_terms(), engine.num_terms());
    }
}
