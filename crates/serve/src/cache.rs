//! A sharded LRU cache for intersection results.
//!
//! Ding & König motivate set intersection as the inner loop of query
//! serving; real query streams are heavily skewed (Zipfian term
//! popularity), so a small result cache absorbs a large fraction of
//! traffic. Keys are `(canonical expression encoding, execution mode)`;
//! values are `Arc`-shared result vectors so hits never copy documents.
//!
//! The cache is split into independently locked segments (selected by key
//! hash) so concurrent workers rarely contend; each segment runs an exact
//! LRU over an intrusive free-list slab.
//!
//! The canonical encoding (`fsi_query::encode`) makes a flat conjunctive
//! query and any boolean expression equivalent to it — reordered,
//! duplicated, De Morgan'd — produce bit-identical keys, so `a b`, `b a`,
//! and `b AND a AND b` all share one entry.

use crate::config::ExecMode;
use fsi_core::Elem;
use fsi_index::Strategy;
use fsi_query::NormExpr;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The execution-mode component of a cache key. Planned mode is a single
/// key space: the planner picks the physical algorithm per query, but the
/// *result* is the same whichever plan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModeKey {
    /// Results computed under one fixed strategy.
    Fixed(Strategy),
    /// Results computed under planner dispatch.
    Planned,
}

impl From<&ExecMode> for ModeKey {
    fn from(mode: &ExecMode) -> Self {
        match mode {
            ExecMode::Fixed(s) => ModeKey::Fixed(*s),
            ExecMode::Planned(_) => ModeKey::Planned,
        }
    }
}

/// A cache key: the canonical encoding of the query expression plus the
/// execution mode the result was computed under.
///
/// Flat conjunctions and parsed boolean expressions share one key space:
/// `CacheKey::new` encodes a term list exactly as `CacheKey::from_norm`
/// encodes the equivalent normalized conjunction
/// (`fsi_query::encode_flat_and` is definitionally consistent with
/// `fsi_query::encode ∘ normalize`), so a flat `[a, b]` query hits an
/// entry inserted by the expression `b AND a` and vice versa.
///
/// Keys are derived only inside the crate (from a [`crate::Request`] or a
/// pool worker) — callers never hand-build them, so the derivation can
/// evolve without breaking the public API.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    expr: Box<[u32]>,
    mode: ModeKey,
}

impl CacheKey {
    /// The key of a flat conjunctive query: canonicalizes `terms`
    /// (sort + dedup — conjunctions are order-insensitive and idempotent)
    /// into the shared expression encoding and attaches the mode.
    pub(crate) fn new(terms: &[usize], mode: ModeKey) -> Self {
        Self {
            expr: fsi_query::encode_flat_and(terms).into_boxed_slice(),
            mode,
        }
    }

    /// The key of a normalized boolean expression.
    pub(crate) fn from_norm(expr: &NormExpr, mode: ModeKey) -> Self {
        Self {
            expr: fsi_query::encode(expr).into_boxed_slice(),
            mode,
        }
    }

    /// The canonical expression encoding this key carries.
    pub fn encoding(&self) -> &[u32] {
        &self.expr
    }

    fn segment(&self, num_segments: usize) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % num_segments
    }
}

/// Monotonic cache counters (a point-in-time copy).
///
/// Invariants (asserted by the property tests, and holding at any quiescent
/// snapshot):
///
/// * `hits + misses == lookups` — every lookup is counted exactly once;
/// * `len == insertions - evictions` — `insertions` counts only *fresh*
///   entries (a re-insert of a live key is a `refresh`, which changes
///   neither `len` nor `insertions`);
/// * `value_bytes` equals the byte footprint of exactly the currently
///   cached result vectors (refreshing a key with a different-sized result
///   adjusts it by the difference).
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Lookups that returned a cached result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Total lookups (`hits + misses`).
    pub lookups: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Fresh entries inserted (excludes refreshes of live keys).
    pub insertions: u64,
    /// Re-inserts that replaced a live key's value in place.
    pub refreshes: u64,
    /// Current number of cached entries.
    pub len: usize,
    /// Byte footprint of the currently cached result vectors.
    pub value_bytes: usize,
    /// Total capacity in entries (0 = caching disabled).
    pub capacity: usize,
    /// Per-segment breakdown, indexed by segment id. Segment counters sum
    /// to the cache-level totals (`Σ segments[i].insertions == insertions`,
    /// likewise evictions/refreshes/len/value_bytes) — the property the
    /// registry-merge tests lean on.
    pub segments: Vec<SegmentCacheStats>,
}

/// Counters of one cache segment (a point-in-time copy; all monotonic
/// except `len`/`value_bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentCacheStats {
    /// Entries currently held by this segment.
    pub len: usize,
    /// Byte footprint of this segment's cached result vectors.
    pub value_bytes: usize,
    /// Fresh entries this segment accepted.
    pub insertions: u64,
    /// Entries this segment evicted.
    pub evictions: u64,
    /// In-place value refreshes of live keys in this segment.
    pub refreshes: u64,
    /// This segment's share of the capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups so far (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Arc<Vec<Elem>>,
    prev: usize,
    next: usize,
}

/// What one [`QueryCache::insert`] did (drives the cache-level counters;
/// returned to callers so serving traces can attribute refresh vs fresh
/// insert vs dropped-on-disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// A new entry was created (false: a live key was refreshed in place,
    /// or the cache is disabled).
    pub fresh: bool,
    /// The LRU entry was evicted to make room.
    pub evicted: bool,
}

/// One locked segment: an exact LRU over a slab of entries.
struct Segment {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    /// Byte footprint of the values currently held (kept in lockstep with
    /// every insert/refresh/evict so accounting cannot drift).
    bytes: usize,
    /// Per-segment monotonic counters (plain fields — always mutated under
    /// this segment's lock). The cache-level atomics are *independent*
    /// tallies of the same events, so the "segments sum to totals"
    /// invariant is a real cross-check, not an identity.
    insertions: u64,
    evictions: u64,
    refreshes: u64,
}

impl Segment {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            bytes: 0,
            insertions: 0,
            evictions: 0,
            refreshes: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        // audit:allow(hot_path_index): prev/next/head/tail are LRU-list invariants; every live link points into slab
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            // audit:allow(hot_path_index): prev/next/head/tail are LRU-list invariants; every live link points into slab
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            // audit:allow(hot_path_index): prev/next/head/tail are LRU-list invariants; every live link points into slab
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        // audit:allow(hot_path_index): prev/next/head/tail are LRU-list invariants; every live link points into slab
        self.slab[idx].prev = NIL;
        // audit:allow(hot_path_index): prev/next/head/tail are LRU-list invariants; every live link points into slab
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            // audit:allow(hot_path_index): prev/next/head/tail are LRU-list invariants; every live link points into slab
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<Elem>>> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.slab[idx].value))
    }

    fn insert(&mut self, key: CacheKey, value: Arc<Vec<Elem>>) -> InsertOutcome {
        if let Some(&idx) = self.map.get(&key) {
            // Refresh an existing entry in place; the byte accounting moves
            // by the size *difference* so a different-sized result cannot
            // drift the totals.
            self.bytes += value_bytes(&value);
            self.bytes -= value_bytes(&self.slab[idx].value);
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            self.refreshes += 1;
            return InsertOutcome {
                fresh: false,
                evicted: false,
            };
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.bytes -= value_bytes(&self.slab[victim].value);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            self.evictions += 1;
            evicted = true;
        }
        self.bytes += value_bytes(&value);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.insertions += 1;
        InsertOutcome {
            fresh: true,
            evicted,
        }
    }

    fn stats(&self) -> SegmentCacheStats {
        SegmentCacheStats {
            len: self.map.len(),
            value_bytes: self.bytes,
            insertions: self.insertions,
            evictions: self.evictions,
            refreshes: self.refreshes,
            capacity: self.capacity,
        }
    }
}

/// Heap footprint of one cached result vector.
fn value_bytes(value: &Arc<Vec<Elem>>) -> usize {
    value.len() * std::mem::size_of::<Elem>()
}

/// The sharded, counter-instrumented result cache.
pub struct QueryCache {
    segments: Vec<Mutex<Segment>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Counted independently of hits/misses (once per [`QueryCache::get`])
    /// so the `hits + misses == lookups` invariant is a real check on the
    /// counting paths, not an identity.
    lookups: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    refreshes: AtomicU64,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("capacity", &self.capacity)
            .field("segments", &self.segments.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl QueryCache {
    /// A cache of `capacity` total entries split over `segments` locks.
    /// `capacity = 0` builds a disabled cache (every lookup misses, inserts
    /// are dropped).
    ///
    /// Capacity divides evenly across segments, rounding *up* per segment;
    /// the effective total (what [`QueryCache::stats`] reports as
    /// `capacity`) is therefore the configured value rounded up to a
    /// multiple of the segment count. Eviction is per segment: a segment
    /// at its share evicts even if others are underfull.
    pub fn new(capacity: usize, segments: usize) -> Self {
        let segments = segments.max(1).min(capacity.max(1));
        let per_segment = capacity.div_ceil(segments);
        Self {
            segments: (0..segments)
                .map(|_| Mutex::new(Segment::new(per_segment)))
                .collect(),
            capacity: if capacity == 0 {
                0
            } else {
                per_segment * segments
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    /// Whether caching is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<Elem>>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if !self.is_enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let seg = key.segment(self.segments.len());
        // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
        let result = self.segments[seg].lock().expect("cache lock").get(key);
        match &result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Inserts a computed result, possibly evicting the segment's LRU
    /// entry, and reports what happened. Re-inserting a live key replaces
    /// its value in place and counts as a *refresh*, not an insertion —
    /// `len == insertions - evictions` holds even when the same (term set,
    /// mode) key is recomputed with a different-sized result.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<Elem>>) -> InsertOutcome {
        if !self.is_enabled() {
            return InsertOutcome {
                fresh: false,
                evicted: false,
            };
        }
        let seg = key.segment(self.segments.len());
        let outcome = self.segments[seg]
            .lock()
            // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
            .expect("cache lock")
            .insert(key, value);
        if outcome.fresh {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.refreshes.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Effective total capacity in entries (the configured capacity rounded
    /// up to a multiple of the segment count; 0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.segments
            .iter()
            // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
            .map(|s| s.lock().expect("cache lock").map.len())
            .sum()
    }

    /// `true` iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Byte footprint of the currently cached result vectors.
    pub fn value_bytes(&self) -> usize {
        self.segments
            .iter()
            // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
            .map(|s| s.lock().expect("cache lock").bytes)
            .sum()
    }

    /// Per-segment counter snapshots, indexed by segment id.
    pub fn segment_stats(&self) -> Vec<SegmentCacheStats> {
        self.segments
            .iter()
            // audit:allow(hot_path_panic): mutex poisoning means another request already panicked; propagating is correct
            .map(|s| s.lock().expect("cache lock").stats())
            .collect()
    }

    /// Snapshot of the counters, including the per-segment breakdown.
    pub fn stats(&self) -> CacheStats {
        let segments = self.segment_stats();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            len: segments.iter().map(|s| s.len).sum(),
            value_bytes: segments.iter().map(|s| s.value_bytes).sum(),
            capacity: self.capacity,
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(terms: &[usize]) -> CacheKey {
        CacheKey::new(terms, ModeKey::Fixed(Strategy::Merge))
    }

    fn val(xs: &[Elem]) -> Arc<Vec<Elem>> {
        Arc::new(xs.to_vec())
    }

    #[test]
    fn keys_normalize_term_order_and_duplicates() {
        assert_eq!(key(&[3, 1, 2]), key(&[1, 2, 3]));
        assert_eq!(key(&[5, 5, 1]), key(&[1, 5]));
        assert_ne!(key(&[1, 2]), key(&[1, 3]));
        assert_ne!(key(&[]), key(&[1]));
        assert_ne!(
            CacheKey::new(&[1, 2], ModeKey::Fixed(Strategy::Merge)),
            CacheKey::new(&[1, 2], ModeKey::Fixed(Strategy::Hash)),
        );
        assert_ne!(
            CacheKey::new(&[1, 2], ModeKey::Fixed(Strategy::Merge)),
            CacheKey::new(&[1, 2], ModeKey::Planned),
        );
    }

    #[test]
    fn flat_and_expression_keys_share_one_entry() {
        // The canonical-keying satellite: a flat `[a, b]` query, its
        // reordered-duplicated variant, and any equivalent parsed boolean
        // expression must all land on the same cache slot.
        let mode = ModeKey::Planned;
        let flat = CacheKey::new(&[4, 2], mode);
        let shuffled = CacheKey::new(&[2, 4, 2], mode);
        let expr = CacheKey::from_norm(&fsi_query::compile("4 AND 2").expect("ok"), mode);
        let de_morgan = CacheKey::from_norm(
            &fsi_query::compile("NOT (NOT 2 OR NOT 4)").expect("ok"),
            mode,
        );
        assert_eq!(flat, shuffled);
        assert_eq!(flat, expr);
        assert_eq!(flat, de_morgan);
        // …and a genuinely different expression does not.
        let other = CacheKey::from_norm(&fsi_query::compile("4 OR 2").expect("ok"), mode);
        assert_ne!(flat, other);
        let cache = QueryCache::new(8, 2);
        cache.insert(flat, val(&[1, 2, 3]));
        assert_eq!(cache.get(&expr).expect("hit").as_slice(), &[1, 2, 3]);
        assert_eq!(cache.get(&shuffled).expect("hit").as_slice(), &[1, 2, 3]);
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = QueryCache::new(8, 2);
        assert!(cache.get(&key(&[1, 2])).is_none());
        cache.insert(key(&[1, 2]), val(&[7, 9]));
        assert_eq!(cache.get(&key(&[2, 1])).expect("hit").as_slice(), &[7, 9]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One segment of capacity 3 so eviction order is fully observable.
        let cache = QueryCache::new(3, 1);
        cache.insert(key(&[1]), val(&[1]));
        cache.insert(key(&[2]), val(&[2]));
        cache.insert(key(&[3]), val(&[3]));
        // Touch [1] so [2] becomes the LRU.
        assert!(cache.get(&key(&[1])).is_some());
        cache.insert(key(&[4]), val(&[4]));
        assert!(cache.get(&key(&[2])).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(&[1])).is_some());
        assert!(cache.get(&key(&[3])).is_some());
        assert!(cache.get(&key(&[4])).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let cache = QueryCache::new(2, 1);
        cache.insert(key(&[1]), val(&[1]));
        cache.insert(key(&[1]), val(&[10, 11]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(&[1])).expect("hit").as_slice(), &[10, 11]);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        // Accounting: one fresh insert, one refresh — len still matches
        // insertions - evictions, and the bytes track the *new* value.
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.len as u64, stats.insertions - stats.evictions);
        assert_eq!(stats.value_bytes, 2 * std::mem::size_of::<Elem>());
    }

    #[test]
    fn refresh_with_different_sizes_keeps_bytes_exact() {
        // Regression for accounting drift: the same key re-inserted with a
        // larger, then smaller, result must leave value_bytes equal to the
        // live value's footprint, never the sum of historical sizes.
        let cache = QueryCache::new(4, 1);
        let k = key(&[9]);
        cache.insert(k.clone(), val(&[1]));
        cache.insert(k.clone(), val(&[1, 2, 3, 4, 5]));
        cache.insert(k.clone(), val(&[]));
        cache.insert(k.clone(), val(&[7, 8]));
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.refreshes, 3);
        assert_eq!(stats.len, 1);
        assert_eq!(stats.value_bytes, 2 * std::mem::size_of::<Elem>());
        // Evicting the entry returns the accounting to zero.
        for i in 100..104usize {
            cache.insert(key(&[i]), val(&[i as Elem]));
        }
        let stats = cache.stats();
        assert!(cache.get(&k).is_none(), "original key evicted");
        assert_eq!(stats.len, 4);
        assert_eq!(stats.value_bytes, 4 * std::mem::size_of::<Elem>());
        assert_eq!(stats.len as u64, stats.insertions - stats.evictions);
    }

    /// The model-free invariants any quiescent snapshot must satisfy.
    fn assert_invariants(cache: &QueryCache) {
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert_eq!(stats.len as u64, stats.insertions - stats.evictions);
        assert!(stats.len <= stats.capacity.max(1));
        let actual_bytes: usize = cache
            .segments
            .iter()
            .map(|s| {
                let seg = s.lock().unwrap();
                seg.map
                    .values()
                    .map(|&idx| value_bytes(&seg.slab[idx].value))
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(stats.value_bytes, actual_bytes);
        let seg_bytes: usize = cache.segments.iter().map(|s| s.lock().unwrap().bytes).sum();
        assert_eq!(seg_bytes, actual_bytes, "per-segment byte counters drifted");
        // The per-segment counters are tallied independently of the
        // cache-level atomics; at quiescence they must agree exactly.
        assert_eq!(
            stats.segments.iter().map(|s| s.insertions).sum::<u64>(),
            stats.insertions
        );
        assert_eq!(
            stats.segments.iter().map(|s| s.evictions).sum::<u64>(),
            stats.evictions
        );
        assert_eq!(
            stats.segments.iter().map(|s| s.refreshes).sum::<u64>(),
            stats.refreshes
        );
        assert_eq!(
            stats.segments.iter().map(|s| s.len).sum::<usize>(),
            stats.len
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn random_workloads_preserve_accounting_invariants(
            capacity in 0usize..12,
            segments in 1usize..5,
            // Each op encodes (kind, term, value_len) in one draw:
            // kind = op % 2 (get/insert), term = (op / 2) % 12,
            // value_len = op / 24.
            ops in proptest::collection::vec(0usize..144, 0..300),
        ) {
            let cache = QueryCache::new(capacity, segments);
            for &op in &ops {
                let term = (op / 2) % 12;
                let k = key(&[term]);
                if op % 2 == 0 {
                    let _ = cache.get(&k);
                } else {
                    // Same keys recur with varying sizes: exercises fresh
                    // inserts, refreshes with different-sized results, and
                    // evictions in one stream.
                    let value_len = op / 24;
                    cache.insert(k, val(&vec![term as Elem; value_len]));
                }
            }
            assert_invariants(&cache);
        }
    }

    #[test]
    fn effective_capacity_is_reported_and_never_exceeded() {
        // 8 entries over 3 segments: 3 per segment, effective total 9.
        let cache = QueryCache::new(8, 3);
        assert_eq!(cache.capacity(), 9);
        for i in 0..100usize {
            cache.insert(key(&[i]), val(&[i as Elem]));
        }
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.stats().capacity, 9);
        // Even division reports exactly the configured value.
        assert_eq!(QueryCache::new(8, 2).capacity(), 8);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0, 4);
        assert!(!cache.is_enabled());
        cache.insert(key(&[1]), val(&[1]));
        assert!(cache.get(&key(&[1])).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_slots_are_reused() {
        let cache = QueryCache::new(2, 1);
        for i in 0..100usize {
            cache.insert(key(&[i]), val(&[i as Elem]));
        }
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.insertions, 100);
        assert_eq!(stats.evictions, 98);
        // The slab never grows past capacity.
        for seg in &cache.segments {
            assert!(seg.lock().unwrap().slab.len() <= 2);
        }
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(QueryCache::new(64, 8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500usize {
                        let k = key(&[t, i % 32]);
                        if cache.get(&k).is_none() {
                            cache.insert(k, val(&[(t * 1000 + i % 32) as Elem]));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.hits + stats.misses == 2000);
        assert!(cache.len() <= 64);
    }
}
