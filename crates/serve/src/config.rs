//! Serving configuration: how many shards and workers, how large a result
//! cache, and which physical execution mode queries run under.

use fsi_index::{Planner, Strategy};

/// How a shard answers a conjunctive query.
#[derive(Debug, Clone)]
pub enum ExecMode {
    /// Every posting list preprocessed under one fixed [`Strategy`].
    Fixed(Strategy),
    /// Whole-query cost-model planning: every query's term list is planned
    /// at once into a k-way [`fsi_index::MultiwayPlan`] (the paper's
    /// "choose online" pitch, see [`fsi_index::planner`]).
    Planned(Planner),
}

impl ExecMode {
    /// A short label for telemetry and cache keys.
    pub fn label(&self) -> String {
        match self {
            ExecMode::Fixed(s) => s.name(),
            ExecMode::Planned(_) => "Planned(multiway)".to_string(),
        }
    }

    /// Planner-mode execution with SIMD-tuned cost constants.
    #[deprecated(since = "0.2.0", note = "use `PlannerProfile::auto().mode()`")]
    pub fn planned_auto() -> Self {
        PlannerProfile::auto().mode()
    }

    /// Planner-mode execution under memory pressure.
    #[deprecated(
        since = "0.2.0",
        note = "use `PlannerProfile::auto().memory_pressured(..).mode()`"
    )]
    pub fn planned_memory_pressured(bytes_per_elem_unit: f64) -> Self {
        PlannerProfile::auto()
            .memory_pressured(bytes_per_elem_unit)
            .mode()
    }
}

/// A builder for planner-dispatched execution modes — the one place the
/// serving stack derives a [`Planner`] from operator intent, replacing the
/// old `ExecMode::planned_auto()` / `planned_memory_pressured(..)`
/// constructor sprawl (one constructor per knob combination did not
/// scale).
///
/// ```
/// use fsi_serve::{PlannerProfile, ServeConfig};
///
/// let config = ServeConfig::default()
///     .with_profile(PlannerProfile::auto().memory_pressured(1.5));
/// assert!(config.mode.label().starts_with("Planned"));
/// ```
#[derive(Debug, Clone)]
pub struct PlannerProfile {
    base: Planner,
}

impl PlannerProfile {
    /// Cost constants tuned for the SIMD tier this process dispatches to
    /// ([`Planner::auto`]) — the serving-stack default, so plans favour
    /// the vectorized bitmap sweep exactly where `BENCH_simd.json`
    /// measured it winning.
    pub fn auto() -> Self {
        Self {
            base: Planner::auto(),
        }
    }

    /// The paper-era reference constants ([`Planner::default`]),
    /// independent of the host's SIMD tier — for reproducing the paper's
    /// crossovers rather than serving fast.
    pub fn reference() -> Self {
        Self {
            base: Planner::default(),
        }
    }

    /// Charge every candidate its resident byte footprint
    /// ([`Planner::bytes_unit`]), so queries over compressible lists run
    /// in the compressed domain
    /// ([`fsi_index::PlanKind::CompressedGallop`]) instead of walking the
    /// 4-bytes-per-id flat representations. `bytes_per_elem_unit` is the
    /// cost of one resident byte relative to the compute units — `0.0`
    /// reproduces the pure-compute model; values ≥ ~1 make footprint
    /// dominate for all but the most selective plans.
    pub fn memory_pressured(mut self, bytes_per_elem_unit: f64) -> Self {
        self.base.bytes_unit = bytes_per_elem_unit;
        self
    }

    /// The resulting planner.
    pub fn planner(&self) -> Planner {
        self.base.clone()
    }

    /// The resulting execution mode.
    pub fn mode(&self) -> ExecMode {
        ExecMode::Planned(self.planner())
    }
}

impl Default for PlannerProfile {
    fn default() -> Self {
        Self::auto()
    }
}

/// Configuration of a serving engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of document shards (≥ 1). Posting lists are partitioned into
    /// contiguous document-ID ranges, one per shard.
    pub num_shards: usize,
    /// Worker threads draining query batches (≥ 1).
    pub num_workers: usize,
    /// Total result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache segments (≥ 1); higher values
    /// reduce lock contention under concurrent batches.
    pub cache_segments: usize,
    /// Physical execution mode.
    pub mode: ExecMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            num_workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            cache_capacity: 4096,
            cache_segments: 8,
            // Whole-query cost-model planning with constants tuned for the
            // SIMD tier this process dispatches to. Fix a strategy (e.g.
            // the paper's `Strategy::RanGroupScan { m: 2 }`) to pin one
            // algorithm instead.
            mode: PlannerProfile::auto().mode(),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, normalizing zero counts up to one.
    pub fn normalized(mut self) -> Self {
        self.num_shards = self.num_shards.max(1);
        self.num_workers = self.num_workers.max(1);
        self.cache_segments = self.cache_segments.max(1);
        self
    }

    /// Sets planner-dispatched execution from a [`PlannerProfile`].
    pub fn with_profile(mut self, profile: PlannerProfile) -> Self {
        self.mode = profile.mode();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = ServeConfig::default();
        assert!(c.num_shards >= 1);
        assert!(c.num_workers >= 1);
        assert!(c.cache_segments >= 1);
    }

    #[test]
    fn normalized_lifts_zeros() {
        let c = ServeConfig {
            num_shards: 0,
            num_workers: 0,
            cache_segments: 0,
            ..ServeConfig::default()
        }
        .normalized();
        assert_eq!((c.num_shards, c.num_workers, c.cache_segments), (1, 1, 1));
    }

    #[test]
    fn mode_labels() {
        assert_eq!(ExecMode::Fixed(Strategy::Merge).label(), "Merge");
        assert!(ExecMode::Planned(Planner::default())
            .label()
            .starts_with("Planned"));
    }

    #[test]
    fn memory_pressured_profile_sets_only_the_bytes_dial() {
        let ExecMode::Planned(p) = PlannerProfile::auto().memory_pressured(2.5).mode() else {
            panic!("planned mode expected");
        };
        let auto = Planner::auto();
        assert_eq!(p.bytes_unit, 2.5);
        assert_eq!(p.gallop_unit, auto.gallop_unit);
        assert_eq!(p.bitmap_word_unit, auto.bitmap_word_unit);
        assert_eq!(p.decode_unit, auto.decode_unit);
    }

    #[test]
    fn deprecated_mode_constructors_match_profiles() {
        #[allow(deprecated)]
        let (old_auto, old_pressured) = (
            ExecMode::planned_auto(),
            ExecMode::planned_memory_pressured(2.5),
        );
        for (old, new) in [
            (old_auto, PlannerProfile::auto().mode()),
            (
                old_pressured,
                PlannerProfile::auto().memory_pressured(2.5).mode(),
            ),
        ] {
            let (ExecMode::Planned(a), ExecMode::Planned(b)) = (old, new) else {
                panic!("planned modes expected");
            };
            assert_eq!(a.bytes_unit, b.bytes_unit);
            assert_eq!(a.gallop_unit, b.gallop_unit);
        }
    }

    #[test]
    fn with_profile_sets_the_mode() {
        let c = ServeConfig::default().with_profile(PlannerProfile::reference());
        let ExecMode::Planned(p) = c.mode else {
            panic!("planned mode expected");
        };
        assert_eq!(p.gallop_unit, Planner::default().gallop_unit);
    }
}
