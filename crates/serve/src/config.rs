//! Serving configuration: how many shards and workers, how large a result
//! cache, and which physical execution mode queries run under.

use fsi_index::{Planner, Strategy};

/// How a shard answers a conjunctive query.
#[derive(Debug, Clone)]
pub enum ExecMode {
    /// Every posting list preprocessed under one fixed [`Strategy`].
    Fixed(Strategy),
    /// Whole-query cost-model planning: every query's term list is planned
    /// at once into a k-way [`fsi_index::MultiwayPlan`] (the paper's
    /// "choose online" pitch, see [`fsi_index::planner`]).
    Planned(Planner),
}

impl ExecMode {
    /// A short label for telemetry and cache keys.
    pub fn label(&self) -> String {
        match self {
            ExecMode::Fixed(s) => s.name(),
            ExecMode::Planned(_) => "Planned(multiway)".to_string(),
        }
    }

    /// Planner-mode execution with cost constants tuned for the SIMD tier
    /// this process dispatches to ([`Planner::auto`]) — the serving-stack
    /// default for planned execution, so plans favour the vectorized
    /// bitmap sweep exactly where `BENCH_simd.json` measured it winning.
    pub fn planned_auto() -> Self {
        ExecMode::Planned(Planner::auto())
    }

    /// Planner-mode execution under memory pressure: SIMD-tuned constants
    /// plus a non-zero [`Planner::bytes_unit`], so every candidate is
    /// charged its resident byte footprint and queries over compressible
    /// lists run in the compressed domain
    /// ([`fsi_index::PlanKind::CompressedGallop`]) instead of walking the
    /// 4-bytes-per-id flat representations. `bytes_per_elem_unit` is the
    /// cost of one resident byte relative to the compute units — `0.0`
    /// degenerates to [`ExecMode::planned_auto`]; values ≥ ~1 make
    /// footprint dominate for all but the most selective plans.
    pub fn planned_memory_pressured(bytes_per_elem_unit: f64) -> Self {
        ExecMode::Planned(Planner {
            bytes_unit: bytes_per_elem_unit,
            ..Planner::auto()
        })
    }
}

/// Configuration of a serving engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of document shards (≥ 1). Posting lists are partitioned into
    /// contiguous document-ID ranges, one per shard.
    pub num_shards: usize,
    /// Worker threads draining query batches (≥ 1).
    pub num_workers: usize,
    /// Total result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache segments (≥ 1); higher values
    /// reduce lock contention under concurrent batches.
    pub cache_segments: usize,
    /// Physical execution mode.
    pub mode: ExecMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            num_workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            cache_capacity: 4096,
            cache_segments: 8,
            // Whole-query cost-model planning with constants tuned for the
            // SIMD tier this process dispatches to. Fix a strategy (e.g.
            // the paper's `Strategy::RanGroupScan { m: 2 }`) to pin one
            // algorithm instead.
            mode: ExecMode::planned_auto(),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, normalizing zero counts up to one.
    pub fn normalized(mut self) -> Self {
        self.num_shards = self.num_shards.max(1);
        self.num_workers = self.num_workers.max(1);
        self.cache_segments = self.cache_segments.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = ServeConfig::default();
        assert!(c.num_shards >= 1);
        assert!(c.num_workers >= 1);
        assert!(c.cache_segments >= 1);
    }

    #[test]
    fn normalized_lifts_zeros() {
        let c = ServeConfig {
            num_shards: 0,
            num_workers: 0,
            cache_segments: 0,
            ..ServeConfig::default()
        }
        .normalized();
        assert_eq!((c.num_shards, c.num_workers, c.cache_segments), (1, 1, 1));
    }

    #[test]
    fn mode_labels() {
        assert_eq!(ExecMode::Fixed(Strategy::Merge).label(), "Merge");
        assert!(ExecMode::Planned(Planner::default())
            .label()
            .starts_with("Planned"));
    }

    #[test]
    fn memory_pressured_mode_sets_only_the_bytes_dial() {
        let ExecMode::Planned(p) = ExecMode::planned_memory_pressured(2.5) else {
            panic!("planned mode expected");
        };
        let auto = Planner::auto();
        assert_eq!(p.bytes_unit, 2.5);
        assert_eq!(p.gallop_unit, auto.gallop_unit);
        assert_eq!(p.bitmap_word_unit, auto.bitmap_word_unit);
        assert_eq!(p.decode_unit, auto.decode_unit);
    }
}
