//! The request-lifetime serving API: one [`Request`] in, one [`Response`]
//! out.
//!
//! Earlier revisions grew a method per capability on `Server` —
//! `query`, `query_expr`, `query_norm`, `query_expr_traced`, `explain` —
//! which meant every new per-request concern (deadlines, tenants, planner
//! overrides) would have multiplied the surface. [`crate::Server::execute`]
//! collapses the zoo: a [`Request`] names *what* to answer
//! ([`QueryInput`]) and *how* ([`QueryOptions`]), and the [`Response`]
//! carries the documents plus per-request metadata (cache outcome, chosen
//! plan kind, served/shed disposition, measured latency, optional trace
//! and `EXPLAIN` rendering). The old methods survive as `#[deprecated]`
//! delegating shims, pinned byte-identical to `execute` by
//! `tests/execute_differential.rs`.

use fsi_core::Elem;
use fsi_index::Planner;
use fsi_obs::QueryTrace;
use fsi_query::{ExplainMode, NormExpr};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a request asks the engine to answer.
#[derive(Debug, Clone)]
pub enum QueryInput {
    /// A flat conjunctive query: intersect these posting lists.
    Terms(Vec<usize>),
    /// A boolean query string in the [`fsi_query`] language
    /// (`AND`/`OR`/`NOT`, parentheses, implicit `AND`, optional
    /// `EXPLAIN [ANALYZE]` prefix).
    Text(String),
    /// A pre-compiled canonical expression.
    Norm(NormExpr),
}

/// Per-request execution options. Everything defaults off: a default
/// `QueryOptions` executes exactly like the pre-redesign methods did.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Run this request under a different [`Planner`] than the engine was
    /// built with (planned-mode engines only — a fixed-strategy engine has
    /// no planner to override and rejects with
    /// [`crate::QueryError::NeedsPlanner`]). Results are invariant across
    /// planners — only the physical plan changes — so overridden requests
    /// still share the result cache.
    pub planner_override: Option<Planner>,
    /// Record a [`QueryTrace`] (one span per stage, one per shard) into
    /// [`Response::trace`].
    pub trace: bool,
    /// Render the plan instead of serving documents: `Some(mode)` turns
    /// the request into `EXPLAIN` with that default mode. A textual query
    /// carrying its own `EXPLAIN [ANALYZE]` prefix triggers this too (the
    /// prefix wins over the option's mode).
    pub explain: Option<ExplainMode>,
    /// Drop the request (a [`ShedReason::DeadlineExpired`] response,
    /// nothing executed) if this instant has passed by the time the engine
    /// picks it up — the load-shedding contract the network layer builds
    /// on.
    pub deadline: Option<Instant>,
    /// The tenant this request bills to; counted per-tenant in the
    /// server's metrics registry (`fsi_tenant_queries_total`).
    pub tenant: Option<u32>,
}

/// One query request: input plus options. Build with the constructors and
/// chain the builder methods:
///
/// ```
/// use fsi_serve::Request;
/// use std::time::Duration;
///
/// let req = Request::expr("(0 OR 1) AND 2")
///     .tenant(7)
///     .deadline_in(Duration::from_millis(5));
/// assert_eq!(req.options.tenant, Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Request {
    /// What to answer.
    pub input: QueryInput,
    /// How to answer it.
    pub options: QueryOptions,
}

impl Request {
    /// A flat conjunctive query over term ids.
    pub fn terms(terms: impl Into<Vec<usize>>) -> Self {
        Self {
            input: QueryInput::Terms(terms.into()),
            options: QueryOptions::default(),
        }
    }

    /// A boolean query string.
    pub fn expr(query: impl Into<String>) -> Self {
        Self {
            input: QueryInput::Text(query.into()),
            options: QueryOptions::default(),
        }
    }

    /// A pre-compiled canonical expression.
    pub fn norm(expr: NormExpr) -> Self {
        Self {
            input: QueryInput::Norm(expr),
            options: QueryOptions::default(),
        }
    }

    /// Override the planner for this request (planned-mode engines only).
    pub fn planner(mut self, planner: Planner) -> Self {
        self.options.planner_override = Some(planner);
        self
    }

    /// Record a full [`QueryTrace`] into the response.
    pub fn traced(mut self) -> Self {
        self.options.trace = true;
        self
    }

    /// Render `EXPLAIN` under `mode` instead of serving documents.
    pub fn explain(mut self, mode: ExplainMode) -> Self {
        self.options.explain = Some(mode);
        self
    }

    /// Shed the request if `at` has passed when the engine picks it up.
    pub fn deadline(mut self, at: Instant) -> Self {
        self.options.deadline = Some(at);
        self
    }

    /// Shed the request if not picked up within `budget` from now.
    pub fn deadline_in(mut self, budget: Duration) -> Self {
        self.options.deadline = Some(Instant::now() + budget);
        self
    }

    /// Bill the request to a tenant.
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.options.tenant = Some(tenant);
        self
    }
}

/// How the result cache participated in a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Answered from the cache.
    Hit,
    /// Computed by the shards and inserted.
    Miss,
    /// The cache is disabled (`cache_capacity: 0`).
    Disabled,
    /// The request never consulted the cache (shed, or `EXPLAIN`).
    Bypassed,
}

/// Why a request was shed instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The request's deadline had already passed when the engine (or the
    /// network layer's dequeue check) picked it up.
    DeadlineExpired,
    /// The network layer's bounded request queue was full.
    QueueFull,
    /// Per-tenant admission control (token bucket) rejected the request.
    AdmissionDenied,
}

impl ShedReason {
    /// A short label for telemetry and wire responses.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::DeadlineExpired => "deadline_expired",
            ShedReason::QueueFull => "queue_full",
            ShedReason::AdmissionDenied => "admission_denied",
        }
    }
}

/// Whether a request was served or shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Executed (or answered from cache) and the response carries results.
    Served,
    /// Dropped under load-shedding; [`Response::docs`] is empty.
    Shed(ShedReason),
}

/// What one request came back with: results plus per-request metadata.
#[derive(Debug, Clone)]
pub struct Response {
    /// Matching documents in ascending order (`Arc`-shared with the cache:
    /// hits cost no copy). Empty for shed and `EXPLAIN` responses.
    pub docs: Arc<Vec<Elem>>,
    /// Served or shed (and why).
    pub disposition: Disposition,
    /// How the result cache participated.
    pub cache: CacheOutcome,
    /// The root operator of the executed plan (shard 0's plan label —
    /// shards plan independently, and per-shard detail is the trace's
    /// job). `None` for cache hits, fixed-strategy engines, and shed
    /// requests.
    pub plan_kind: Option<&'static str>,
    /// Wall-clock service time of this request as the server measured it.
    pub latency: Duration,
    /// The trace, when [`QueryOptions::trace`] was set.
    pub trace: Option<QueryTrace>,
    /// The rendered plan, when the request was an `EXPLAIN`.
    pub explain: Option<String>,
}

impl Response {
    /// True when the request was served (not shed).
    pub fn is_served(&self) -> bool {
        matches!(self.disposition, Disposition::Served)
    }

    pub(crate) fn shed(reason: ShedReason, latency: Duration) -> Self {
        Self {
            docs: Arc::new(Vec::new()),
            disposition: Disposition::Shed(reason),
            cache: CacheOutcome::Bypassed,
            plan_kind: None,
            latency,
            trace: None,
            explain: None,
        }
    }
}

/// Canonical [`NormExpr`] of a non-empty flat conjunction: sorted,
/// deduplicated; one term collapses to [`NormExpr::Term`]. Returns `None`
/// for the empty query (the canonical language has no ⊤ — flat execution
/// handles it directly).
pub(crate) fn flat_to_norm(terms: &[usize]) -> Option<NormExpr> {
    let mut sorted = terms.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    match sorted.len() {
        0 => None,
        1 => Some(NormExpr::Term(sorted[0])),
        _ => Some(NormExpr::And {
            pos: sorted.into_iter().map(NormExpr::Term).collect(),
            neg: Vec::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_options() {
        let r = Request::terms(vec![3, 1])
            .tenant(9)
            .traced()
            .explain(ExplainMode::Plan)
            .planner(Planner::default())
            .deadline(Instant::now());
        assert!(matches!(r.input, QueryInput::Terms(ref t) if t == &[3, 1]));
        assert_eq!(r.options.tenant, Some(9));
        assert!(r.options.trace);
        assert!(r.options.explain.is_some());
        assert!(r.options.planner_override.is_some());
        assert!(r.options.deadline.is_some());
    }

    #[test]
    fn flat_to_norm_is_canonical() {
        assert_eq!(flat_to_norm(&[]), None);
        assert_eq!(flat_to_norm(&[4]), Some(NormExpr::Term(4)));
        // Sorted + deduplicated, exactly like fsi_query::encode_flat_and
        // keys it.
        let norm = flat_to_norm(&[5, 2, 5, 9]).expect("non-empty");
        assert_eq!(
            fsi_query::encode(&norm),
            fsi_query::encode_flat_and(&[5, 2, 5, 9])
        );
    }

    #[test]
    fn shed_reasons_have_labels() {
        for r in [
            ShedReason::DeadlineExpired,
            ShedReason::QueueFull,
            ShedReason::AdmissionDenied,
        ] {
            assert!(!r.label().is_empty());
        }
    }
}
