//! The top-level serving facade: a [`ShardedEngine`], a [`QueryCache`] and
//! a [`QueryPool`] assembled from one [`ServeConfig`].

use crate::cache::QueryCache;
use crate::config::ServeConfig;
use crate::pool::{BatchOutcome, QueryPool};
use crate::shard::ShardedEngine;
use crate::stats::ServeStats;
use fsi_core::{Elem, HashContext};
use fsi_index::{Corpus, SearchEngine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A self-contained query-serving engine.
///
/// ```
/// use fsi_serve::{ServeConfig, Server};
/// use fsi_core::{HashContext, SortedSet};
/// use fsi_index::SearchEngine;
///
/// let engine = SearchEngine::from_postings(
///     HashContext::new(1),
///     vec![
///         SortedSet::from_unsorted(vec![1, 5, 9, 12]),
///         SortedSet::from_unsorted(vec![5, 9, 30]),
///     ],
/// );
/// let server = Server::new(&engine, ServeConfig::default());
/// assert_eq!(server.query(&[0, 1]).as_slice(), &[5, 9]);
/// ```
#[derive(Debug)]
pub struct Server {
    config: ServeConfig,
    engine: ShardedEngine,
    cache: QueryCache,
    pool: QueryPool,
    queries_served: AtomicU64,
}

impl Server {
    /// Builds the serving stack over an existing engine.
    pub fn new(engine: &SearchEngine, config: ServeConfig) -> Self {
        let config = config.normalized();
        Self {
            engine: ShardedEngine::build(engine, config.num_shards, config.mode.clone()),
            cache: QueryCache::new(config.cache_capacity, config.cache_segments),
            pool: QueryPool::new(config.num_workers),
            queries_served: AtomicU64::new(0),
            config,
        }
    }

    /// Builds the serving stack directly over a synthetic corpus.
    pub fn from_corpus(ctx: HashContext, corpus: Corpus, config: ServeConfig) -> Self {
        Self::new(&SearchEngine::from_corpus(ctx, corpus), config)
    }

    /// Answers one conjunctive query (cache-fronted), ascending document
    /// order.
    pub fn query(&self, terms: &[usize]) -> Arc<Vec<Elem>> {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        let cache = self.cache.is_enabled().then_some(&self.cache);
        QueryPool::answer(&self.engine, cache, terms).0
    }

    /// Drains a batch of queries across the worker pool, consulting and
    /// filling the result cache.
    pub fn run_batch(&self, queries: &[Vec<usize>]) -> BatchOutcome {
        self.queries_served
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let cache = self.cache.is_enabled().then_some(&self.cache);
        self.pool.run_batch(&self.engine, cache, queries)
    }

    /// The sharded engine.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// The result cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The active configuration (post-normalization).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            num_shards: self.engine.num_shards(),
            num_workers: self.pool.workers(),
            index_bytes: self.engine.size_in_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecMode;
    use fsi_index::{CorpusConfig, Planner, Strategy};

    fn server(config: ServeConfig) -> Server {
        let corpus = Corpus::generate(CorpusConfig {
            num_docs: 15_000,
            num_terms: 24,
            ..CorpusConfig::default()
        });
        Server::from_corpus(HashContext::new(77), corpus, config)
    }

    #[test]
    fn single_queries_are_cached() {
        let s = server(ServeConfig {
            num_shards: 3,
            cache_capacity: 16,
            ..ServeConfig::default()
        });
        let a = s.query(&[0, 1, 5]);
        let b = s.query(&[5, 1, 0]); // order-insensitive key
        assert_eq!(a, b);
        let stats = s.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.cache.hits, 1);
        assert!(stats.index_bytes > 0);
    }

    #[test]
    fn batch_counts_feed_stats() {
        let s = server(ServeConfig {
            num_shards: 2,
            num_workers: 2,
            ..ServeConfig::default()
        });
        let queries: Vec<Vec<usize>> = (0..10).map(|i| vec![i % 4, 8 + i % 2]).collect();
        let outcome = s.run_batch(&queries);
        assert_eq!(outcome.results.len(), 10);
        assert_eq!(s.stats().queries_served, 10);
    }

    #[test]
    fn disabled_cache_still_serves() {
        let s = server(ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let a = s.query(&[0, 1]);
        let b = s.query(&[0, 1]);
        assert_eq!(a, b);
        let stats = s.stats();
        assert_eq!(stats.cache.hits, 0);
        assert_eq!(stats.cache.misses, 0, "disabled cache records nothing");
    }

    #[test]
    fn planned_mode_end_to_end() {
        let s = server(ServeConfig {
            mode: ExecMode::Planned(Planner::default()),
            num_shards: 3,
            ..ServeConfig::default()
        });
        let fixed = server(ServeConfig {
            mode: ExecMode::Fixed(Strategy::Merge),
            num_shards: 1,
            ..ServeConfig::default()
        });
        for q in [vec![0usize, 1], vec![2, 3, 10], vec![20]] {
            assert_eq!(s.query(&q), fixed.query(&q), "{q:?}");
        }
    }
}
