//! The top-level serving facade: a [`ShardedEngine`], a [`QueryCache`] and
//! a [`QueryPool`] assembled from one [`ServeConfig`].

use crate::cache::{CacheKey, ModeKey, QueryCache};
use crate::config::ServeConfig;
use crate::pool::{BatchOutcome, QueryPool};
use crate::shard::ShardedEngine;
use crate::stats::{LatencySummary, ServeStats};
use fsi_core::{Elem, HashContext};
use fsi_index::{Corpus, SearchEngine};
use fsi_kernels::SimdLevel;
use fsi_obs::{Counter, HistSnapshot, Histogram, QueryTrace, Registry, Snapshot, TraceBuilder};
use fsi_query::{CompileError, ExplainMode, NormExpr};
use std::sync::Arc;
use std::time::Instant;

/// Why the server rejected a boolean query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query does not parse or normalizes to an unbounded set.
    Compile(CompileError),
    /// The query names a term outside the index vocabulary.
    UnknownTerm {
        /// The offending term id.
        term: usize,
        /// The vocabulary size (valid ids are `0..num_terms`).
        num_terms: usize,
    },
    /// The operation needs the cost-based planner (`ExecMode::Planned`) —
    /// `EXPLAIN` has no estimates to render under a fixed strategy.
    NeedsPlanner,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Compile(e) => write!(f, "{e}"),
            QueryError::UnknownTerm { term, num_terms } => {
                write!(f, "unknown term t{term} (index has {num_terms} terms)")
            }
            QueryError::NeedsPlanner => {
                write!(
                    f,
                    "EXPLAIN requires planner-dispatched execution (ExecMode::Planned)"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CompileError> for QueryError {
    fn from(e: CompileError) -> Self {
        QueryError::Compile(e)
    }
}

/// A self-contained query-serving engine.
///
/// ```
/// use fsi_serve::{ServeConfig, Server};
/// use fsi_core::{HashContext, SortedSet};
/// use fsi_index::SearchEngine;
///
/// let engine = SearchEngine::from_postings(
///     HashContext::new(1),
///     vec![
///         SortedSet::from_unsorted(vec![1, 5, 9, 12]),
///         SortedSet::from_unsorted(vec![5, 9, 30]),
///     ],
/// );
/// let server = Server::new(&engine, ServeConfig::default());
/// assert_eq!(server.query(&[0, 1]).as_slice(), &[5, 9]);
/// ```
#[derive(Debug)]
pub struct Server {
    config: ServeConfig,
    engine: ShardedEngine,
    cache: QueryCache,
    pool: QueryPool,
    /// The server's own metrics registry. Serving counters live here (not
    /// on the process-global registry) so two servers in one process never
    /// alias; [`Server::metrics`] folds the global registry's kernel- and
    /// planner-dispatch counters in at snapshot time.
    registry: Registry,
    queries_served: Arc<Counter>,
    expr_queries_served: Arc<Counter>,
    /// Per-query service-time distribution in nanoseconds: single queries
    /// record directly, batch runs fold their merged per-worker histograms
    /// in — one distribution for everything the server answered.
    latency_ns: Arc<Histogram>,
}

impl Server {
    /// Builds the serving stack over an existing engine.
    pub fn new(engine: &SearchEngine, config: ServeConfig) -> Self {
        let config = config.normalized();
        let registry = Registry::new();
        let queries_served = registry.counter("fsi_queries_served_total", &[]);
        let expr_queries_served = registry.counter("fsi_expr_queries_served_total", &[]);
        let latency_ns = registry.histogram("fsi_query_latency_ns", &[]);
        Self {
            engine: ShardedEngine::build(engine, config.num_shards, config.mode.clone()),
            cache: QueryCache::new(config.cache_capacity, config.cache_segments),
            pool: QueryPool::new(config.num_workers),
            registry,
            queries_served,
            expr_queries_served,
            latency_ns,
            config,
        }
    }

    /// Builds the serving stack directly over a synthetic corpus.
    pub fn from_corpus(ctx: HashContext, corpus: Corpus, config: ServeConfig) -> Self {
        Self::new(&SearchEngine::from_corpus(ctx, corpus), config)
    }

    /// Answers one conjunctive query (cache-fronted), ascending document
    /// order.
    pub fn query(&self, terms: &[usize]) -> Arc<Vec<Elem>> {
        self.queries_served.inc();
        let cache = self.cache.is_enabled().then_some(&self.cache);
        let start = Instant::now();
        let result = QueryPool::answer(&self.engine, cache, terms).0;
        self.latency_ns.record_duration(start.elapsed());
        result
    }

    /// Parses, rewrites, and answers one **boolean** query string
    /// (cache-fronted), ascending document order.
    ///
    /// ```
    /// use fsi_serve::{ServeConfig, Server};
    /// use fsi_core::{HashContext, SortedSet};
    /// use fsi_index::SearchEngine;
    ///
    /// let engine = SearchEngine::from_postings(
    ///     HashContext::new(1),
    ///     vec![
    ///         SortedSet::from_unsorted(vec![1, 5, 9, 12]),
    ///         SortedSet::from_unsorted(vec![5, 9, 30]),
    ///         SortedSet::from_unsorted(vec![9]),
    ///     ],
    /// );
    /// let server = Server::new(&engine, ServeConfig::default());
    /// let hits = server.query_expr("(0 AND 1) AND NOT 2").expect("valid query");
    /// assert_eq!(hits.as_slice(), &[5]);
    /// assert!(server.query_expr("NOT 2").is_err(), "unbounded");
    /// ```
    pub fn query_expr(&self, query: &str) -> Result<Arc<Vec<Elem>>, QueryError> {
        let norm = fsi_query::compile(query)?;
        let num_terms = self.engine.num_terms();
        if let Some(&term) = norm.terms().iter().find(|&&t| t >= num_terms) {
            return Err(QueryError::UnknownTerm { term, num_terms });
        }
        Ok(self.query_norm(&norm))
    }

    /// Answers one pre-compiled boolean expression (cache-fronted; the
    /// caller guarantees every term is in `0..num_terms`). The cache key
    /// is the canonical encoding, so any expression equivalent to a
    /// previously answered one — including a flat conjunctive query of
    /// the same terms — hits its entry.
    pub fn query_norm(&self, expr: &NormExpr) -> Arc<Vec<Elem>> {
        self.queries_served.inc();
        self.expr_queries_served.inc();
        let start = Instant::now();
        let key = self
            .cache
            .is_enabled()
            .then(|| CacheKey::from_norm(expr, ModeKey::from(self.engine.mode())));
        if let Some(key) = &key {
            if let Some(hit) = self.cache.get(key) {
                self.latency_ns.record_duration(start.elapsed());
                return hit;
            }
        }
        let result = Arc::new(self.engine.query_expr(expr));
        if let Some(key) = key {
            self.cache.insert(key, Arc::clone(&result));
        }
        self.latency_ns.record_duration(start.elapsed());
        result
    }

    /// Drains a batch of queries across the worker pool, consulting and
    /// filling the result cache. The batch's merged per-worker latency
    /// histogram folds into the server's registry, so `stats()` covers
    /// batch traffic too.
    pub fn run_batch(&self, queries: &[Vec<usize>]) -> BatchOutcome {
        self.queries_served.add(queries.len() as u64);
        let cache = self.cache.is_enabled().then_some(&self.cache);
        let outcome = self.pool.run_batch(&self.engine, cache, queries);
        self.latency_ns.merge_snapshot(&outcome.latency_hist);
        outcome
    }

    /// Parses, plans, executes, and fully traces one boolean query:
    /// returns the result plus a [`QueryTrace`] with one span per stage —
    /// `parse`, `rewrite`, `cache` (hit/miss/disabled), one
    /// `shard<N>.exec` span per shard carrying the chosen plan and its
    /// estimated vs observed cardinality, a closing `exec` span, and a
    /// `cache_insert` event with fresh/refresh/evicted attribution.
    ///
    /// Identical result and identical cache interaction to
    /// [`Server::query_expr`]; only the span bookkeeping is added, so
    /// traced and untraced paths can be compared for overhead directly.
    pub fn query_expr_traced(
        &self,
        query: &str,
    ) -> Result<(Arc<Vec<Elem>>, QueryTrace), QueryError> {
        let mut tb = TraceBuilder::new(query);
        let start = Instant::now();
        let s = tb.start_span();
        let ast = fsi_query::parse(query).map_err(CompileError::from)?;
        tb.end_span(s, "parse");
        let s = tb.start_span();
        let norm = fsi_query::normalize(&ast).map_err(CompileError::from)?;
        tb.end_span(s, "rewrite").attr("canonical", &norm).attr(
            "fingerprint",
            format!("{:016x}", fsi_query::fingerprint(&norm)),
        );
        let num_terms = self.engine.num_terms();
        if let Some(&term) = norm.terms().iter().find(|&&t| t >= num_terms) {
            return Err(QueryError::UnknownTerm { term, num_terms });
        }
        self.queries_served.inc();
        self.expr_queries_served.inc();
        let key = self
            .cache
            .is_enabled()
            .then(|| CacheKey::from_norm(&norm, ModeKey::from(self.engine.mode())));
        let s = tb.start_span();
        let hit = key.as_ref().and_then(|k| self.cache.get(k));
        if let Some(hit) = hit {
            tb.end_span(s, "cache").attr("outcome", "hit");
            self.latency_ns.record_duration(start.elapsed());
            return Ok((hit, tb.finish()));
        }
        tb.end_span(s, "cache")
            .attr("outcome", if key.is_some() { "miss" } else { "disabled" });
        let s = tb.start_span();
        let result = Arc::new(self.engine.query_expr_traced(&norm, &mut tb));
        tb.end_span(s, "exec")
            .attr("simd", SimdLevel::active().name())
            .attr("shards", self.engine.num_shards())
            .attr("rows", result.len());
        if let Some(key) = key {
            let outcome = self.cache.insert(key, Arc::clone(&result));
            tb.event("cache_insert")
                .attr("fresh", outcome.fresh)
                .attr("evicted", outcome.evicted);
        }
        self.latency_ns.record_duration(start.elapsed());
        Ok((result, tb.finish()))
    }

    /// Renders `EXPLAIN` or `EXPLAIN ANALYZE` for a boolean query. The
    /// string may carry the `EXPLAIN [ANALYZE]` prefix (as a user would
    /// type it) or be a bare query, in which case `default_mode` applies.
    /// One plan tree renders per shard (shards plan independently over
    /// shard-local statistics). Requires `ExecMode::Planned`.
    pub fn explain(&self, query: &str, default_mode: ExplainMode) -> Result<String, QueryError> {
        let (mode, rest) = fsi_query::strip_explain(query);
        let mode = mode.unwrap_or(default_mode);
        let norm = fsi_query::compile(rest)?;
        let num_terms = self.engine.num_terms();
        if let Some(&term) = norm.terms().iter().find(|&&t| t >= num_terms) {
            return Err(QueryError::UnknownTerm { term, num_terms });
        }
        self.engine
            .explain_expr(&norm, mode)
            .ok_or(QueryError::NeedsPlanner)
    }

    /// The sharded engine.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// The result cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The active configuration (post-normalization).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Copies the cache's counters and the engine's static facts into the
    /// registry as gauges, so a snapshot is self-contained. Called on
    /// every snapshot — gauge sets are cheap relative to taking one.
    fn sync_gauges(&self) {
        let stats = self.cache.stats();
        let set = |name: &str, v: u64| self.registry.gauge(name, &[]).set(v);
        set("fsi_cache_hits", stats.hits);
        set("fsi_cache_misses", stats.misses);
        set("fsi_cache_lookups", stats.lookups);
        set("fsi_cache_insertions", stats.insertions);
        set("fsi_cache_evictions", stats.evictions);
        set("fsi_cache_refreshes", stats.refreshes);
        set("fsi_cache_entries", stats.len as u64);
        set("fsi_cache_value_bytes", stats.value_bytes as u64);
        set("fsi_cache_capacity", stats.capacity as u64);
        for (i, seg) in stats.segments.iter().enumerate() {
            let id = i.to_string();
            let labels = [("segment", id.as_str())];
            let seg_set = |name: &str, v: u64| self.registry.gauge(name, &labels).set(v);
            seg_set("fsi_cache_segment_entries", seg.len as u64);
            seg_set("fsi_cache_segment_value_bytes", seg.value_bytes as u64);
            seg_set("fsi_cache_segment_insertions", seg.insertions);
            seg_set("fsi_cache_segment_evictions", seg.evictions);
            seg_set("fsi_cache_segment_refreshes", seg.refreshes);
        }
        set("fsi_shards", self.engine.num_shards() as u64);
        set("fsi_workers", self.pool.workers() as u64);
        set("fsi_index_bytes", self.engine.size_in_bytes() as u64);
    }

    /// A full metrics snapshot: this server's registry (serving counters,
    /// latency histogram, cache gauges) merged with the process-global
    /// registry (kernel dispatch and planner choice counters). Render with
    /// [`Snapshot::to_prometheus`] or [`Snapshot::to_json`].
    pub fn metrics(&self) -> Snapshot {
        self.sync_gauges();
        let mut snap = self.registry.snapshot();
        snap.merge_from(&Registry::global().snapshot());
        snap
    }

    /// A point-in-time stats snapshot — a typed view over the same
    /// registry [`Server::metrics`] exposes.
    pub fn stats(&self) -> ServeStats {
        let snap = self.registry.snapshot();
        let empty = HistSnapshot::default();
        let latency_hist = snap
            .histogram("fsi_query_latency_ns", &[])
            .unwrap_or(&empty);
        ServeStats {
            queries_served: snap.counter("fsi_queries_served_total", &[]).unwrap_or(0),
            expr_queries_served: snap
                .counter("fsi_expr_queries_served_total", &[])
                .unwrap_or(0),
            latency: LatencySummary::from_histogram(latency_hist),
            cache: self.cache.stats(),
            num_shards: self.engine.num_shards(),
            num_workers: self.pool.workers(),
            index_bytes: self.engine.size_in_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecMode;
    use fsi_index::{CorpusConfig, Planner, Strategy};

    fn server(config: ServeConfig) -> Server {
        let corpus = Corpus::generate(CorpusConfig {
            num_docs: 15_000,
            num_terms: 24,
            ..CorpusConfig::default()
        });
        Server::from_corpus(HashContext::new(77), corpus, config)
    }

    #[test]
    fn single_queries_are_cached() {
        let s = server(ServeConfig {
            num_shards: 3,
            cache_capacity: 16,
            ..ServeConfig::default()
        });
        let a = s.query(&[0, 1, 5]);
        let b = s.query(&[5, 1, 0]); // order-insensitive key
        assert_eq!(a, b);
        let stats = s.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.cache.hits, 1);
        assert!(stats.index_bytes > 0);
    }

    #[test]
    fn batch_counts_feed_stats() {
        let s = server(ServeConfig {
            num_shards: 2,
            num_workers: 2,
            ..ServeConfig::default()
        });
        let queries: Vec<Vec<usize>> = (0..10).map(|i| vec![i % 4, 8 + i % 2]).collect();
        let outcome = s.run_batch(&queries);
        assert_eq!(outcome.results.len(), 10);
        assert_eq!(s.stats().queries_served, 10);
    }

    #[test]
    fn disabled_cache_still_serves() {
        let s = server(ServeConfig {
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let a = s.query(&[0, 1]);
        let b = s.query(&[0, 1]);
        assert_eq!(a, b);
        let stats = s.stats();
        assert_eq!(stats.cache.hits, 0);
        assert_eq!(stats.cache.misses, 0, "disabled cache records nothing");
    }

    #[test]
    fn expression_queries_are_served_and_cached_canonically() {
        let s = server(ServeConfig {
            num_shards: 3,
            cache_capacity: 32,
            ..ServeConfig::default()
        });
        let a = s.query_expr("(0 OR 1) AND 5 AND NOT 2").expect("valid");
        // An equivalent expression — reordered, duplicated, De Morgan'd —
        // must hit the same cache entry.
        let b = s
            .query_expr("5 AND NOT 2 AND NOT (NOT 1 AND NOT 0) AND 5")
            .expect("valid");
        assert_eq!(a, b);
        let stats = s.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.expr_queries_served, 2);
        assert_eq!(stats.queries_served, 2);
    }

    #[test]
    fn flat_and_expression_paths_share_the_cache() {
        let s = server(ServeConfig {
            num_shards: 2,
            cache_capacity: 32,
            ..ServeConfig::default()
        });
        let flat = s.query(&[1, 0]);
        let expr = s.query_expr("0 AND 1").expect("valid");
        assert_eq!(flat, expr);
        assert_eq!(s.stats().cache.hits, 1, "expression hit the flat entry");
    }

    #[test]
    fn expression_matches_flat_conjunction_results() {
        for mode in [
            ExecMode::Fixed(Strategy::Merge),
            ExecMode::Planned(Planner::default()),
        ] {
            let s = server(ServeConfig {
                mode,
                cache_capacity: 0,
                ..ServeConfig::default()
            });
            assert_eq!(
                s.query_expr("0 AND 1 AND 9").expect("valid"),
                s.query(&[0, 1, 9])
            );
        }
    }

    #[test]
    fn invalid_queries_are_rejected_not_panicked() {
        let s = server(ServeConfig::default());
        assert!(matches!(
            s.query_expr("0 AND"),
            Err(QueryError::Compile(fsi_query::CompileError::Parse(_)))
        ));
        assert!(matches!(
            s.query_expr("NOT 0"),
            Err(QueryError::Compile(fsi_query::CompileError::Rewrite(_)))
        ));
        let err = s.query_expr("0 AND 99999").expect_err("unknown term");
        assert!(
            matches!(err, QueryError::UnknownTerm { term: 99999, .. }),
            "{err}"
        );
        assert_eq!(
            s.stats().queries_served,
            0,
            "rejected queries are not counted"
        );
    }

    #[test]
    fn traced_query_matches_untraced_and_carries_spans() {
        let s = server(ServeConfig {
            mode: ExecMode::Planned(Planner::default()),
            num_shards: 3,
            cache_capacity: 16,
            ..ServeConfig::default()
        });
        let src = "(0 OR 1) AND 5 AND NOT 2";
        let (traced, trace) = s.query_expr_traced(src).expect("valid");
        let plain = s.query_expr(src).expect("valid");
        assert_eq!(plain, traced, "tracing must not change results");
        for span in ["parse", "rewrite", "cache", "exec"] {
            assert!(trace.span(span).is_some(), "missing span {span}");
        }
        // Per-shard spans carry the plan and the estimate/observation pair.
        for i in 0..3 {
            let span = trace
                .span(&format!("shard{i}.exec"))
                .unwrap_or_else(|| panic!("missing shard{i}.exec"));
            assert_eq!(span.get("mode"), Some("planned"));
            assert!(span.get("kind").is_some());
            assert!(span.get("est_rows").is_some());
            assert!(span.get("rows").is_some());
        }
        let rendered = trace.render();
        assert!(rendered.contains("shard0.exec"), "{rendered}");
        assert!(trace.to_json().contains("\"spans\""));
        // A second traced run hits the entry the first one inserted and
        // returns early: cache span says hit, no exec span.
        let (again, trace2) = s.query_expr_traced(src).expect("valid");
        assert_eq!(again, traced);
        assert_eq!(
            trace2.span("cache").and_then(|s| s.get("outcome")),
            Some("hit")
        );
        assert!(trace2.span("exec").is_none());
    }

    #[test]
    fn traced_miss_records_exec_and_insert() {
        let s = server(ServeConfig {
            mode: ExecMode::Planned(Planner::default()),
            num_shards: 2,
            cache_capacity: 8,
            ..ServeConfig::default()
        });
        let (_, trace) = s.query_expr_traced("0 AND 9").expect("valid");
        assert_eq!(
            trace.span("cache").and_then(|s| s.get("outcome")),
            Some("miss")
        );
        let exec = trace.span("exec").expect("exec span");
        assert!(exec.get("simd").is_some());
        assert_eq!(exec.get("shards"), Some("2"));
        let insert = trace.span("cache_insert").expect("insert event");
        assert_eq!(insert.get("fresh"), Some("true"));
        // Traced queries count like any other expression query.
        assert_eq!(s.stats().expr_queries_served, 1);
    }

    #[test]
    fn explain_renders_per_shard_plans_in_planned_mode_only() {
        let planned = server(ServeConfig {
            mode: ExecMode::Planned(Planner::default()),
            num_shards: 2,
            ..ServeConfig::default()
        });
        let plain = planned
            .explain("EXPLAIN (0 OR 1) AND 5", fsi_query::ExplainMode::Plan)
            .expect("valid");
        assert!(plain.contains("-- shard 0"), "{plain}");
        assert!(plain.contains("-- shard 1"), "{plain}");
        assert!(plain.contains("est_cost"), "{plain}");
        assert!(!plain.contains("time"), "plain EXPLAIN has no timings");
        let analyzed = planned
            .explain(
                "EXPLAIN ANALYZE (0 OR 1) AND 5",
                fsi_query::ExplainMode::Plan,
            )
            .expect("valid");
        assert!(analyzed.contains("EXPLAIN ANALYZE"), "{analyzed}");
        assert!(analyzed.contains("rows"), "{analyzed}");
        // Bare queries take the default mode.
        let defaulted = planned
            .explain("0 AND 5", fsi_query::ExplainMode::Analyze)
            .expect("valid");
        assert!(defaulted.contains("EXPLAIN ANALYZE"), "{defaulted}");
        // EXPLAIN does not serve documents.
        assert_eq!(planned.stats().queries_served, 0);
        // Fixed mode has no cost model to render.
        let fixed = server(ServeConfig {
            mode: ExecMode::Fixed(Strategy::Merge),
            ..ServeConfig::default()
        });
        assert_eq!(
            fixed.explain("EXPLAIN 0 AND 1", fsi_query::ExplainMode::Plan),
            Err(QueryError::NeedsPlanner)
        );
    }

    #[test]
    fn metrics_snapshot_carries_counters_cache_gauges_and_latency() {
        let s = server(ServeConfig {
            num_shards: 2,
            cache_capacity: 16,
            cache_segments: 2,
            ..ServeConfig::default()
        });
        s.query(&[0, 1]);
        s.query(&[0, 1]);
        s.query_expr("3 AND 4").expect("valid");
        let snap = s.metrics();
        assert_eq!(snap.counter("fsi_queries_served_total", &[]), Some(3));
        assert_eq!(snap.counter("fsi_expr_queries_served_total", &[]), Some(1));
        assert_eq!(snap.gauge("fsi_cache_hits", &[]), Some(1));
        assert_eq!(snap.gauge("fsi_shards", &[]), Some(2));
        assert!(snap
            .gauge("fsi_cache_segment_entries", &[("segment", "0")])
            .is_some());
        let hist = snap
            .histogram("fsi_query_latency_ns", &[])
            .expect("latency histogram registered");
        assert_eq!(hist.count, 3);
        // The global registry's dispatch counters merge in (the server ran
        // real intersections, so at least one planner/kernel counter is
        // nonzero process-wide).
        assert!(
            snap.sum("fsi_plan_kind_total") + snap.sum("fsi_kernel_pair_dispatch_total") > 0
                || snap.sum("fsi_kernel_multiway_dispatch_total") > 0
        );
        // Both render targets stay well-formed.
        let prom = snap.to_prometheus();
        assert!(prom.contains("fsi_queries_served_total 3"), "{prom}");
        assert!(snap.to_json().starts_with('{'));
        // stats() is a typed view over the same registry.
        let stats = s.stats();
        assert_eq!(stats.queries_served, 3);
        assert_eq!(stats.latency.count, 3);
        assert!(stats.latency.max_us > 0.0);
    }

    #[test]
    fn batch_latencies_fold_into_server_histogram() {
        let s = server(ServeConfig {
            num_shards: 2,
            num_workers: 3,
            ..ServeConfig::default()
        });
        let queries: Vec<Vec<usize>> = (0..12).map(|i| vec![i % 4, 8 + i % 2]).collect();
        let outcome = s.run_batch(&queries);
        assert_eq!(outcome.latency_hist.count, 12);
        let stats = s.stats();
        assert_eq!(stats.latency.count, 12, "batch latencies merged");
        s.query(&[0, 1]);
        assert_eq!(
            s.stats().latency.count,
            13,
            "single queries join the same histogram"
        );
    }

    #[test]
    fn planned_mode_end_to_end() {
        let s = server(ServeConfig {
            mode: ExecMode::Planned(Planner::default()),
            num_shards: 3,
            ..ServeConfig::default()
        });
        let fixed = server(ServeConfig {
            mode: ExecMode::Fixed(Strategy::Merge),
            num_shards: 1,
            ..ServeConfig::default()
        });
        for q in [vec![0usize, 1], vec![2, 3, 10], vec![20]] {
            assert_eq!(s.query(&q), fixed.query(&q), "{q:?}");
        }
    }
}
